"""Experiment reports: one function per paper artifact (see DESIGN.md §3).

Each ``report_*`` function regenerates the table for one experiment id and
returns ``(title, rows)``; running this module as a script prints them:

    python -m repro.bench.report            # all experiments
    python -m repro.bench.report e1 e4      # a subset

The paper publishes no absolute numbers — its evaluation is comparative —
so these tables reproduce the *shape* of each claim: who wins, what grows
with what, and where the trade-offs sit.  ``EXPERIMENTS.md`` records the
measured outcomes against the paper's statements.
"""

from __future__ import annotations

import sys
import time

from repro.bench.drivers import (
    build_system,
    compare_strategies,
    drive_stream,
    inserts_as_events,
    run_stream,
)
from repro.bench.tables import render_table
from repro.engine.interpreter import ProductionSystem
from repro.obs import repro_footer
from repro.lang.analysis import analyze_program
from repro.lang.parser import parse_program
from repro.rindex.condition_index import ConditionIndex
from repro.txn.scheduler import ConcurrentScheduler
from repro.txn.serializability import count_equivalent_serial_orders
from repro.workload.generator import (
    WorkloadSpec,
    generate_insert_stream,
    generate_program,
)
from repro.workload.programs import (
    chain_program,
    contended_rules_program,
    independent_rules_program,
)

Report = tuple[str, list[dict]]

#: The match strategies compared throughout (DBMS variants appear in E8).
CORE_STRATEGIES = ["rete", "rete-shared", "simplified", "patterns", "markers"]


# ---------------------------------------------------------------------------
# F1 — Figure 1: propagation depth in a chain network
# ---------------------------------------------------------------------------


def report_f1(depths: tuple[int, ...] = (2, 4, 8, 12)) -> Report:
    """Per-insert cost vs chain depth n for C1 ∧ … ∧ Cn.

    Rete's match requires propagating the token through the whole
    hierarchy, so its activations grow with n; the matching-pattern scheme
    detects the match with one COND search (flat), while its maintenance
    (pattern propagation) grows with n but is the parallelizable part.
    """
    rows: list[dict] = []
    for depth in depths:
        source = chain_program(depth)
        for strategy_name in ("rete", "patterns"):
            wm, strategy = build_system(source, strategy_name)
            # One tuple per class completes exactly one chain; the last
            # insert triggers full propagation.
            for i in range(1, depth):
                wm.insert(f"C{i}", (0, "live"))
            before = strategy.counters.snapshot()
            wm.insert("C0", (0, "live"))
            diff = strategy.counters.diff(before)
            rows.append(
                {
                    "depth": depth,
                    "strategy": strategy.strategy_name,
                    "match_searches": (
                        diff["cond_searches"]
                        if strategy_name == "patterns"
                        else diff["node_activations"]
                    ),
                    "maintenance_ops": diff["patterns_updated"],
                    "conflict_adds": strategy.conflict_set.additions,
                }
            )
    return ("F1  propagation cost vs chain depth (Figure 1)", rows)


# ---------------------------------------------------------------------------
# E1 — §4.2.3 Time: match cost across strategies
# ---------------------------------------------------------------------------


def report_e1(
    rule_counts: tuple[int, ...] = (10, 40),
    stream_length: int = 300,
) -> Report:
    """Wall time and counted operations per strategy on synthetic loads."""
    rows: list[dict] = []
    for rules in rule_counts:
        spec = WorkloadSpec(rules=rules, classes=5, seed=7)
        workload = generate_program(spec)
        stream = inserts_as_events(
            generate_insert_stream(spec, stream_length)
        )
        for run in compare_strategies(
            workload.program, stream, CORE_STRATEGIES
        ):
            row = run.row("comparisons", "joins_computed", "cond_searches")
            row["rules"] = rules
            rows.append(row)
    columns_first = ["rules", "strategy", "events", "ms", "us/event",
                     "comparisons", "joins_computed", "cond_searches"]
    rows = [{c: r.get(c, "") for c in columns_first} for r in rows]
    return ("E1  match cost by strategy (§4.2.3 Time)", rows)


# ---------------------------------------------------------------------------
# E2 — §4.2.3 Space: storage footprint across strategies
# ---------------------------------------------------------------------------


def report_e2(stream_length: int = 300) -> Report:
    """Auxiliary storage after a common stream."""
    spec = WorkloadSpec(rules=20, classes=5, seed=11)
    workload = generate_program(spec)
    stream = inserts_as_events(generate_insert_stream(spec, stream_length))
    rows: list[dict] = []
    for run in compare_strategies(workload.program, stream, CORE_STRATEGIES):
        assert run.space is not None
        row = run.space.as_dict()
        rows.append(row)
    return ("E2  space footprint by strategy (§4.2.3 Space)", rows)


# ---------------------------------------------------------------------------
# E3 — §3.2: false drops (markers vs patterns vs Rete)
# ---------------------------------------------------------------------------


def report_e3(stream_length: int = 300) -> Report:
    """False-drop counts on a join-heavy load with sparse completions."""
    spec = WorkloadSpec(
        rules=15,
        classes=6,
        min_conditions=2,
        max_conditions=3,
        domain=12,
        seed=3,
    )
    workload = generate_program(spec)
    stream = inserts_as_events(generate_insert_stream(spec, stream_length))
    rows: list[dict] = []
    for run in compare_strategies(
        workload.program, stream, ["rete", "patterns", "markers"]
    ):
        rows.append(
            {
                "strategy": run.strategy,
                "false_drops": run.counters["false_drops"],
                "joins_computed": run.counters["joins_computed"],
                "conflict_adds": run.conflict_additions,
                "aux_cells": run.space.estimated_cells if run.space else 0,
            }
        )
    return ("E3  false drops and validation cost (§3.2)", rows)


# ---------------------------------------------------------------------------
# E4 — §5: serial vs concurrent execution
# ---------------------------------------------------------------------------


def _concurrent_run(source: str, setup) -> dict:
    system = ProductionSystem(source)
    setup(system)
    scheduler = ConcurrentScheduler(system)
    result = scheduler.run()
    orders: object
    try:
        orders = count_equivalent_serial_orders(result.history)
    except ValueError:
        orders = ">cap"
    critical = max(
        (r.critical_path_bound for r in result.rounds), default=0
    )
    return {
        "committed": result.committed,
        "makespan": result.makespan_ticks,
        "serial_steps": result.serial_steps,
        "speedup": (
            result.serial_steps / result.makespan_ticks
            if result.makespan_ticks
            else 1.0
        ),
        "critical_path": critical,
        "equiv_orders": orders,
    }


def report_e4(sizes: tuple[int, ...] = (2, 4, 8)) -> Report:
    """Speedup of concurrent execution: independent vs contended rules.

    §5.2: best case ∝ max updates to any one relation (independent rules
    parallelize); worst case degenerates to serial (all rules updating one
    shared relation).
    """
    rows: list[dict] = []
    for size in sizes:
        independent = independent_rules_program(size)

        def setup_independent(system, n=size):
            for i in range(n):
                system.insert(f"T{i}", {"x": i})

        row = _concurrent_run(independent, setup_independent)
        row.update({"rules": size, "workload": "independent"})
        rows.append(row)

        contended = contended_rules_program(size)

        def setup_contended(system, n=size):
            system.insert("Shared", {"x": 0})
            for i in range(n):
                system.insert(f"T{i}", {"x": i})

        row = _concurrent_run(contended, setup_contended)
        row.update({"rules": size, "workload": "contended"})
        rows.append(row)
    columns = ["rules", "workload", "committed", "makespan", "serial_steps",
               "speedup", "critical_path", "equiv_orders"]
    rows = [{c: r.get(c, "") for c in columns} for r in rows]
    return ("E4  serial vs concurrent execution (§5.2)", rows)


# ---------------------------------------------------------------------------
# E6 — §3.2/§6: multiple-query-optimized (shared) Rete
# ---------------------------------------------------------------------------


def report_e6(stream_length: int = 250) -> Report:
    """Node counts and match work: naive vs shared networks, with rule
    overlap driven by a shared condition pool."""
    rows: list[dict] = []
    for pool in (0, 6):
        spec = WorkloadSpec(
            rules=25,
            classes=4,
            shared_condition_pool=pool,
            seed=5,
        )
        workload = generate_program(spec)
        stream = inserts_as_events(
            generate_insert_stream(spec, stream_length)
        )
        for strategy_name in ("rete", "rete-shared"):
            run = run_stream(workload.program, stream, strategy_name)
            assert run.space is not None
            rows.append(
                {
                    "overlap_pool": pool or "none",
                    "strategy": run.strategy,
                    "alpha_memories": run.space.detail["alpha_memories"],
                    "join_nodes": run.space.detail["join_nodes"],
                    "activations": run.counters["node_activations"],
                    "ms": run.wall_seconds * 1000,
                }
            )
    return ("E6  naive vs MQO-shared Rete (§3.2/§6)", rows)


# ---------------------------------------------------------------------------
# E7 — §4.2.3: R-tree vs linear condition lookup
# ---------------------------------------------------------------------------


def _rules_with_selections(count: int, domain: int = 1000) -> str:
    parts = ["(literalize Emp age salary dno)"]
    step = max(domain // count, 1)
    for i in range(count):
        low = (i * step) % domain
        parts.append(
            f"(p sel{i} (Emp ^age > {low} ^salary < {low + step}) "
            f"--> (remove 1))"
        )
    return "\n".join(parts)


def report_e7(
    condition_counts: tuple[int, ...] = (50, 200, 800),
    probes: int = 300,
) -> Report:
    """Point-lookup cost: R-tree over condition boxes vs linear scan."""
    from repro.match.common import match_condition
    from repro.engine.wm import WorkingMemory

    rows: list[dict] = []
    for count in condition_counts:
        source = _rules_with_selections(count)
        program = parse_program(source)
        analyses = analyze_program(program.rules, program.schemas)
        index = ConditionIndex(analyses, program.schemas)
        wm = WorkingMemory(program.schemas)
        wmes = [
            wm.insert("Emp", (i * 7 % 1000, i * 13 % 1000, i % 5))
            for i in range(probes)
        ]
        start = time.perf_counter()
        indexed_hits = 0
        for wme in wmes:
            indexed_hits += len(index.conditions_matching(wme))
        rtree_seconds = time.perf_counter() - start
        start = time.perf_counter()
        linear_hits = 0
        schema = program.schemas["Emp"]
        for wme in wmes:
            for analysis in analyses.values():
                for condition in analysis.conditions:
                    if match_condition(condition, schema, wme) is not None:
                        linear_hits += 1
        linear_seconds = time.perf_counter() - start
        rows.append(
            {
                "conditions": count,
                "probes": probes,
                "rtree_ms": rtree_seconds * 1000,
                "linear_ms": linear_seconds * 1000,
                "speedup": linear_seconds / rtree_seconds
                if rtree_seconds
                else 0.0,
                "rtree_hits": indexed_hits,
                "exact_hits": linear_hits,
            }
        )
    return ("E7  R-tree vs linear condition lookup (§4.2.3)", rows)


# ---------------------------------------------------------------------------
# E8 — §3.2: persisted Rete memories, memory vs SQLite backends
# ---------------------------------------------------------------------------


def report_e8(stream_length: int = 150) -> Report:
    """DBMS-Rete throughput across memory backends, including on-disk.

    Configurations: plain in-core Rete; the §3.2 DBMS-Rete with memory
    relations in the in-memory engine, in in-memory SQLite, and the fully
    persistent variant where working memory itself lives in a SQLite file.
    """
    import os
    import tempfile

    from repro.engine.wm import WorkingMemory
    from repro.instrument import Counters
    from repro.match.rete import DbmsReteStrategy, ReteStrategy

    spec = WorkloadSpec(rules=10, classes=4, seed=13)
    workload = generate_program(spec)
    stream = generate_insert_stream(spec, stream_length)
    analyses = analyze_program(
        workload.program.rules, workload.program.schemas
    )
    rows: list[dict] = []
    configs = [
        ("rete (no persistence)", ReteStrategy, {}, None),
        ("rete-dbms memory", DbmsReteStrategy, {"memory_backend": "memory"}, None),
        ("rete-dbms sqlite", DbmsReteStrategy, {"memory_backend": "sqlite"}, None),
        ("rete, WM on disk (sqlite file)", ReteStrategy, {}, "file"),
    ]
    for label, cls, kwargs, wm_mode in configs:
        db_path = None
        if wm_mode == "file":
            handle, db_path = tempfile.mkstemp(suffix=".sqlite")
            os.close(handle)
            os.unlink(db_path)
            wm = WorkingMemory(
                workload.program.schemas, backend="sqlite", path=db_path
            )
        else:
            wm = WorkingMemory(workload.program.schemas)
        strategy = cls(wm, analyses, counters=Counters(), **kwargs)
        start = time.perf_counter()
        for class_name, values in stream:
            wm.insert(class_name, values)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "configuration": label,
                "events": stream_length,
                "ms": elapsed * 1000,
                "us/event": elapsed * 1e6 / stream_length,
                "tuple_writes": strategy.counters.tuple_writes,
                "conflict_adds": strategy.conflict_set.additions,
            }
        )
        if db_path is not None:
            wm.catalog.close()
            if os.path.exists(db_path):
                os.unlink(db_path)
    return ("E8  persisted Rete memories: backend comparison (§3.2)", rows)


# ---------------------------------------------------------------------------
# E9 — §2.3: Basic Locking vs Predicate Indexing ([STON86a])
# ---------------------------------------------------------------------------


def report_e9(stream_length: int = 300) -> Report:
    """The [STON86a] trade-off: markers vs an R-tree predicate index.

    "Depending on the probability of updating base relations and the
    number of conditions that overlap ... the first or the second approach
    becomes more efficient."  Basic Locking pays marking work on every
    insert and stores markers on tuples; Predicate Indexing stores only
    condition boxes but searches the tree on every update.  The overlap
    knob is the shared-condition pool.
    """
    rows: list[dict] = []
    for overlap, pool in (("low", 0), ("high", 5)):
        spec = WorkloadSpec(
            rules=20,
            classes=4,
            shared_condition_pool=pool,
            seed=17,
        )
        workload = generate_program(spec)
        stream = inserts_as_events(
            generate_insert_stream(spec, stream_length)
        )
        for run in compare_strategies(
            workload.program, stream, ["markers", "predicate-index"]
        ):
            assert run.space is not None
            rows.append(
                {
                    "overlap": overlap,
                    "strategy": run.strategy,
                    "ms": run.wall_seconds * 1000,
                    "index_lookups": run.counters["index_lookups"],
                    "comparisons": run.counters["comparisons"],
                    "false_drops": run.counters["false_drops"],
                    "aux_cells": run.space.estimated_cells,
                    "conflict_adds": run.conflict_additions,
                }
            )
    return ("E9  Basic Locking vs Predicate Indexing (§2.3/[STON86a])", rows)


# ---------------------------------------------------------------------------
# A4 — §4.2.3: set-at-a-time delta propagation
# ---------------------------------------------------------------------------


def report_a4(
    stream_length: int = 300,
    batch_sizes: tuple[int, ...] = (1, 16, 64),
    strategy: str = "patterns",
) -> Report:
    """Batched vs tuple-at-a-time change propagation, per backend.

    Batch size 1 is the classic per-tuple path; larger batches route the
    same logical stream through ``WorkingMemory.apply_batch`` — grouped
    ``insert_many``/``delete_many`` storage writes (one SQL ``executemany``
    statement and one transaction per relation group on SQLite) and one
    ``on_delta`` maintenance call per batch.  The conflict set is
    identical in every row; the SQL statement count and wall time fall
    with batch size.
    """
    from repro.obs import Observability

    spec = WorkloadSpec(rules=15, classes=5, seed=23)
    workload = generate_program(spec)
    stream = inserts_as_events(generate_insert_stream(spec, stream_length))
    rows: list[dict] = []
    for backend in ("memory", "sqlite"):
        for batch_size in batch_sizes:
            obs = Observability(collect_metrics=True)
            run = run_stream(
                workload.program,
                stream,
                strategy,
                backend=backend,
                obs=obs,
                batch_size=batch_size,
            )
            snapshot = run.metrics or {}
            counter_values = snapshot.get("counters", {})
            rows.append(
                {
                    "backend": backend,
                    "batch": batch_size,
                    "ms": run.wall_seconds * 1000,
                    "us/event": run.wall_seconds * 1e6 / run.events,
                    "sql_stmts": counter_values.get(
                        "storage.sql_statements", 0
                    ),
                    "txns": counter_values.get("storage.transactions", 0),
                    "batches": counter_values.get("match.batches", 0),
                    "conflict_adds": run.conflict_additions,
                }
            )
    return ("A4  set-at-a-time delta propagation (§4.2.3)", rows)


# ---------------------------------------------------------------------------
# A5 — token-batched Rete propagation (§3.2 × §4.2.3)
# ---------------------------------------------------------------------------


def report_a5(
    stream_length: int = 300,
    batch_sizes: tuple[int, ...] = (1, 16, 64),
    strategies: tuple[str, ...] = (
        "rete", "rete-shared", "rete-dbms", "patterns"
    ),
) -> Report:
    """Set-at-a-time token propagation through the Rete network.

    The same churn stream (inserts + deletes) is driven at several batch
    sizes through the Rete family and, for reference, the matching-pattern
    strategy.  At batch size 1 the Rete strategies run the classic
    tuple-at-a-time propagation; larger batches push per-class token sets
    through the network — ``rete.join_probes`` counts the opposing-memory
    probes (at most one per two-input node per batch group) and
    ``node_activations`` falls accordingly.  The final conflict-set size
    is identical in every row.
    """
    from repro.obs import Observability
    from repro.workload.generator import mixed_stream

    spec = WorkloadSpec(rules=15, classes=5, seed=23)
    workload = generate_program(spec)
    stream = mixed_stream(spec, stream_length, delete_fraction=0.25)
    rows: list[dict] = []
    for strategy_name in strategies:
        for batch_size in batch_sizes:
            obs = Observability(collect_metrics=True)
            run = run_stream(
                workload.program,
                stream,
                strategy_name,
                obs=obs,
                batch_size=batch_size,
            )
            counter_values = (run.metrics or {}).get("counters", {})
            rows.append(
                {
                    "strategy": strategy_name,
                    "batch": batch_size,
                    "ms": run.wall_seconds * 1000,
                    "us/event": run.wall_seconds * 1e6 / run.events,
                    "activations": run.counters["node_activations"],
                    "comparisons": run.counters["comparisons"],
                    "join_probes": counter_values.get("rete.join_probes", 0),
                    "batches": counter_values.get("match.batches", 0),
                    "conflict_size": run.conflict_size,
                }
            )
    return ("A5  token-batched Rete propagation (§3.2 × §4.2.3)", rows)


# ---------------------------------------------------------------------------
# A7 — compiled match kernels vs the interpreted reference
# ---------------------------------------------------------------------------


def report_a7(
    stream_length: int = 1000,
    batch_sizes: tuple[int, ...] = (1, 64),
    strategies: tuple[str, ...] = ("rete", "rete-shared", "patterns"),
) -> Report:
    """Per-rule compiled kernels against the interpreted AST walk.

    The A5 churn workload is driven through each strategy twice — compile
    off (the interpreted reference) and compile on (columnar hash-probe
    kernels plus generated alpha tests).  ``comparisons`` counts
    interpreter-dispatch operations: one per predicate/test evaluation
    interpreted, one per hash-key build or in-bucket residual compiled —
    the span-countable work the lowering removes.  Conflict sets are
    bit-identical in every paired row; only the operation counts and
    wall-clock change.
    """
    from repro.obs import Observability
    from repro.workload.generator import mixed_stream

    spec = WorkloadSpec(rules=15, classes=5, seed=23)
    workload = generate_program(spec)
    stream = mixed_stream(spec, stream_length, delete_fraction=0.25)
    rows: list[dict] = []
    for strategy_name in strategies:
        for batch_size in batch_sizes:
            runs = {}
            for mode in ("off", "on"):
                obs = Observability(collect_metrics=True)
                runs[mode] = run_stream(
                    workload.program,
                    stream,
                    strategy_name,
                    obs=obs,
                    batch_size=batch_size,
                    compile_mode=mode,
                )
            reference, compiled = runs["off"], runs["on"]
            assert compiled.conflict_size == reference.conflict_size
            comparisons = {
                mode: run.counters["comparisons"]
                for mode, run in runs.items()
            }
            rows.append(
                {
                    "strategy": strategy_name,
                    "batch": batch_size,
                    "interp_cmp": comparisons["off"],
                    "compiled_cmp": comparisons["on"],
                    "cmp_ratio": (
                        comparisons["off"] / comparisons["on"]
                        if comparisons["on"]
                        else 0.0
                    ),
                    "interp_ms": reference.wall_seconds * 1000,
                    "compiled_ms": compiled.wall_seconds * 1000,
                    "conflict_size": compiled.conflict_size,
                }
            )
    return ("A7  compiled match kernels vs interpreted (CORGI-bounded)", rows)


# ---------------------------------------------------------------------------
# A8 — parallel sharded match vs the serial reference
# ---------------------------------------------------------------------------


def report_a8(
    stream_length: int = 1000,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    strategies: tuple[str, ...] = ("rete", "rete-shared"),
    batch_size: int = 64,
) -> Report:
    """Sharded parallel match against the serial reference loop.

    The A5 churn workload is driven through each Rete strategy at
    several pool sizes.  The determinism contract (docs/PARALLELISM.md)
    is asserted inside every pairing: the conflict set is bit-identical
    at any worker count.  What the table shows is the *work
    distribution*: items fanned out, the critical path of the
    round-robin assignment over worker slots, and the scheduling-
    independent ``speedup_bound = items / critical_path`` — the §5.2
    makespan measure, which is what grows with the pool.  Wall clock and
    events/sec are recorded but never gated; on a GIL build with few
    cores they understate the bound.
    """
    from repro.workload.generator import mixed_stream

    spec = WorkloadSpec(rules=15, classes=5, seed=23)
    workload = generate_program(spec)
    stream = mixed_stream(spec, stream_length, delete_fraction=0.25)
    rows: list[dict] = []
    for strategy_name in strategies:
        reference_keys = None
        for workers in worker_counts:
            wm, strategy = build_system(
                workload.program, strategy_name, workers=workers
            )
            started = time.perf_counter()
            count, _live = drive_stream(wm, stream, batch_size=batch_size)
            elapsed = time.perf_counter() - started
            keys = strategy.conflict_set_keys()
            if reference_keys is None:
                reference_keys = keys
            assert keys == reference_keys, (
                f"{strategy_name}: conflict set diverged at workers={workers}"
            )
            pool = strategy.pool
            stats = (
                pool.stats.as_dict()
                if pool is not None
                else {
                    "workers": 1, "fanouts": 0, "tasks": 0, "items": 0,
                    "critical_path_items": 0, "speedup_bound": 1.0,
                }
            )
            rows.append(
                {
                    "strategy": strategy_name,
                    "workers": workers,
                    "ms": elapsed * 1000,
                    "events/s": count / elapsed if elapsed else 0.0,
                    "fanouts": stats["fanouts"],
                    "fanned_items": stats["items"],
                    "critical_path": stats["critical_path_items"],
                    "speedup_bound": stats["speedup_bound"],
                    "conflict_size": len(keys),
                }
            )
            if pool is not None:
                pool.close()
    return ("A8  parallel sharded match (docs/PARALLELISM.md contract)", rows)


# ---------------------------------------------------------------------------
# A6 — WAL overhead and crash-recovery time
# ---------------------------------------------------------------------------


def report_a6(
    cycles: int = 120,
    fsync_everys: tuple[int, ...] = (1, 64),
    checkpoint_every: int = 25,
) -> Report:
    """The durability tax and what buys it back (§5 commit points).

    The same counter program runs WAL-off, WAL-attached at several fsync
    cadences, and WAL + periodic checkpoints; each durable log is then
    recovered cold.  ``run_ms`` shows the logging overhead (dominated by
    fsync cadence), ``recover_ms``/``replayed`` show how the checkpoint
    fast path shortens replay, and the WM is identical in every row.
    """
    import os
    import tempfile

    from repro.obs import Observability
    from repro.recovery import DurableRun, recover
    from repro.workload.programs import counter_program

    source = counter_program(cycles)
    config = {
        "strategy": "rete",
        "resolution": "lex",
        "backend": "memory",
        "seed": 0,
        "batch_size": 1,
        "firing": "instance",
    }

    def build(obs=None):
        system = ProductionSystem(source, obs=obs)
        system.insert("Counter", {"value": 0, "limit": cycles})
        return system

    rows: list[dict] = []
    started = time.perf_counter()
    plain = build()
    plain.run()
    rows.append(
        {
            "mode": "wal off",
            "run_ms": (time.perf_counter() - started) * 1000,
            "wal_kb": 0.0,
            "fsyncs": 0,
            "recover_ms": 0.0,
            "replayed": 0,
            "wm": plain.wm.size(),
        }
    )

    modes = [(f"wal fsync={n}", n, 0) for n in fsync_everys]
    modes.append((f"wal+ckpt every {checkpoint_every}", max(fsync_everys),
                  checkpoint_every))
    with tempfile.TemporaryDirectory() as directory:
        for index, (mode, fsync_every, ckpt_every) in enumerate(modes):
            wal = os.path.join(directory, f"a6-{index}.wal")
            ckpt = wal + ".ckpt" if ckpt_every else None
            obs = Observability(collect_metrics=True)
            system = build(obs=obs)
            started = time.perf_counter()
            run = DurableRun.start(
                system, wal, source, config,
                fsync_every=fsync_every,
                checkpoint_path=ckpt,
                checkpoint_every=ckpt_every,
            )
            run.run()
            run.close()
            run_ms = (time.perf_counter() - started) * 1000
            counters = obs.metrics.snapshot()["counters"]
            started = time.perf_counter()
            state = recover(wal, ckpt)
            recover_ms = (time.perf_counter() - started) * 1000
            rows.append(
                {
                    "mode": mode,
                    "run_ms": run_ms,
                    "wal_kb": counters.get("recovery.wal_bytes", 0) / 1024,
                    "fsyncs": counters.get("recovery.fsyncs", 0),
                    "recover_ms": recover_ms,
                    "replayed": state.replayed_batches,
                    "wm": state.system.wm.size(),
                }
            )
    return ("A6  WAL overhead & crash recovery (§5 durability)", rows)


# ---------------------------------------------------------------------------
# A9 — multi-tenant serving: throughput, tail latency, crash recovery
# ---------------------------------------------------------------------------


def report_a9(
    events_per_tenant: int = 150,
    tenants: int = 2,
) -> Report:
    """The serving profile: k8s-auto-fix events through ``repro serve``.

    An in-process :class:`~repro.serve.server.RuleServer` hosts *tenants*
    sessions sharing one k8s-auto-fix rule pack (docs/SERVING.md).  Each
    tenant streams its inventory plus *events_per_tenant* cluster events
    over a real TCP connection, one request per ack, so every latency
    sample spans parse → apply → recognize-act → group-commit fsync.
    After the stream the server is *abandoned* — logs dropped without the
    final sync or checkpoint, the in-process stand-in for ``kill -9`` —
    and a second server recovers the data directory cold.

    Wall-clock columns (``events/s``, ``p50/p99``, ``recover_ms``) are
    trajectory-only; the gated columns are deterministic in the seed:
    ``applied_seq`` (exactly-once high-water mark survives the crash),
    ``remediations``/``tickets``/``wm`` (the pack's fixed point), and
    ``events_left``/``shed`` (both must be zero — every event consumed,
    nothing shed at the nominal one-in-flight rate).
    """
    import asyncio
    import json
    import tempfile

    from repro.obs import Observability
    from repro.serve.server import RuleServer
    from repro.workload.k8s import (
        K8S_PROGRAM,
        as_requests,
        k8s_events,
        k8s_setup,
    )

    names = [f"tenant-{i}" for i in range(tenants)]
    streamed: dict[str, int] = {}

    async def drive(server: RuleServer) -> float:
        await server.start()

        async def run_tenant(index: int, name: str) -> None:
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )

            async def call(body: dict) -> dict:
                writer.write(json.dumps(body).encode() + b"\n")
                await writer.drain()
                return json.loads(await reader.readline())

            reply = await call(
                {"op": "attach", "tenant": name, "program": K8S_PROGRAM}
            )
            assert reply["ok"], reply
            ops = k8s_setup() + k8s_events(events_per_tenant, seed=index)
            for request in as_requests(name, ops):
                reply = await call(request)
                assert reply.get("durable"), reply
                streamed[name] = reply["seq"]
            writer.close()
            await writer.wait_closed()

        started = time.perf_counter()
        await asyncio.gather(
            *(run_tenant(i, name) for i, name in enumerate(names))
        )
        elapsed = time.perf_counter() - started
        # kill -9 stand-in: stop the loop machinery, then drop every log
        # on the floor — no final sync, no checkpoint, no clean close.
        server._stopping.set()
        server._work.set()
        if server._engine_task is not None:
            await server._engine_task
        if server._server is not None:
            server._server.close()
            await server._server.wait_closed()
        for name in server.registry.names():
            server.registry.get(name).run.abandon()
        return elapsed

    rows: list[dict] = []
    with tempfile.TemporaryDirectory() as directory:
        obs = Observability(collect_metrics=True)
        server = RuleServer(directory, obs=obs, checkpoint_rounds=16)
        elapsed = asyncio.run(drive(server))
        shed = server.admission.shed

        started = time.perf_counter()
        revived = RuleServer(directory, obs=Observability())
        recovered = revived.recover_all()
        recover_ms = (time.perf_counter() - started) * 1000
        assert recovered == names, (recovered, names)

        total = len(k8s_setup()) + events_per_tenant
        for name in names:
            session = revived.registry.get(name)
            stats = session.stats()
            assert stats["applied_seq"] == streamed[name] == total
            latency = obs.metrics.log2_histogram(
                f"serve.latency_us[{name}]"
            )
            rows.append(
                {
                    "tenant": name,
                    "events": events_per_tenant,
                    "events/s": (
                        tenants * events_per_tenant / elapsed
                        if elapsed
                        else 0.0
                    ),
                    "p50_ms": latency.percentile(0.50) / 1000,
                    "p99_ms": latency.percentile(0.99) / 1000,
                    "shed": shed,
                    "applied_seq": stats["applied_seq"],
                    "events_left": len(session.query("event")),
                    "remediations": len(session.query("remediation")),
                    "tickets": len(session.query("ticket")),
                    "wm": stats["wm_size"],
                    "recover_ms": recover_ms,
                }
            )
        for name in revived.registry.names():
            revived.registry.get(name).close()
    return ("A9  multi-tenant serving (docs/SERVING.md k8s-auto-fix)", rows)


# ---------------------------------------------------------------------------
# A10 — warm-standby replication: steady-state lag, promotion time
# ---------------------------------------------------------------------------


def report_a10(
    events_per_tenant: int = 120,
    tenants: int = 2,
) -> Report:
    """The replication profile: a primary/standby pair under k8s events.

    An in-process primary :class:`~repro.serve.server.RuleServer` ships
    every group-commit round to a second in-process server started with
    ``follow=HOST:PORT`` (docs/REPLICATION.md).  Each tenant streams its
    inventory plus all but the last of *events_per_tenant* cluster
    events over real TCP with the standby attached, so every ack spans
    parse → apply → group-commit fsync → ship → follower ack
    (semi-synchronous).  The primary is then abandoned mid-flight — the
    in-process ``kill -9`` stand-in — the standby is promoted over its
    own client connection, and the held-back final event lands on the
    promoted server, timing promotion-to-first-ack.

    Wall-clock columns (``events/s``, ``promote_ms``, ``first_ack_ms``)
    are trajectory-only; the gated columns are deterministic in the
    seed: ``lag_records`` (zero at steady state — semi-sync acks imply a
    caught-up standby), ``applied_seq`` (the full acked stream survives
    the failover), ``events_left``/``remediations``/``tickets``/``wm``
    (the pack's fixed point on the *promoted* server must equal the
    never-crashed run's), and ``epoch`` (exactly one promotion: 2).
    """
    import asyncio
    import json
    import os
    import tempfile

    from repro.obs import Observability
    from repro.serve.server import RuleServer
    from repro.workload.k8s import (
        K8S_PROGRAM,
        as_requests,
        k8s_events,
        k8s_setup,
    )

    names = [f"tenant-{i}" for i in range(tenants)]
    total_ops = len(k8s_setup()) + events_per_tenant
    results: dict[str, dict] = {}
    timings: dict[str, float] = {}

    async def connect(server: RuleServer):
        reader, writer = await asyncio.open_connection(
            server.host, server.port
        )

        async def call(body: dict) -> dict:
            writer.write(json.dumps(body).encode() + b"\n")
            await writer.drain()
            return json.loads(await reader.readline())

        return writer, call

    async def kill_in_process(server: RuleServer) -> None:
        # kill -9 stand-in (the A9 pattern): stop the loop machinery,
        # then drop every log on the floor — no final sync, no clean
        # close, no goodbye to the follower.
        server._stopping.set()
        server._work.set()
        if server._engine_task is not None:
            await server._engine_task
        if server._server is not None:
            server._server.close()
            await server._server.wait_closed()
        for name in server.registry.names():
            server.registry.get(name).run.abandon()

    async def drive(directory: str) -> None:
        primary = RuleServer(
            os.path.join(directory, "primary"),
            obs=Observability(collect_metrics=True),
            checkpoint_rounds=16,
        )
        await primary.start()
        standby = RuleServer(
            os.path.join(directory, "standby"),
            obs=Observability(),
            follow=f"{primary.host}:{primary.port}",
            takeover_deadline=0.0,  # promotion is explicit, and timed
        )
        await standby.start()
        while primary.shipper.link is None:  # handshake races start()
            await asyncio.sleep(0.01)

        held_back: dict[str, dict] = {}

        async def run_tenant(index: int, name: str) -> None:
            writer, call = await connect(primary)
            reply = await call(
                {"op": "attach", "tenant": name, "program": K8S_PROGRAM}
            )
            assert reply["ok"], reply
            ops = k8s_setup() + k8s_events(events_per_tenant, seed=index)
            requests = as_requests(name, ops)
            held_back[name] = requests.pop()
            for request in requests:
                reply = await call(request)
                assert reply.get("durable"), reply
            writer.close()
            await writer.wait_closed()

        started = time.perf_counter()
        await asyncio.gather(
            *(run_tenant(i, name) for i, name in enumerate(names))
        )
        timings["stream_s"] = time.perf_counter() - started

        # Steady state: semi-sync acks mean the standby trails by zero
        # records the moment the last client ack lands.
        writer, call = await connect(standby)
        status = await call({"op": "status"})
        lag_records = status["replication"]["lag_records"]
        assert not primary.shipper.degraded, "replication degraded"

        await kill_in_process(primary)

        started = time.perf_counter()
        reply = await call({"op": "promote"})
        timings["promote_ms"] = (time.perf_counter() - started) * 1000
        assert reply["ok"] and reply["epoch"] >= 2, reply
        first_ack = None
        for name in names:
            acked = await call(held_back[name])
            assert acked.get("durable"), acked
            if first_ack is None:
                first_ack = (time.perf_counter() - started) * 1000
        timings["first_ack_ms"] = first_ack
        writer.close()
        await writer.wait_closed()

        for name in names:
            session = standby.registry.get(name)
            stats = session.stats()
            results[name] = {
                "lag_records": lag_records,
                "applied_seq": stats["applied_seq"],
                "events_left": len(session.query("event")),
                "remediations": len(session.query("remediation")),
                "tickets": len(session.query("ticket")),
                "wm": stats["wm_size"],
                "epoch": standby.epoch,
            }
        await kill_in_process(standby)

    rows: list[dict] = []
    with tempfile.TemporaryDirectory() as directory:
        asyncio.run(drive(directory))
        for name in names:
            final = results[name]
            assert final["applied_seq"] == total_ops, (name, final)
            rows.append(
                {
                    "tenant": name,
                    "events": events_per_tenant,
                    "events/s": (
                        tenants * (total_ops - 1) / timings["stream_s"]
                        if timings["stream_s"]
                        else 0.0
                    ),
                    "promote_ms": timings["promote_ms"],
                    "first_ack_ms": timings["first_ack_ms"],
                    **final,
                }
            )
    return ("A10 warm-standby failover (docs/REPLICATION.md)", rows)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

REPORTS = {
    "f1": report_f1,
    "a4": report_a4,
    "a5": report_a5,
    "a6": report_a6,
    "a7": report_a7,
    "a8": report_a8,
    "a9": report_a9,
    "a10": report_a10,
    "e1": report_e1,
    "e2": report_e2,
    "e3": report_e3,
    "e4": report_e4,
    "e6": report_e6,
    "e7": report_e7,
    "e8": report_e8,
    "e9": report_e9,
}


def main(argv: list[str] | None = None) -> str:
    """Run the selected (default: all) reports; returns the printed text."""
    names = [a.lower() for a in (argv if argv is not None else sys.argv[1:])]
    selected = names or sorted(REPORTS)
    blocks: list[str] = []
    for name in selected:
        if name not in REPORTS:
            raise SystemExit(
                f"unknown experiment {name!r}; choose from {sorted(REPORTS)}"
            )
        title, rows = REPORTS[name]()
        blocks.append(render_table(rows, title=title))
    blocks.append(repro_footer(CORE_STRATEGIES))
    output = "\n\n".join(blocks)
    print(output)
    return output


if __name__ == "__main__":
    main()
