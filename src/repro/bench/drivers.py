"""Benchmark drivers: build a system, drive a WM stream, collect metrics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.engine.wm import WorkingMemory
from repro.instrument import Counters, SpaceReport
from repro.lang.analysis import RuleAnalysis, analyze_program
from repro.lang.ast import Program
from repro.lang.parser import parse_program
from repro.match import STRATEGIES, MatchStrategy
from repro.obs import Observability
from repro.storage.schema import Value
from repro.storage.tuples import StoredTuple

#: Event stream element: ("insert", (class, values)) or ("delete", index).
Event = tuple[str, object]


@dataclass
class StrategyRun:
    """Metrics of one strategy over one stream."""

    strategy: str
    events: int = 0
    wall_seconds: float = 0.0
    counters: dict[str, int] = field(default_factory=dict)
    space: SpaceReport | None = None
    conflict_additions: int = 0
    conflict_size: int = 0
    metrics: dict | None = None
    #: Deterministic work-distribution totals when the run used a worker
    #: pool (see :class:`repro.parallel.PoolStats`); ``None`` for serial.
    pool_stats: dict | None = None

    def row(self, *counter_names: str) -> dict:
        """A table row with selected counters."""
        row: dict = {
            "strategy": self.strategy,
            "events": self.events,
            "ms": self.wall_seconds * 1000.0,
            "us/event": (
                self.wall_seconds * 1e6 / self.events if self.events else 0.0
            ),
        }
        for name in counter_names:
            row[name] = self.counters.get(name, 0)
        return row


def resolve_program(source: str | Program) -> tuple[Program, dict[str, RuleAnalysis]]:
    """Parse (if needed) and analyze a program."""
    program = parse_program(source) if isinstance(source, str) else source
    return program, analyze_program(program.rules, program.schemas)


def build_system(
    source: str | Program,
    strategy_name: str,
    backend: str = "memory",
    obs: Observability | None = None,
    compile_mode: str = "off",
    workers: int = 1,
) -> tuple[WorkingMemory, MatchStrategy]:
    """A fresh WM plus one attached strategy with its own counters.

    ``workers > 1`` attaches a :class:`repro.parallel.WorkerPool` to the
    strategy (reachable as ``strategy.pool``; callers should ``close()``
    it when done, though garbage collection also reclaims the threads).
    """
    program, analyses = resolve_program(source)
    wm = WorkingMemory(program.schemas, backend=backend, obs=obs)
    pool = None
    if workers > 1:
        from repro.parallel import WorkerPool

        pool = WorkerPool(workers, obs=obs)
    strategy = STRATEGIES[strategy_name](
        wm, analyses, counters=Counters(), compile_mode=compile_mode,
        pool=pool,
    )
    return wm, strategy


def drive_stream(
    wm: WorkingMemory,
    events: list[Event],
    batch_size: int = 1,
) -> tuple[int, list[StoredTuple]]:
    """Apply an event stream; returns (#events, live tuples).

    With ``batch_size`` > 1, events are applied set-at-a-time through
    :meth:`WorkingMemory.apply_batch` in groups of up to *batch_size*
    operations, exercising the batched storage and match paths.  The
    delete indexing is computed over the same ``live`` sequence as the
    tuple-at-a-time path, so both paths realize the identical logical
    stream.
    """
    live: list[StoredTuple | None] = []
    if batch_size <= 1:
        for kind, payload in events:
            if kind == "insert":
                class_name, values = payload  # type: ignore[misc]
                live.append(wm.insert(class_name, values))
            elif kind == "delete":
                index = payload  # type: ignore[assignment]
                wm.remove(live.pop(index % len(live)))
            else:
                raise ValueError(f"unknown event kind {kind!r}")
        return len(events), live

    pending: list[tuple] = []
    pending_slots: list[int] = []  # live[] indexes awaiting their tuple

    def flush() -> None:
        if not pending:
            return
        batch = wm.apply_batch(pending)
        for slot, delta in zip(pending_slots, batch.inserts):
            live[slot] = delta.wme
        pending.clear()
        pending_slots.clear()

    for kind, payload in events:
        if kind == "insert":
            class_name, values = payload  # type: ignore[misc]
            pending.append(("insert", class_name, values))
            live.append(None)
            pending_slots.append(len(live) - 1)
        elif kind == "delete":
            index = payload % len(live)  # type: ignore[operator]
            if live[index] is None:
                # Deleting an element of the open batch: apply it first so
                # the delete references a stored tuple.
                flush()
            wme = live.pop(index)
            pending.append(("delete", wme))
            pending_slots[:] = [
                slot - 1 if slot > index else slot for slot in pending_slots
            ]
        else:
            raise ValueError(f"unknown event kind {kind!r}")
        if len(pending) >= batch_size:
            flush()
    flush()
    return len(events), live


def inserts_as_events(
    stream: list[tuple[str, tuple[Value, ...]]]
) -> list[Event]:
    """Wrap a plain insert stream as events."""
    return [("insert", item) for item in stream]


def run_stream(
    source: str | Program,
    events: list[Event],
    strategy_name: str,
    backend: str = "memory",
    obs: Observability | None = None,
    batch_size: int = 1,
    compile_mode: str = "off",
    workers: int = 1,
) -> StrategyRun:
    """Drive *events* through one strategy, measuring time and counters.

    With an enabled *obs*, the run's final metrics snapshot (including the
    absorbed operation counters) is attached as ``StrategyRun.metrics``.
    ``workers > 1`` runs the match phase over a worker pool (closed
    before returning); its work-distribution totals land in
    ``StrategyRun.pool_stats``.
    """
    wm, strategy = build_system(
        source, strategy_name, backend=backend, obs=obs,
        compile_mode=compile_mode, workers=workers,
    )
    start = time.perf_counter()
    count, _live = drive_stream(wm, events, batch_size=batch_size)
    elapsed = time.perf_counter() - start
    metrics_snapshot = None
    if obs is not None and obs.enabled:
        obs.metrics.absorb_counters(strategy.counters)
        metrics_snapshot = obs.metrics.snapshot()
    pool_stats = None
    if strategy.pool is not None:
        pool_stats = strategy.pool.stats.as_dict()
        strategy.pool.close()
    return StrategyRun(
        strategy=strategy.strategy_name,
        events=count,
        wall_seconds=elapsed,
        counters=strategy.counters.as_dict(),
        space=strategy.space_report(),
        conflict_additions=strategy.conflict_set.additions,
        conflict_size=len(strategy.conflict_set),
        metrics=metrics_snapshot,
        pool_stats=pool_stats,
    )


def compare_strategies(
    source: str | Program,
    events: list[Event],
    strategy_names: list[str] | None = None,
) -> list[StrategyRun]:
    """Run the same stream over several strategies."""
    names = strategy_names or sorted(STRATEGIES)
    return [run_stream(source, events, name) for name in names]
