"""Benchmark harness: drivers, table rendering, experiment reports."""

from repro.bench.drivers import (
    Event,
    StrategyRun,
    build_system,
    compare_strategies,
    drive_stream,
    inserts_as_events,
    resolve_program,
    run_stream,
)
from repro.bench.report import REPORTS, main
from repro.bench.tables import format_value, render_table

__all__ = [
    "Event",
    "REPORTS",
    "StrategyRun",
    "build_system",
    "compare_strategies",
    "drive_stream",
    "format_value",
    "inserts_as_events",
    "main",
    "render_table",
    "resolve_program",
    "run_stream",
]
