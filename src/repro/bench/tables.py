"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from collections.abc import Sequence


def format_value(value: object) -> str:
    """Human-friendly cell formatting."""
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e9:
            return str(int(value))
        return f"{value:.2f}"
    return str(value)


def render_table(
    rows: Sequence[dict],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict-rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    parts: list[str] = []
    if title:
        parts.append(title)
    header = "  ".join(col.ljust(width) for col, width in zip(columns, widths))
    parts.append(header)
    parts.append("  ".join("-" * width for width in widths))
    for line in cells:
        parts.append(
            "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        )
    return "\n".join(parts)
