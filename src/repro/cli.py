"""Command-line interface.

    python -m repro.cli run program.ops [--strategy patterns]
                                        [--resolution lex] [--max-cycles N]
                                        [--backend memory] [--quiet]
                                        [--batch-size N] [--lineage]
                                        [--compile on|off|auto]
                                        [--workers N]
                                        [--trace-out t.jsonl] [--otel]
                                        [--trace-rotate-bytes N]
                                        [--trace-keep K]
                                        [--metrics-out m.json]
                                        [--manifest [DIR]]
                                        [--wal run.wal]
                                        [--checkpoint-every N]
    python -m repro.cli resume run.wal [--checkpoint FILE]
    python -m repro.cli stats program.ops [--flamegraph [OUT]]
    python -m repro.cli check program.ops
    python -m repro.cli check --budget N [--resolutions lex,mea]
                                        [--compile-modes off,on] [--crash]
    python -m repro.cli format program.ops
    python -m repro.cli explain program.ops [RULE ...] [--why-not]
                                        [--instantiation N] [--wal f.wal]
                                        [--network] [--dot [OUT]]
    python -m repro.cli top trace.jsonl [--follow] [--interval SEC]
    python -m repro.cli report [f1 e1 ... e9]

``run`` executes an OPS5 program file (literalize + rules + top-level
``(make ...)`` initial elements) through the recognize-act cycle and prints
the firing trace, ``(write ...)`` output, and the final working memory;
``--trace-out`` streams spans/events as JSON lines, ``--metrics-out``
writes the final metrics snapshot, ``--manifest`` records the run under
``runs/<run_id>/``, ``--wal`` makes the run durable (a write-ahead log of
every committed delta batch and cycle boundary, optionally
checkpointed).  ``resume`` recovers an interrupted ``--wal`` run and
finishes it.  ``stats`` runs the program with the phase-stats sink and
prints a per-rule Match/Select/Act cost table, or with ``--flamegraph``
emits collapsed stacks for flamegraph.pl.  ``check`` validates a program
and summarizes its rules; with ``--budget`` it differential-fuzzes the
strategy matrix, and ``--crash`` turns that into the crash-recovery
equivalence campaign; ``format`` normalizes a program back to canonical
text; ``explain`` answers why a rule is (not) in the conflict set — with
provenance-backed support chains, ``--why-not`` blame analysis and
``--network``/``--dot`` Rete introspection (see OBSERVABILITY.md);
``top`` renders a live dashboard over a ``--trace-out`` stream;
``report`` regenerates the experiment tables of EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.engine.interpreter import ProductionSystem
from repro.errors import ReproError
from repro.lang.analysis import analyze_program
from repro.lang.format import format_program
from repro.lang.parser import parse_program
from repro.match import STRATEGIES
from repro.obs import (
    JsonlFileSink,
    Observability,
    PhaseStatsSink,
    RunManifest,
    git_sha,
    program_hash,
)


#: Conflict-resolution strategy names accepted by ``--resolution``.
RESOLUTIONS = ("lex", "mea", "priority", "fifo", "random")


def _read(path: str) -> str:
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _batch_size(text: str) -> int | str:
    """Argparse type for ``--batch-size``: a positive int or ``auto``."""
    if text == "auto":
        return "auto"
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {text!r}"
        ) from None
    # Range validation happens in the engine (ExecutionError -> exit 1),
    # matching the pre-'auto' CLI behaviour.
    return value


def _run_status(result) -> str:
    return (
        "halted" if result.halted
        else "cycle limit reached" if result.exhausted
        else "quiescent"
    )


def _checkpoint_path(args: argparse.Namespace) -> str | None:
    """The checkpoint file a ``--wal`` run writes, if any."""
    if args.checkpoint:
        return args.checkpoint
    if args.checkpoint_every or args.checkpoint_bytes:
        return args.wal + ".ckpt"
    return None


def cmd_run(args: argparse.Namespace) -> int:
    if not args.wal and (
        args.checkpoint or args.checkpoint_every or args.checkpoint_bytes
    ):
        print("error: checkpoint options require --wal", file=sys.stderr)
        return 2
    source = _read(args.file)
    obs = Observability()
    if args.trace_out:
        obs.add_sink(
            JsonlFileSink(
                args.trace_out,
                rotate_bytes=args.trace_rotate_bytes,
                keep=args.trace_keep,
            )
        )
    if args.otel:
        from repro.obs.otel import make_otel_sink

        otel_sink = make_otel_sink()
        if otel_sink is None:
            print(
                "warning: --otel requested but the opentelemetry "
                "distribution is not installed; continuing without it",
                file=sys.stderr,
            )
        else:
            obs.add_sink(otel_sink)
    want_metrics = bool(args.metrics_out) or args.manifest is not None
    if want_metrics:
        obs.enable_metrics()
    system = ProductionSystem(
        source,
        strategy=args.strategy,
        resolution=args.resolution,
        backend=args.backend,
        seed=args.seed,
        obs=obs,
        batch_size=args.batch_size,
        lineage=args.lineage,
        compile=args.compile,
        workers=args.workers,
    )
    if args.wal:
        from repro.recovery import DurableRun

        durable = DurableRun.start(
            system,
            args.wal,
            source,
            {
                "strategy": args.strategy,
                "resolution": args.resolution,
                "backend": args.backend,
                "seed": args.seed,
                "batch_size": args.batch_size,
                "compile": args.compile,
                "firing": "instance",
                "workers": args.workers,
            },
            fsync_every=args.fsync_every,
            checkpoint_path=_checkpoint_path(args),
            checkpoint_every=args.checkpoint_every,
            checkpoint_bytes=args.checkpoint_bytes,
        )
        try:
            result = durable.run(max_cycles=args.max_cycles)
        finally:
            durable.close()
    else:
        result = system.run(max_cycles=args.max_cycles)
    if not args.quiet:
        for record in result.fired:
            print(f"{record.cycle:4d}. {record.instantiation}")
        for line in system.output:
            print("write:", *line)
    status = _run_status(result)
    print(f"{result.cycles} cycles, {status}")
    if not args.quiet:
        print("final working memory:")
        for class_name in system.wm.schemas:
            for wme in system.wm.tuples(class_name):
                print(" ", wme)
    snapshot = system.snapshot_metrics() if want_metrics else {}
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, default=str)
            handle.write("\n")
    obs.close()
    if args.manifest is not None:
        manifest = RunManifest(
            program_hash=program_hash(source),
            program_path=args.file,
            strategy=args.strategy,
            resolution=args.resolution,
            backend=args.backend,
            firing="instance",
            batch_size=args.batch_size,
            compile=args.compile,
            workers=args.workers,
            seed=args.seed,
            command=list(sys.argv[1:]) or ["run", args.file],
            git_sha=git_sha(),
            metrics=snapshot,
            trace_path=args.trace_out,
            metrics_path=args.metrics_out,
            result={
                "cycles": result.cycles,
                "status": status,
                # The batch size actually used by the act phase: for
                # --batch-size auto this is the tuner's final budget, so
                # a manifest alone is enough to replay the run exactly.
                "resolved_batch_size": system.effective_batch_size,
            },
        )
        print("manifest:", manifest.write(base_dir=args.manifest))
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    """``repro resume run.wal``: recover a crashed run and finish it."""
    from repro.recovery import recover, resume_run

    obs = Observability()
    if args.trace_out:
        obs.add_sink(JsonlFileSink(args.trace_out))
    state = recover(args.wal, args.checkpoint, obs=obs)
    print(
        f"recovered {args.wal}: phase={state.phase} cycle={state.cycle} "
        f"position={state.position} "
        f"({state.replayed_batches} batches, {state.replayed_deltas} deltas"
        f"{', checkpoint' if state.checkpoint_used else ''}"
        f"{', torn tail truncated' if state.torn else ''})"
    )
    if state.halted:
        print("run had already halted; nothing to resume")
    result = resume_run(
        state,
        max_cycles=args.max_cycles,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        checkpoint_bytes=args.checkpoint_bytes,
    )
    system = state.system
    if not args.quiet:
        for record in result.fired:
            print(f"{record.cycle:4d}. {record.instantiation}")
        for line in system.output:
            print("write:", *line)
    print(f"{result.cycles} cycles after recovery, {_run_status(result)}")
    if not args.quiet:
        print("final working memory:")
        for class_name in system.wm.schemas:
            for wme in system.wm.tuples(class_name):
                print(" ", wme)
    obs.close()
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.bench.tables import render_table

    if args.flamegraph is not None:
        return _cmd_stats_flamegraph(args)
    sink = PhaseStatsSink()
    obs = Observability(sinks=[sink], collect_metrics=True)
    system = ProductionSystem(
        _read(args.file),
        strategy=args.strategy,
        resolution=args.resolution,
        backend=args.backend,
        seed=args.seed,
        obs=obs,
    )
    result = system.run(max_cycles=args.max_cycles)
    rows = sink.table_rows()
    columns = ["rule", "fires", "match_us", "select_us", "act_us", "total_us"]
    title = (
        f"{args.file} — per-rule phase costs "
        f"({args.strategy}/{args.resolution})"
    )
    print(render_table(rows, columns=columns, title=title))
    totals = sink.totals()
    print(
        f"\n{result.cycles} cycles, {_run_status(result)}; "
        f"total {totals['total_us']:.0f} us "
        f"(match {totals['match_us']:.0f}, select {totals['select_us']:.0f}, "
        f"act {totals['act_us']:.0f})"
    )
    return 0


def _cmd_stats_flamegraph(args: argparse.Namespace) -> int:
    """``repro stats --flamegraph``: collapsed stacks for flamegraph.pl.

    FILE may be a ``--trace-out`` span stream (``*.jsonl``), which is
    folded as-is — the way to see a ``--wal`` run's ``recovery.fsync``
    time — or an OPS5 program, which is executed here with tracing on.
    """
    from repro.obs import CallbackSink, fold_spans, fold_trace_file
    from repro.obs.flame import render_folded

    if args.file.endswith(".jsonl"):
        stacks = fold_trace_file(args.file)
    else:
        records: list[dict] = []
        obs = Observability(sinks=[CallbackSink(records.append)])
        system = ProductionSystem(
            _read(args.file),
            strategy=args.strategy,
            resolution=args.resolution,
            backend=args.backend,
            seed=args.seed,
            obs=obs,
        )
        system.run(max_cycles=args.max_cycles)
        stacks = fold_spans(records)
    folded = render_folded(stacks)
    if args.flamegraph == "-":
        sys.stdout.write(folded)
    else:
        with open(args.flamegraph, "w", encoding="utf-8") as handle:
            handle.write(folded)
        print(f"{len(stacks)} stacks -> {args.flamegraph}")
    return 0


def _csv(text: str) -> list[str]:
    return [item for item in (part.strip() for part in text.split(",")) if item]


def cmd_check(args: argparse.Namespace) -> int:
    if args.budget is not None or args.file is None or args.crash:
        return _cmd_check_fuzz(args)
    program = parse_program(_read(args.file))
    analyses = analyze_program(program.rules, program.schemas)
    print(
        f"{len(program.schemas)} classes, {len(program.rules)} rules, "
        f"{len(program.initial_elements)} initial elements"
    )
    for analysis in analyses.values():
        positive = len(analysis.positive_conditions())
        negated = len(analysis.negated_conditions())
        joins = sum(
            1 for component in analysis.components if len(component) > 1
        )
        print(
            f"  {analysis.name}: {positive}+{negated} conditions, "
            f"{joins} join component(s), "
            f"{len(analysis.rule.actions)} action(s)"
        )
    return 0


def _cmd_check_fuzz(args: argparse.Namespace) -> int:
    """``repro check [FILE] --budget N``: the differential fuzz campaign.

    Replays each generated trace through every configured
    strategy × backend × batch-size combination and reports the first
    divergence per trace; failures are shrunk with ddmin and, under
    ``--save-repro``, written into the regression corpus.  With FILE the
    rule base is pinned and only op scripts are fuzzed.
    """
    from repro.check import run_check

    budget = args.budget if args.budget is not None else 50
    strategies = None
    if args.strategies:
        names = _csv(args.strategies)
        unknown = sorted(set(names) - set(STRATEGIES))
        if unknown:
            print(f"error: unknown strategies: {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        strategies = names
    backends = _csv(args.backends) if args.backends else None
    batch_sizes = None
    if args.batch_sizes:
        batch_sizes = [_batch_size(text) for text in _csv(args.batch_sizes)]
    resolutions = None
    if args.resolutions:
        names = _csv(args.resolutions)
        unknown = sorted(set(names) - set(RESOLUTIONS))
        if unknown:
            print(f"error: unknown resolutions: {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        resolutions = tuple(names)
    compile_modes = None
    if args.compile_modes:
        names = _csv(args.compile_modes)
        unknown = sorted(set(names) - {"off", "on", "auto"})
        if unknown:
            print(f"error: unknown compile modes: {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        compile_modes = tuple(names)
    worker_counts = None
    if args.workers:
        try:
            worker_counts = tuple(int(text) for text in _csv(args.workers))
        except ValueError:
            print(f"error: --workers wants integers, got {args.workers!r}",
                  file=sys.stderr)
            return 2
        if any(count < 1 for count in worker_counts):
            print("error: worker counts must be >= 1", file=sys.stderr)
            return 2
    exec_modes = None
    if args.exec_modes:
        names = _csv(args.exec_modes)
        unknown = sorted(set(names) - {"cycle", "set", "txn"})
        if unknown:
            print(f"error: unknown exec modes: {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        exec_modes = tuple(names)
    obs = Observability()
    if args.trace_out:
        obs.add_sink(JsonlFileSink(args.trace_out))
    if args.metrics_out:
        obs.enable_metrics()
    if args.crash:
        return _cmd_check_crash(
            args, budget, backends, batch_sizes, resolutions, obs,
            worker_counts, exec_modes,
        )
    report = run_check(
        budget=budget,
        seed=args.seed,
        strategies=strategies,
        backends=backends,
        batch_sizes=batch_sizes,
        program=_read(args.file) if args.file else None,
        save_repro_dir=args.save_repro,
        obs=obs,
        resolutions=resolutions,
        compile_modes=compile_modes,
        worker_counts=worker_counts,
        exec_modes=exec_modes,
    )
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(obs.metrics.snapshot(), handle, indent=2, default=str)
            handle.write("\n")
    obs.close()
    for failure in report.failures:
        print(f"FAIL {failure.trace.name}: {failure.divergence.describe()}")
        if failure.shrunk is not None:
            print(
                f"  shrunk to {len(failure.shrunk.ops)} op(s), "
                f"{failure.shrunk.program.count('(p ')} rule(s)"
            )
        if failure.repro_path:
            print(f"  repro saved: {failure.repro_path}")
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_check_crash(
    args, budget, backends, batch_sizes, resolutions, obs,
    worker_counts=None, exec_modes=None,
) -> int:
    """``repro check --crash``: the crash-recovery equivalence campaign."""
    from repro.check import run_crash_check
    from repro.check.crash import CRASH_EXEC_MODES

    kwargs = {}
    if backends is not None:
        kwargs["backends"] = tuple(backends)
    if batch_sizes is not None:
        kwargs["batch_sizes"] = tuple(batch_sizes)
    if worker_counts is not None:
        kwargs["worker_counts"] = worker_counts
    if exec_modes is not None:
        modes = tuple(m for m in exec_modes if m in CRASH_EXEC_MODES)
        if modes:
            kwargs["exec_modes"] = modes
    if getattr(args, "replica", False):
        kwargs["replicate"] = True
    report = run_crash_check(
        budget=budget,
        seed=args.seed,
        resolutions=resolutions,
        program=_read(args.file) if args.file else None,
        save_repro_dir=args.save_repro,
        obs=obs,
        **kwargs,
    )
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(obs.metrics.snapshot(), handle, indent=2, default=str)
            handle.write("\n")
    obs.close()
    for finding in report.findings:
        print(f"FAIL {finding.trace.name}: {finding.describe()}")
    print(report.summary())
    return 0 if report.ok else 1


def cmd_format(args: argparse.Namespace) -> int:
    program = parse_program(_read(args.file))
    print(format_program(program))
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """``repro explain``: diagnosis plus provenance-backed support chains.

    The system is built with lineage recording on, so every conflict-set
    instantiation — including those derived from the initial WM load —
    carries its support chain (WM tuples, join-node path, cycle, WAL
    sequence number when ``--wal`` is given).  By default the initial
    state is diagnosed without running; ``--max-cycles`` runs the engine
    first so the chains include firing/retraction history.
    """
    from repro.obs.xray import render_support, why_not

    source = _read(args.file)
    system = ProductionSystem(source, strategy=args.strategy, lineage=True)
    names = args.rules or list(system.analyses)
    unknown = [name for name in names if name not in system.analyses]
    if unknown:
        print(f"error: no rule named {unknown[0]!r}", file=sys.stderr)
        return 1
    durable = None
    if args.wal:
        from repro.recovery import DurableRun

        durable = DurableRun.start(
            system,
            args.wal,
            source,
            {
                "strategy": args.strategy,
                "resolution": "lex",
                "backend": "memory",
                "seed": 0,
                "batch_size": 1,
                "firing": "instance",
            },
        )
    try:
        if args.max_cycles:
            if durable is not None:
                durable.run(max_cycles=args.max_cycles)
            else:
                system.run(max_cycles=args.max_cycles)
    finally:
        if durable is not None:
            durable.close()
    if args.dot is not None:
        return _explain_dot(args, system)
    if args.network:
        print(json.dumps(system.strategy.describe(), indent=2, default=str))
        return 0
    recorder = system.lineage_recorder
    for name in names:
        if args.why_not:
            print(why_not(system, name))
            print()
            continue
        print(system.explain(name))
        lineages = recorder.for_rule(name)
        if args.instantiation is not None:
            if not 1 <= args.instantiation <= len(lineages):
                print(
                    f"error: {name} has {len(lineages)} recorded "
                    f"instantiation(s), no #{args.instantiation}",
                    file=sys.stderr,
                )
                return 1
            lineages = [lineages[args.instantiation - 1]]
        conditions = system.analyses[name].conditions
        for lineage in lineages:
            print()
            print(render_support(lineage, conditions))
        print()
    return 0


def _explain_dot(args: argparse.Namespace, system: ProductionSystem) -> int:
    """``repro explain --dot``: the network as Graphviz DOT."""
    to_dot = getattr(system.strategy, "to_dot", None)
    if to_dot is None:
        print(
            f"error: strategy {args.strategy!r} has no node graph to "
            "render (use a rete strategy)",
            file=sys.stderr,
        )
        return 1
    text = to_dot()
    if args.dot == "-":
        sys.stdout.write(text)
    else:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"network graph -> {args.dot}")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """``repro top trace.jsonl``: dashboard over a ``--trace-out`` stream.

    One frame summarizes throughput, cycle-latency percentiles, the
    hottest join nodes and WAL lag; ``--follow`` keeps tailing the file
    and redraws the frame in place every ``--interval`` seconds.
    """
    from repro.obs.xray import TopAggregator, render_top

    aggregator = TopAggregator(window=args.window)
    frames = 0
    try:
        with open(args.trace, encoding="utf-8") as handle:
            while True:
                for line in handle:
                    aggregator.feed_line(line)
                frame = render_top(aggregator)
                if args.follow and frames:
                    height = frame.count("\n") + 1
                    sys.stdout.write(f"\x1b[{height}A\x1b[J")
                print(frame, flush=True)
                frames += 1
                if not args.follow or (args.frames and frames >= args.frames):
                    break
                time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.bench.report import main as report_main

    report_main(args.experiments)
    return 0


def _tenant_depths(entries, flag: str) -> dict[str, int]:
    """Parse repeated ``TENANT=N`` per-tenant quota overrides."""
    overrides: dict[str, int] = {}
    for entry in entries or []:
        tenant, sep, depth = entry.partition("=")
        if not sep or not tenant or not depth.isdigit():
            raise ReproError(f"{flag} expects TENANT=N, got {entry!r}")
        overrides[tenant] = int(depth)
    return overrides


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve --data-dir DIR``: the multi-tenant rule service.

    Recovers every tenant log under the data directory, then listens for
    newline-delimited JSON requests (see ``docs/SERVING.md``).  SIGTERM
    and SIGINT trigger a graceful shutdown: drain, group-flush, final
    checkpoint per tenant, close the logs.  ``--follow HOST:PORT``
    starts the server as a read-only warm standby of that primary
    instead (see ``docs/REPLICATION.md``).
    """
    import asyncio
    import contextlib
    import signal

    from repro.obs import Observability
    from repro.serve.backpressure import AdmissionController, AdmissionPolicy
    from repro.serve.server import RuleServer

    defer_overrides = _tenant_depths(
        args.tenant_defer_depth, "--tenant-defer-depth"
    )
    shed_overrides = _tenant_depths(
        args.tenant_shed_depth, "--tenant-shed-depth"
    )
    tenant_policies = {}
    for tenant in sorted(set(defer_overrides) | set(shed_overrides)):
        defer = defer_overrides.get(tenant, args.defer_depth)
        shed = shed_overrides.get(tenant, args.shed_depth)
        if not 0 < defer <= shed:
            raise ReproError(
                f"tenant {tenant!r} needs 0 < defer ({defer}) <= shed "
                f"({shed}); adjust the per-tenant overrides"
            )
        tenant_policies[tenant] = AdmissionPolicy(
            defer_depth=defer, shed_depth=shed
        )

    obs = Observability(collect_metrics=True)
    server = RuleServer(
        args.data_dir,
        host=args.host,
        port=args.port,
        obs=obs,
        admission=AdmissionController(
            AdmissionPolicy(
                defer_depth=args.defer_depth, shed_depth=args.shed_depth
            ),
            obs=obs,
            tenant_policies=tenant_policies,
        ),
        checkpoint_rounds=args.checkpoint_rounds,
        wal_rotate_bytes=args.rotate_bytes,
        follow=args.follow,
        takeover_deadline=args.takeover_deadline,
    )

    async def _serve() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signum, server._stopping.set)
        await server.start()
        try:
            await server.serve_forever()
        finally:
            await server.shutdown()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_promote(args: argparse.Namespace) -> int:
    """``repro promote HOST:PORT``: turn a warm standby into the primary.

    Sends the ``promote`` op; the follower finalizes every tenant at its
    last shipped boundary, bumps the fencing epoch, and starts accepting
    writes.  Prints the reply (new epoch, promoted tenants).
    """
    import socket

    host, _, port = args.server.rpartition(":")
    with socket.create_connection(
        (host or "127.0.0.1", int(port)), timeout=args.timeout
    ) as sock:
        sock.sendall(b'{"op": "promote"}\n')
        reply = json.loads(sock.makefile("r", encoding="utf-8").readline())
    print(json.dumps(reply, indent=2, sort_keys=True))
    return 0 if reply.get("ok") else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Production rule systems in a DBMS environment "
        "(Sellis/Lin/Raschid, SIGMOD 1988)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run an OPS5 program file")
    run.add_argument("file")
    run.add_argument(
        "--strategy", default="patterns", choices=sorted(STRATEGIES)
    )
    run.add_argument(
        "--resolution", default="lex", choices=list(RESOLUTIONS)
    )
    run.add_argument("--backend", default="memory",
                     choices=["memory", "sqlite"])
    run.add_argument("--max-cycles", type=int, default=10_000)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--wal",
        metavar="FILE",
        help="attach a write-ahead log: every committed delta batch and "
        "cycle boundary is logged to FILE, making the run resumable with "
        "'repro resume FILE' after a crash",
    )
    run.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="checkpoint snapshot path (default: WAL path + '.ckpt' when "
        "--checkpoint-every/--checkpoint-bytes is set)",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="cut a checkpoint every N engine cycles (requires --wal)",
    )
    run.add_argument(
        "--checkpoint-bytes",
        type=int,
        default=0,
        metavar="M",
        help="cut a checkpoint every M durable log bytes (requires --wal)",
    )
    run.add_argument(
        "--fsync-every",
        type=int,
        default=64,
        metavar="N",
        help="fsync the WAL every N buffered records (boundaries always "
        "sync; default: 64)",
    )
    run.add_argument(
        "--batch-size",
        type=_batch_size,
        default=1,
        metavar="N",
        help="act-phase delta batch size; 1 (default) propagates WM "
        "changes tuple-at-a-time, N>1 delivers them to the match "
        "strategies as batches of up to N deltas (§4.2.3), and 'auto' "
        "tunes the budget from the observed per-relation group fan-out",
    )
    run.add_argument(
        "--compile",
        default="auto",
        choices=["off", "on", "auto"],
        help="match compilation: lower alpha tests and join predicates "
        "into specialized kernels at network-build time ('auto', the "
        "default, falls back to the interpreted path per node on any "
        "lowering failure; both modes are bit-for-bit equivalent)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="match-phase worker pool size; 1 (default) is the serial "
        "reference loop, N>1 fans alpha evaluation and join probes "
        "across N workers with a deterministic merge — conflict sets, "
        "fired sequences and final WM stay bit-identical to --workers 1 "
        "(see docs/PARALLELISM.md)",
    )
    run.add_argument("--quiet", action="store_true")
    run.add_argument(
        "--lineage",
        action="store_true",
        help="record token provenance for every conflict-set "
        "instantiation (the support chains 'repro explain' renders); "
        "off by default, and the match/act hot paths are untouched "
        "when disabled",
    )
    run.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write spans and events as JSON lines to FILE",
    )
    run.add_argument(
        "--trace-rotate-bytes",
        type=int,
        default=0,
        metavar="N",
        help="size-rotate the --trace-out file when it reaches N bytes "
        "(0 = never rotate); rotations shift to FILE.1, FILE.2, ...",
    )
    run.add_argument(
        "--trace-keep",
        type=int,
        default=3,
        metavar="K",
        help="rotated trace files to keep before the oldest is deleted "
        "(default: 3)",
    )
    run.add_argument(
        "--otel",
        action="store_true",
        help="also forward spans and events to OpenTelemetry when the "
        "SDK is installed (warns and continues without it)",
    )
    run.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write the final metrics snapshot as JSON to FILE",
    )
    run.add_argument(
        "--manifest",
        nargs="?",
        const="runs",
        metavar="DIR",
        help="record the run under DIR/<run_id>/ (default: runs/)",
    )
    run.set_defaults(handler=cmd_run)

    resume = commands.add_parser(
        "resume",
        help="recover a crashed --wal run from its log and finish it",
    )
    resume.add_argument("wal", help="write-ahead log of the crashed run")
    resume.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="checkpoint to fast-start from (validated against the log)",
    )
    resume.add_argument("--max-cycles", type=int, default=10_000)
    resume.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="keep checkpointing every N cycles while finishing",
    )
    resume.add_argument(
        "--checkpoint-bytes", type=int, default=0, metavar="M",
        help="keep checkpointing every M durable log bytes",
    )
    resume.add_argument("--quiet", action="store_true")
    resume.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write recovery.* spans and events as JSON lines to FILE",
    )
    resume.set_defaults(handler=cmd_resume)

    stats = commands.add_parser(
        "stats", help="per-rule Match/Select/Act cost table for one run"
    )
    stats.add_argument("file")
    stats.add_argument(
        "--strategy", default="patterns", choices=sorted(STRATEGIES)
    )
    stats.add_argument(
        "--resolution", default="lex", choices=list(RESOLUTIONS)
    )
    stats.add_argument("--backend", default="memory",
                       choices=["memory", "sqlite"])
    stats.add_argument("--max-cycles", type=int, default=10_000)
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument(
        "--flamegraph",
        nargs="?",
        const="-",
        metavar="OUT",
        help="emit collapsed stacks (flamegraph.pl format) instead of the "
        "cost table; FILE may be a --trace-out *.jsonl span stream (folded "
        "as-is, showing e.g. recovery.fsync time of a --wal run) or a "
        "program to execute with tracing; OUT defaults to stdout",
    )
    stats.set_defaults(handler=cmd_stats)

    check = commands.add_parser(
        "check",
        help="validate a program, or fuzz the strategy matrix (--budget)",
    )
    check.add_argument(
        "file",
        nargs="?",
        help="program to validate; with --budget, pins the fuzzed rule base",
    )
    check.add_argument(
        "--budget",
        type=int,
        metavar="N",
        help="differential-fuzz N generated traces across the "
        "strategy × backend × batch-size matrix (omitting FILE "
        "defaults the budget to 50)",
    )
    check.add_argument("--seed", type=int, default=0)
    check.add_argument(
        "--strategies",
        metavar="A,B,...",
        help="comma-separated strategy subset (default: all)",
    )
    check.add_argument(
        "--backends",
        metavar="A,B",
        help="comma-separated backend subset (default: memory,sqlite)",
    )
    check.add_argument(
        "--batch-sizes",
        metavar="N,M,...",
        help="comma-separated batch sizes, ints or 'auto' "
        "(default: 1,8,auto)",
    )
    check.add_argument(
        "--resolutions",
        metavar="A,B,...",
        help="comma-separated conflict-resolution strategies rotated "
        "across generated traces (default: lex)",
    )
    check.add_argument(
        "--compile-modes",
        metavar="A,B",
        help="comma-separated match-compilation modes; the default matrix "
        "pairs every compiled-family cell with a compile='on' twin "
        "(default: off,on)",
    )
    check.add_argument(
        "--workers",
        metavar="N,M,...",
        help="comma-separated worker counts; every cell with workers>1 "
        "must stay bit-identical to its workers=1 twin (default: 1)",
    )
    check.add_argument(
        "--exec-modes",
        metavar="A,B,...",
        help="comma-separated execution modes rotated across cells: "
        "'cycle' (the serial recognize-act reference), 'set' (§5.1 "
        "set-firing) and 'txn' (the §5.2 concurrent 2PL scheduler); "
        "each mode group is compared against its own serial reference "
        "(default: cycle)",
    )
    check.add_argument(
        "--crash",
        action="store_true",
        help="run the crash-recovery equivalence campaign instead: each "
        "trace runs under a WAL, is killed at a random armed crash site, "
        "recovered, finished, and compared to its uninterrupted reference",
    )
    check.add_argument(
        "--replica",
        action="store_true",
        help="with --crash: rotate warm-standby cells in — the armed run "
        "ships its WAL to an in-process follower, the crash is survived "
        "by promoting the follower, and the promoted run must still "
        "match the uninterrupted reference",
    )
    check.add_argument(
        "--save-repro",
        nargs="?",
        const="tests/corpus",
        metavar="DIR",
        help="write shrunk failing traces into DIR "
        "(default: tests/corpus/)",
    )
    check.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write check.* spans and events as JSON lines to FILE",
    )
    check.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write the final metrics snapshot as JSON to FILE",
    )
    check.set_defaults(handler=cmd_check)

    fmt = commands.add_parser("format", help="normalize a program to text")
    fmt.add_argument("file")
    fmt.set_defaults(handler=cmd_format)

    explain = commands.add_parser(
        "explain",
        help="diagnose why rules are (not) satisfied, with provenance",
    )
    explain.add_argument("file")
    explain.add_argument("rules", nargs="*")
    explain.add_argument(
        "--strategy", default="patterns", choices=sorted(STRATEGIES)
    )
    explain.add_argument(
        "--max-cycles",
        type=int,
        default=0,
        metavar="N",
        help="run up to N engine cycles before explaining (default 0: "
        "diagnose the initial WM) so support chains carry firing and "
        "retraction history",
    )
    explain.add_argument(
        "--instantiation",
        type=int,
        metavar="N",
        help="show only the Nth recorded instantiation's support chain "
        "(1-based, in first-seen order)",
    )
    explain.add_argument(
        "--why-not",
        action="store_true",
        help="name the first failing alpha test, empty join or blocking "
        "negation preventing each rule from matching",
    )
    explain.add_argument(
        "--wal",
        metavar="FILE",
        help="run durably under a fresh write-ahead log at FILE so every "
        "support chain carries the WAL sequence number it is covered by",
    )
    explain.add_argument(
        "--network",
        action="store_true",
        help="print the strategy's introspection report (node graph with "
        "live per-node gauges) as JSON and exit",
    )
    explain.add_argument(
        "--dot",
        nargs="?",
        const="-",
        metavar="OUT",
        help="write the Rete network as Graphviz DOT to OUT "
        "(default: stdout) and exit",
    )
    explain.set_defaults(handler=cmd_explain)

    top = commands.add_parser(
        "top",
        help="live engine dashboard over a --trace-out JSONL stream",
    )
    top.add_argument("trace", help="trace file written by run --trace-out")
    top.add_argument(
        "--follow",
        action="store_true",
        help="keep tailing the file, redrawing the dashboard in place",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SEC",
        help="seconds between --follow redraws (default: 1.0)",
    )
    top.add_argument(
        "--window",
        type=int,
        default=64,
        metavar="N",
        help="cycles in the sliding throughput window (default: 64)",
    )
    top.add_argument(
        "--frames",
        type=int,
        default=0,
        metavar="N",
        help="with --follow, stop after N redraws (0 = until ^C)",
    )
    top.set_defaults(handler=cmd_top)

    report = commands.add_parser(
        "report", help="regenerate experiment tables"
    )
    report.add_argument("experiments", nargs="*")
    report.set_defaults(handler=cmd_report)

    serve = commands.add_parser(
        "serve",
        help="host many tenant sessions over newline-delimited JSON/TCP",
    )
    serve.add_argument(
        "--data-dir",
        required=True,
        metavar="DIR",
        help="directory holding one WAL + checkpoint per tenant; every "
        "log found here is recovered before the socket opens",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0 = ephemeral; the bound port is "
        "announced on stdout as 'serving on HOST:PORT')",
    )
    serve.add_argument(
        "--checkpoint-rounds",
        type=int,
        default=8,
        metavar="N",
        help="checkpoint a tenant every N group-commit rounds it took "
        "part in (default: 8)",
    )
    serve.add_argument(
        "--rotate-bytes",
        type=int,
        default=256 * 1024,
        metavar="BYTES",
        help="archive a tenant's WAL segment past this size; "
        "checkpoints then compact superseded segments (default: 256k)",
    )
    serve.add_argument(
        "--defer-depth",
        type=int,
        default=64,
        metavar="N",
        help="queue depth at which new ops defer to the next drain",
    )
    serve.add_argument(
        "--shed-depth",
        type=int,
        default=256,
        metavar="N",
        help="queue depth at which new ops are shed (client retries)",
    )
    serve.add_argument(
        "--tenant-defer-depth",
        action="append",
        metavar="TENANT=N",
        help="per-tenant defer-depth override (repeatable); other "
        "tenants keep the global --defer-depth",
    )
    serve.add_argument(
        "--tenant-shed-depth",
        action="append",
        metavar="TENANT=N",
        help="per-tenant shed-depth override (repeatable); other "
        "tenants keep the global --shed-depth",
    )
    serve.add_argument(
        "--follow",
        metavar="HOST:PORT",
        help="start as a read-only warm standby of that primary: tail "
        "its WAL shipments, stay bit-identical at every shipped "
        "boundary, and promote on request (or automatically once the "
        "primary is unreachable past --takeover-deadline)",
    )
    serve.add_argument(
        "--takeover-deadline",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="with --follow: self-promote after the primary has been "
        "unreachable this long (0 disables automatic takeover; "
        "default: 10)",
    )
    serve.set_defaults(handler=cmd_serve)

    promote = commands.add_parser(
        "promote",
        help="promote a warm standby (a --follow server) to primary",
    )
    promote.add_argument(
        "server",
        metavar="HOST:PORT",
        help="address of the follower to promote",
    )
    promote.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="connection timeout (default: 10)",
    )
    promote.set_defaults(handler=cmd_promote)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
