"""Semantic analysis of rules.

Turns a :class:`~repro.lang.ast.Rule` into the normalized form every match
strategy consumes:

* validation against the literalized schemas (unknown classes/attributes,
  variables in negated CEs that no positive CE binds, RHS variables that the
  LHS never binds — all the ways a 1988 rule compiler would reject input);
* per-condition split into a variable-free predicate, equality variable
  slots, and residual (non-equality) variable tests;
* the rule's variable-sharing join graph and its connected components,
  which §4.2's matching patterns need (the RCE lists are exactly the other
  conditions in the same component);
* translation to :class:`~repro.storage.query.ConjunctSpec` lists for the
  §4.1 simplified strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RuleError
from repro.lang.ast import (
    AttributeTest,
    BindAction,
    CallAction,
    ComputeExpr,
    ConditionElement,
    Constant,
    DisjunctionTest,
    Expression,
    MakeAction,
    ModifyAction,
    RemoveAction,
    Rule,
    Variable,
    VarExpr,
    WriteAction,
)
from repro.storage.predicate import (
    Comparison,
    Membership,
    Predicate,
    conjunction,
)
from repro.storage.query import ConjunctSpec, VariableTest
from repro.storage.schema import RelationSchema


@dataclass(frozen=True)
class AnalyzedCondition:
    """Normal form of one condition element.

    Attributes:
        index: 0-based position in the rule's LHS.
        ce: The original condition element.
        constant_predicate: Conjunction of the variable-free tests.
        equalities: ``(attribute, variable)`` pairs, one per ``=``-test on a
            variable (bindings and equality joins look identical here; which
            occurrence binds is an evaluation-order decision).
        residual: Non-equality variable tests (``^salary < <s>``).
    """

    index: int
    ce: ConditionElement
    constant_predicate: Predicate
    equalities: tuple[tuple[str, str], ...]
    residual: tuple[VariableTest, ...]

    @property
    def negated(self) -> bool:
        return self.ce.negated

    @property
    def class_name(self) -> str:
        return self.ce.class_name

    @property
    def cond_number(self) -> int:
        """The paper's 1-based Condition Element Number (CEN)."""
        return self.index + 1

    def variables(self) -> set[str]:
        return {v for _, v in self.equalities} | {
            t.variable for t in self.residual
        }

    def to_conjunct(self) -> ConjunctSpec:
        """Translate to the storage layer's query conjunct form."""
        return ConjunctSpec(
            relation=self.class_name,
            constant=self.constant_predicate,
            equalities=self.equalities,
            residual=self.residual,
            negated=self.negated,
        )


@dataclass(frozen=True)
class RuleAnalysis:
    """Everything the match strategies need to know about one rule."""

    rule: Rule
    conditions: tuple[AnalyzedCondition, ...]
    variable_classes: dict[str, set[int]] = field(hash=False)
    components: tuple[tuple[int, ...], ...] = ()

    @property
    def name(self) -> str:
        return self.rule.name

    def condition(self, cond_number: int) -> AnalyzedCondition:
        """Return the condition with the paper's 1-based CEN."""
        return self.conditions[cond_number - 1]

    def positive_conditions(self) -> tuple[AnalyzedCondition, ...]:
        return tuple(c for c in self.conditions if not c.negated)

    def negated_conditions(self) -> tuple[AnalyzedCondition, ...]:
        return tuple(c for c in self.conditions if c.negated)

    def conditions_on(self, class_name: str) -> tuple[AnalyzedCondition, ...]:
        """Conditions (positive and negated) over *class_name*."""
        return tuple(
            c for c in self.conditions if c.class_name == class_name
        )

    def related_conditions(self, index: int) -> tuple[int, ...]:
        """The paper's RCE list: other conditions in *index*'s component.

        Returns 0-based indices, sorted.  Conditions sharing no variables
        with anything (their own singleton component) have an empty list.
        """
        for component in self.components:
            if index in component:
                return tuple(i for i in component if i != index)
        return ()

    def component_of(self, index: int) -> tuple[int, ...]:
        """The full connected component containing condition *index*."""
        for component in self.components:
            if index in component:
                return component
        return (index,)

    def to_conjuncts(self) -> list[ConjunctSpec]:
        """The whole LHS as a conjunctive query (§4.1 view)."""
        return [c.to_conjunct() for c in self.conditions]


def _collect_expression_vars(expression: Expression, out: set[str]) -> None:
    if isinstance(expression, VarExpr):
        out.add(expression.name)
    elif isinstance(expression, ComputeExpr):
        _collect_expression_vars(expression.left, out)
        _collect_expression_vars(expression.right, out)


def _normalize_tests(
    ce: ConditionElement, schema: RelationSchema, rule_name: str
) -> tuple[Predicate, tuple[tuple[str, str], ...], tuple[VariableTest, ...]]:
    constants: list[Predicate] = []
    equalities: list[tuple[str, str]] = []
    residual: list[VariableTest] = []
    for test in ce.tests:
        if not schema.has_attribute(test.attribute):
            raise RuleError(
                f"rule {rule_name!r}: class {ce.class_name!r} has no "
                f"attribute {test.attribute!r}"
            )
        if isinstance(test, DisjunctionTest):
            constants.append(Membership(test.attribute, test.values))
        elif isinstance(test.operand, Constant):
            constants.append(
                Comparison(test.attribute, test.op, test.operand.value)
            )
        elif test.op == "=":
            equalities.append((test.attribute, test.operand.name))
        else:
            residual.append(
                VariableTest(test.attribute, test.op, test.operand.name)
            )
    return conjunction(constants), tuple(equalities), tuple(residual)


def _within_condition_residuals(
    analyzed: AnalyzedCondition,
) -> tuple[VariableTest, ...]:
    """Residual tests whose variable is bound inside the same condition."""
    bound_here = {v for _, v in analyzed.equalities}
    return tuple(t for t in analyzed.residual if t.variable in bound_here)


def _connected_components(
    count: int, variable_classes: dict[str, set[int]]
) -> tuple[tuple[int, ...], ...]:
    parent = list(range(count))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    for indices in variable_classes.values():
        ordered = sorted(indices)
        for other in ordered[1:]:
            union(ordered[0], other)
    groups: dict[int, list[int]] = {}
    for i in range(count):
        groups.setdefault(find(i), []).append(i)
    return tuple(tuple(sorted(g)) for g in sorted(groups.values()))


def analyze_rule(rule: Rule, schemas: dict[str, RelationSchema]) -> RuleAnalysis:
    """Validate *rule* against *schemas* and produce its normal form."""
    conditions: list[AnalyzedCondition] = []
    variable_classes: dict[str, set[int]] = {}
    positive_vars: set[str] = set()

    for index, ce in enumerate(rule.condition_elements):
        schema = schemas.get(ce.class_name)
        if schema is None:
            raise RuleError(
                f"rule {rule.name!r}: class {ce.class_name!r} was never "
                "literalized"
            )
        constant, equalities, residual = _normalize_tests(ce, schema, rule.name)
        analyzed = AnalyzedCondition(
            index=index,
            ce=ce,
            constant_predicate=constant,
            equalities=equalities,
            residual=residual,
        )
        conditions.append(analyzed)
        for variable in analyzed.variables():
            variable_classes.setdefault(variable, set()).add(index)
        if not ce.negated:
            positive_vars |= {v for _, v in equalities}

    for condition in conditions:
        if condition.negated:
            # OPS5 semantics: a negated CE is evaluated in LHS order, so its
            # variables must be bound by an *earlier* positive CE.
            bound_earlier: set[str] = set()
            for earlier in conditions[: condition.index]:
                if not earlier.negated:
                    bound_earlier |= {v for _, v in earlier.equalities}
            unbound = condition.variables() - bound_earlier
            if unbound:
                raise RuleError(
                    f"rule {rule.name!r}: negated condition "
                    f"{condition.cond_number} uses variables "
                    f"{sorted(unbound)} not bound by an earlier positive "
                    "condition"
                )
        else:
            locally_ok = {v for _, v in condition.equalities}
            dangling = {
                t.variable for t in condition.residual
            } - positive_vars - locally_ok
            if dangling:
                raise RuleError(
                    f"rule {rule.name!r}: condition {condition.cond_number} "
                    f"tests variables {sorted(dangling)} never bound by '='"
                )

    _validate_rhs(rule, schemas, positive_vars)

    components = _connected_components(
        len(conditions), variable_classes
    )
    return RuleAnalysis(
        rule=rule,
        conditions=tuple(conditions),
        variable_classes=variable_classes,
        components=components,
    )


def _check_rhs_attribute(
    rule: Rule, schema: RelationSchema, attribute: str
) -> None:
    if not schema.has_attribute(attribute):
        raise RuleError(
            f"rule {rule.name!r}: class {schema.name!r} has no attribute "
            f"{attribute!r}"
        )


def _validate_rhs(
    rule: Rule,
    schemas: dict[str, RelationSchema],
    positive_vars: set[str],
) -> None:
    bound = set(positive_vars)
    ce_count = len(rule.condition_elements)
    for action in rule.actions:
        used: set[str] = set()
        if isinstance(action, MakeAction):
            schema = schemas.get(action.class_name)
            if schema is None:
                raise RuleError(
                    f"rule {rule.name!r}: (make {action.class_name}) names an "
                    "unliteralized class"
                )
            for attribute, expression in action.assignments:
                _check_rhs_attribute(rule, schema, attribute)
                _collect_expression_vars(expression, used)
        elif isinstance(action, (RemoveAction, ModifyAction)):
            index = action.ce_index
            if not 1 <= index <= ce_count:
                raise RuleError(
                    f"rule {rule.name!r}: action references condition "
                    f"{index}, LHS has {ce_count}"
                )
            if rule.condition_elements[index - 1].negated:
                raise RuleError(
                    f"rule {rule.name!r}: cannot remove/modify negated "
                    f"condition {index}"
                )
            if isinstance(action, ModifyAction):
                schema = schemas[rule.condition_elements[index - 1].class_name]
                for attribute, expression in action.assignments:
                    _check_rhs_attribute(rule, schema, attribute)
                    _collect_expression_vars(expression, used)
        elif isinstance(action, (WriteAction, CallAction)):
            for expression in action.expressions:
                _collect_expression_vars(expression, used)
        elif isinstance(action, BindAction):
            _collect_expression_vars(action.expression, used)
            bound.add(action.variable)
        unbound = used - bound
        if unbound:
            raise RuleError(
                f"rule {rule.name!r}: RHS uses variables {sorted(unbound)} "
                "that the LHS never binds"
            )


def analyze_program(
    rules: list[Rule], schemas: dict[str, RelationSchema]
) -> dict[str, RuleAnalysis]:
    """Analyze every rule; returns ``{rule name: analysis}``."""
    result: dict[str, RuleAnalysis] = {}
    for rule in rules:
        if rule.name in result:
            raise RuleError(f"rule {rule.name!r} defined twice")
        result[rule.name] = analyze_rule(rule, schemas)
    return result
