"""Fluent programmatic rule construction.

The OPS5 text syntax is faithful to the paper but noisy to write from
Python.  :func:`ce` and :class:`RuleBuilder` build the same AST directly::

    rule = (
        RuleBuilder("R1")
        .when("Emp", name="Mike", salary=var("S"), dno=var("D"))
        .when("Dept", dno=var("D"), dname="Toy")
        .unless("Audit", dno=var("D"))
        .remove(1)
        .build()
    )

Keyword values: a plain scalar is an equality test, :func:`var` references a
rule variable, and :func:`test` attaches an operator (``test(">", 100)`` or
``test("<", var("S"))``).  Multiple tests on one attribute use a tuple.
"""

from __future__ import annotations

from repro.errors import RuleError
from repro.lang.ast import (
    Action,
    AttributeTest,
    BindAction,
    CallAction,
    ComputeExpr,
    ConditionElement,
    Constant,
    ConstExpr,
    DisjunctionTest,
    Expression,
    HaltAction,
    MakeAction,
    ModifyAction,
    Operand,
    RemoveAction,
    Rule,
    Variable,
    VarExpr,
    WriteAction,
)
from repro.storage.schema import Value


def var(name: str) -> Variable:
    """Reference the rule variable ``<name>``."""
    return Variable(name)


class _OpTest:
    """Internal marker produced by :func:`test`."""

    def __init__(self, op: str, operand: Operand) -> None:
        self.op = op
        self.operand = operand


def test(op: str, operand: Variable | Value) -> _OpTest:
    """An attribute test with an explicit operator."""
    wrapped = operand if isinstance(operand, Variable) else Constant(operand)
    return _OpTest(op, wrapped)


class _MemberTest:
    """Internal marker produced by :func:`member`."""

    def __init__(self, values: tuple[Value, ...]) -> None:
        self.values = values


def member(*values: Value) -> _MemberTest:
    """A ``<< v1 v2 ... >>`` value-disjunction (membership) test."""
    return _MemberTest(tuple(values))


def _tests_for(attribute: str, spec: object) -> list[AttributeTest]:
    if isinstance(spec, tuple):
        tests: list[AttributeTest] = []
        for part in spec:
            tests.extend(_tests_for(attribute, part))
        return tests
    if isinstance(spec, _OpTest):
        return [AttributeTest(attribute, spec.op, spec.operand)]
    if isinstance(spec, _MemberTest):
        return [DisjunctionTest(attribute, spec.values)]
    if isinstance(spec, Variable):
        return [AttributeTest(attribute, "=", spec)]
    return [AttributeTest(attribute, "=", Constant(spec))]


def ce(class_name: str, negated: bool = False, **attrs: object) -> ConditionElement:
    """Build one condition element from keyword tests."""
    tests: list[AttributeTest] = []
    for attribute, spec in attrs.items():
        tests.extend(_tests_for(attribute, spec))
    return ConditionElement(class_name, tuple(tests), negated=negated)


def expr(value: Variable | Value | Expression) -> Expression:
    """Coerce a Python value or :func:`var` reference to an RHS expression."""
    if isinstance(value, (ConstExpr, VarExpr, ComputeExpr)):
        return value
    if isinstance(value, Variable):
        return VarExpr(value.name)
    return ConstExpr(value)


def compute(op: str, left: Variable | Value | Expression,
            right: Variable | Value | Expression) -> ComputeExpr:
    """Build a ``(compute left op right)`` expression."""
    return ComputeExpr(op, expr(left), expr(right))


class RuleBuilder:
    """Accumulates condition elements and actions, then builds a Rule."""

    def __init__(self, name: str, salience: int = 0) -> None:
        self._name = name
        self._salience = salience
        self._ces: list[ConditionElement] = []
        self._actions: list[Action] = []

    def when(self, class_name: str, **attrs: object) -> "RuleBuilder":
        """Add a positive condition element."""
        self._ces.append(ce(class_name, **attrs))
        return self

    def unless(self, class_name: str, **attrs: object) -> "RuleBuilder":
        """Add a negated condition element."""
        self._ces.append(ce(class_name, negated=True, **attrs))
        return self

    def make(self, class_name: str, **attrs: Variable | Value | Expression) -> "RuleBuilder":
        """Add a (make ...) action."""
        assignments = tuple((a, expr(v)) for a, v in attrs.items())
        self._actions.append(MakeAction(class_name, assignments))
        return self

    def remove(self, ce_index: int) -> "RuleBuilder":
        """Add a (remove k) action (1-based condition number)."""
        self._actions.append(RemoveAction(ce_index))
        return self

    def modify(self, ce_index: int, **attrs: Variable | Value | Expression) -> "RuleBuilder":
        """Add a (modify k ...) action."""
        assignments = tuple((a, expr(v)) for a, v in attrs.items())
        self._actions.append(ModifyAction(ce_index, assignments))
        return self

    def halt(self) -> "RuleBuilder":
        """Add a (halt) action."""
        self._actions.append(HaltAction())
        return self

    def write(self, *values: Variable | Value | Expression) -> "RuleBuilder":
        """Add a (write ...) action."""
        self._actions.append(WriteAction(tuple(expr(v) for v in values)))
        return self

    def bind(self, variable: Variable | str,
             value: Variable | Value | Expression) -> "RuleBuilder":
        """Add a (bind <v> expr) action."""
        name = variable.name if isinstance(variable, Variable) else variable
        self._actions.append(BindAction(name, expr(value)))
        return self

    def call(self, function: str, *values: Variable | Value | Expression) -> "RuleBuilder":
        """Add a (call fn ...) action."""
        self._actions.append(
            CallAction(function, tuple(expr(v) for v in values))
        )
        return self

    def build(self) -> Rule:
        """Produce the immutable Rule."""
        if not self._ces:
            raise RuleError(f"rule {self._name!r} has no condition elements")
        return Rule(
            name=self._name,
            condition_elements=tuple(self._ces),
            actions=tuple(self._actions),
            salience=self._salience,
        )
