"""Formatting rules back to OPS5 text.

``parse_program(format_program(p))`` reproduces the same AST — the
round-trip is property-tested — so rule bases can be persisted, diffed,
and reloaded as text.
"""

from __future__ import annotations

from repro.lang.ast import (
    Action,
    AttributeTest,
    BindAction,
    CallAction,
    ComputeExpr,
    ConditionElement,
    Constant,
    ConstExpr,
    DisjunctionTest,
    Expression,
    HaltAction,
    MakeAction,
    ModifyAction,
    Operand,
    Program,
    RemoveAction,
    Rule,
    Variable,
    VarExpr,
    WriteAction,
)
from repro.lang.lexer import _SYMBOL_CHARS
from repro.storage.schema import Value

_RESERVED_SYMBOLS = {"nil", "*", "-", "-->"}


def _needs_quoting(text: str) -> bool:
    if not text or text.lower() in _RESERVED_SYMBOLS:
        return True
    if text.startswith("-"):  # would lex as negation or a negative number
        return True
    if any(ch not in _SYMBOL_CHARS for ch in text):
        return True
    try:  # text that would lex as a number must be quoted
        float(text)
        return True
    except ValueError:
        return False


def format_value(value: Value) -> str:
    """One scalar in re-parseable OPS5 form."""
    if value is None:
        return "nil"
    if isinstance(value, (int, float)):
        return repr(value)
    if _needs_quoting(value):
        return f"|{value}|"
    return value


def format_operand(operand: Operand) -> str:
    """A constant or variable operand."""
    if isinstance(operand, Variable):
        return f"<{operand.name}>"
    return format_value(operand.value)


def format_expression(expression: Expression) -> str:
    """An RHS expression."""
    if isinstance(expression, ConstExpr):
        return format_value(expression.value)
    if isinstance(expression, VarExpr):
        return f"<{expression.name}>"
    if isinstance(expression, ComputeExpr):
        return (
            "(compute "
            f"{_compute_body(expression)})"
        )
    raise TypeError(f"cannot format expression {expression!r}")


def _compute_body(expression: ComputeExpr) -> str:
    # Left-associative chains print flat; nested right operands recurse
    # into their own (compute ...) form.
    left = (
        _compute_body(expression.left)
        if isinstance(expression.left, ComputeExpr)
        else format_expression(expression.left)
    )
    right = format_expression(expression.right)
    return f"{left} {expression.op} {right}"


def _format_test(test) -> str:
    if isinstance(test, DisjunctionTest):
        inner = " ".join(format_value(value) for value in test.values)
        return f"^{test.attribute} << {inner} >>"
    operand = format_operand(test.operand)
    if test.op == "=":
        return f"^{test.attribute} {operand}"
    return f"^{test.attribute} {test.op} {operand}"


def format_condition_element(ce: ConditionElement) -> str:
    """One (possibly negated) condition element."""
    parts = [ce.class_name]
    parts.extend(_format_test(test) for test in ce.tests)
    body = " ".join(parts)
    return f"-({body})" if ce.negated else f"({body})"


def format_action(action: Action) -> str:
    """One RHS action."""
    if isinstance(action, MakeAction):
        assignments = " ".join(
            f"^{attribute} {format_expression(expression)}"
            for attribute, expression in action.assignments
        )
        body = f"make {action.class_name}"
        return f"({body} {assignments})" if assignments else f"({body})"
    if isinstance(action, RemoveAction):
        return f"(remove {action.ce_index})"
    if isinstance(action, ModifyAction):
        assignments = " ".join(
            f"^{attribute} {format_expression(expression)}"
            for attribute, expression in action.assignments
        )
        return f"(modify {action.ce_index} {assignments})".rstrip() + (
            "" if assignments else ""
        )
    if isinstance(action, HaltAction):
        return "(halt)"
    if isinstance(action, WriteAction):
        body = " ".join(format_expression(e) for e in action.expressions)
        return f"(write {body})" if body else "(write)"
    if isinstance(action, BindAction):
        return f"(bind <{action.variable}> {format_expression(action.expression)})"
    if isinstance(action, CallAction):
        body = " ".join(format_expression(e) for e in action.expressions)
        return f"(call {action.function} {body})".rstrip() + (
            "" if body else ""
        )
    raise TypeError(f"cannot format action {action!r}")


def format_rule(rule: Rule) -> str:
    """One production in OPS5 text."""
    lines = [f"(p {rule.name}"]
    if rule.salience:
        lines.append(f"    (salience {rule.salience})")
    for ce in rule.condition_elements:
        lines.append(f"    {format_condition_element(ce)}")
    lines.append("    -->")
    for action in rule.actions:
        lines.append(f"    {format_action(action)}")
    return "\n".join(lines) + ")"


def format_program(program: Program) -> str:
    """A whole program: literalize declarations, rules, initial makes."""
    blocks = [
        f"(literalize {schema.name} {' '.join(schema.attributes)})"
        for schema in program.schemas.values()
    ]
    blocks.extend(format_rule(rule) for rule in program.rules)
    for class_name, values in program.initial_elements:
        assignments = " ".join(
            f"^{attribute} {format_value(value)}"
            for attribute, value in values.items()
        )
        body = f"make {class_name}"
        blocks.append(f"({body} {assignments})" if assignments else f"({body})")
    return "\n\n".join(blocks)
