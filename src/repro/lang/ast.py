"""Abstract syntax for OPS5-style production rules.

The paper's rules (Examples 2–4) are OPS5 productions: a name, an LHS of
(possibly negated) condition elements over WM classes, and an RHS of
``make``/``remove``/``modify``-style actions.  This module defines the rule
representation shared by every match strategy; the text syntax lives in
:mod:`repro.lang.parser`, and rules can equally be built directly through
these dataclasses (see :mod:`repro.lang.builder`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RuleError
from repro.storage.predicate import OPERATORS
from repro.storage.schema import RelationSchema, Value

# ---------------------------------------------------------------------------
# Operands and expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Constant:
    """A literal operand (``Mike``, ``7``, ``nil`` -> ``None``)."""

    value: Value


@dataclass(frozen=True)
class Variable:
    """A rule variable operand (``<x>``)."""

    name: str


Operand = Constant | Variable


@dataclass(frozen=True)
class ConstExpr:
    """RHS expression: a literal value."""

    value: Value


@dataclass(frozen=True)
class VarExpr:
    """RHS expression: the value bound to an LHS variable."""

    name: str


@dataclass(frozen=True)
class ComputeExpr:
    """RHS expression: binary arithmetic (OPS5 ``compute``)."""

    op: str  # one of + - * / mod
    left: "Expression"
    right: "Expression"


Expression = ConstExpr | VarExpr | ComputeExpr


# ---------------------------------------------------------------------------
# Condition elements (LHS)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AttributeTest:
    """One test on one attribute of a condition element.

    ``^salary > 100`` becomes ``AttributeTest('salary', '>', Constant(100))``;
    ``^name <M>`` becomes ``AttributeTest('name', '=', Variable('M'))``.
    A variable with op ``=`` *binds* on its first positive occurrence and
    tests equality everywhere else.
    """

    attribute: str
    op: str
    operand: Operand

    def __post_init__(self) -> None:
        if self.op not in OPERATORS:
            raise RuleError(f"unknown test operator {self.op!r}")


@dataclass(frozen=True)
class DisjunctionTest:
    """OPS5 value disjunction: ``^attr << a b c >>`` (membership test)."""

    attribute: str
    values: tuple[Value, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise RuleError("a '<< >>' disjunction needs >= 1 value")


#: Anything that can appear as one test of a condition element.
ConditionTest = AttributeTest | DisjunctionTest


@dataclass(frozen=True)
class ConditionElement:
    """One (possibly negated) pattern over a WM class.

    Attributes not mentioned are don't-cares (the paper writes them ``*``).
    """

    class_name: str
    tests: tuple[ConditionTest, ...] = ()
    negated: bool = False

    def tests_on(self, attribute: str) -> tuple[ConditionTest, ...]:
        """All tests touching *attribute*."""
        return tuple(t for t in self.tests if t.attribute == attribute)

    def variables(self) -> set[str]:
        """All variables this condition element mentions."""
        return {
            t.operand.name
            for t in self.tests
            if isinstance(t, AttributeTest) and isinstance(t.operand, Variable)
        }

    def __str__(self) -> str:
        parts = [self.class_name]
        for test in self.tests:
            if isinstance(test, DisjunctionTest):
                inner = " ".join(repr(v) for v in test.values)
                parts.append(f"^{test.attribute} << {inner} >>")
                continue
            operand = (
                f"<{test.operand.name}>"
                if isinstance(test.operand, Variable)
                else repr(test.operand.value)
            )
            op = "" if test.op == "=" else f"{test.op} "
            parts.append(f"^{test.attribute} {op}{operand}")
        body = " ".join(parts)
        return f"-({body})" if self.negated else f"({body})"


# ---------------------------------------------------------------------------
# Actions (RHS)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MakeAction:
    """Insert a new WM element: ``(make Class ^attr expr ...)``."""

    class_name: str
    assignments: tuple[tuple[str, Expression], ...]


@dataclass(frozen=True)
class RemoveAction:
    """Delete the WM element matching condition *ce_index* (1-based)."""

    ce_index: int


@dataclass(frozen=True)
class ModifyAction:
    """Update fields of the WM element matching condition *ce_index*.

    Treated as delete + insert (§3.1: "modifications are treated as
    deletions followed by insertions").
    """

    ce_index: int
    assignments: tuple[tuple[str, Expression], ...]


@dataclass(frozen=True)
class HaltAction:
    """Stop the recognize-act cycle."""


@dataclass(frozen=True)
class WriteAction:
    """Emit values to the engine's output sink."""

    expressions: tuple[Expression, ...]


@dataclass(frozen=True)
class BindAction:
    """Bind an RHS-local variable to an expression value."""

    variable: str
    expression: Expression


@dataclass(frozen=True)
class CallAction:
    """Invoke a host function registered with the engine."""

    function: str
    expressions: tuple[Expression, ...]


Action = (
    MakeAction
    | RemoveAction
    | ModifyAction
    | HaltAction
    | WriteAction
    | BindAction
    | CallAction
)


# ---------------------------------------------------------------------------
# Rules and programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    """A production: name, LHS condition elements, RHS actions.

    ``salience`` is an extension used by the priority conflict-resolution
    strategy; OPS5 itself orders by recency.
    """

    name: str
    condition_elements: tuple[ConditionElement, ...]
    actions: tuple[Action, ...] = ()
    salience: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise RuleError("rule name must be non-empty")
        if not self.condition_elements:
            raise RuleError(f"rule {self.name!r} has an empty LHS")
        if all(ce.negated for ce in self.condition_elements):
            raise RuleError(
                f"rule {self.name!r} has only negated conditions; at least "
                "one positive condition element is required"
            )

    @property
    def positive_indices(self) -> tuple[int, ...]:
        """0-based indices of the positive condition elements."""
        return tuple(
            i for i, ce in enumerate(self.condition_elements) if not ce.negated
        )

    def classes(self) -> set[str]:
        """WM classes this rule's LHS mentions."""
        return {ce.class_name for ce in self.condition_elements}


@dataclass
class Program:
    """A parsed OPS5 program: class declarations, rules, and the initial
    working-memory elements from top-level ``(make ...)`` forms."""

    schemas: dict[str, RelationSchema] = field(default_factory=dict)
    rules: list[Rule] = field(default_factory=list)
    initial_elements: list[tuple[str, dict[str, Value]]] = field(
        default_factory=list
    )

    def rule(self, name: str) -> Rule:
        """Return the rule named *name*."""
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise RuleError(f"no rule named {name!r}")
