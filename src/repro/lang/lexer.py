"""Tokenizer for the OPS5-flavoured rule language.

Token kinds::

    LPAREN RPAREN   ( )
    LBRACE RBRACE   { }
    ATTR            ^name          (attribute selector)
    VAR             <x>            (rule variable)
    ARROW           -->
    MINUS           -              (condition negation)
    OP              = <> < <= > >=
    NUMBER          7  -3  2.5
    STRING          |quoted text|  'quoted'  "quoted"
    SYMBOL          Mike  Toy  nil  *  compute  +

Comments run from ``;`` to end of line.  The paper's ``↑`` is accepted as a
synonym for ``^``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

_SYMBOL_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    "_-+*/?!.$%&@~"
)
_QUOTE_PAIRS = {"|": "|", "'": "'", '"': '"'}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str
    text: str
    value: object
    line: int
    column: int


class _Cursor:
    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def at_end(self) -> bool:
        return self.pos >= len(self.source)


def _is_number(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


def _number_value(text: str) -> int | float:
    try:
        return int(text)
    except ValueError:
        return float(text)


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, raising :class:`ParseError` on bad input."""
    cursor = _Cursor(source)
    tokens: list[Token] = []

    def emit(kind: str, text: str, value: object, line: int, column: int) -> None:
        tokens.append(Token(kind, text, value, line, column))

    while not cursor.at_end():
        ch = cursor.peek()
        line, column = cursor.line, cursor.column
        if ch in " \t\r\n":
            cursor.advance()
            continue
        if ch == ";":
            while not cursor.at_end() and cursor.peek() != "\n":
                cursor.advance()
            continue
        if ch == "(":
            cursor.advance()
            emit("LPAREN", "(", "(", line, column)
            continue
        if ch == ")":
            cursor.advance()
            emit("RPAREN", ")", ")", line, column)
            continue
        if ch == "{":
            cursor.advance()
            emit("LBRACE", "{", "{", line, column)
            continue
        if ch == "}":
            cursor.advance()
            emit("RBRACE", "}", "}", line, column)
            continue
        if ch in ("^", "↑"):  # ^ or the paper's up-arrow
            cursor.advance()
            name = _read_symbol_text(cursor)
            if not name:
                raise ParseError("'^' must be followed by an attribute name", line, column)
            emit("ATTR", f"^{name}", name, line, column)
            continue
        if ch in _QUOTE_PAIRS:
            closing = _QUOTE_PAIRS[ch]
            cursor.advance()
            chars: list[str] = []
            while True:
                if cursor.at_end():
                    raise ParseError("unterminated string literal", line, column)
                nxt = cursor.advance()
                if nxt == closing:
                    break
                chars.append(nxt)
            text = "".join(chars)
            emit("STRING", text, text, line, column)
            continue
        if ch == "<":
            token = _read_angle(cursor, line, column)
            tokens.append(token)
            continue
        if ch == ">":
            cursor.advance()
            if cursor.peek() == "=":
                cursor.advance()
                emit("OP", ">=", ">=", line, column)
            elif cursor.peek() == ">":
                cursor.advance()
                emit("DRANGLE", ">>", ">>", line, column)
            else:
                emit("OP", ">", ">", line, column)
            continue
        if ch == "=":
            cursor.advance()
            emit("OP", "=", "=", line, column)
            continue
        if ch == "-":
            if cursor.peek(1) == "-" and cursor.peek(2) == ">":
                cursor.advance()
                cursor.advance()
                cursor.advance()
                emit("ARROW", "-->", "-->", line, column)
                continue
            if cursor.peek(1).isdigit() or (
                cursor.peek(1) == "." and cursor.peek(2).isdigit()
            ):
                text = _read_symbol_text(cursor)
                emit("NUMBER", text, _number_value(text), line, column)
                continue
            cursor.advance()
            emit("MINUS", "-", "-", line, column)
            continue
        if ch in _SYMBOL_CHARS:
            text = _read_symbol_text(cursor)
            if _is_number(text):
                emit("NUMBER", text, _number_value(text), line, column)
            else:
                emit("SYMBOL", text, text, line, column)
            continue
        raise ParseError(f"unexpected character {ch!r}", line, column)
    return tokens


def _read_symbol_text(cursor: _Cursor) -> str:
    chars: list[str] = []
    while not cursor.at_end() and cursor.peek() in _SYMBOL_CHARS:
        chars.append(cursor.advance())
    return "".join(chars)


def _read_angle(cursor: _Cursor, line: int, column: int) -> Token:
    """Disambiguate ``<x>`` (variable) from ``<``, ``<=``, ``<>``, ``<<``."""
    cursor.advance()  # consume '<'
    nxt = cursor.peek()
    if nxt == "=":
        cursor.advance()
        return Token("OP", "<=", "<=", line, column)
    if nxt == ">":
        cursor.advance()
        return Token("OP", "<>", "<>", line, column)
    if nxt == "<":
        cursor.advance()
        return Token("DLANGLE", "<<", "<<", line, column)
    # A variable looks like <name>; anything else is the bare < operator.
    name = _read_symbol_text(cursor)
    if name and cursor.peek() == ">":
        cursor.advance()
        return Token("VAR", f"<{name}>", name, line, column)
    if name:
        raise ParseError(
            f"malformed variable '<{name}' (missing '>')", line, column
        )
    return Token("OP", "<", "<", line, column)
