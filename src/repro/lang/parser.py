"""Recursive-descent parser for the OPS5-flavoured rule language.

Grammar (informally)::

    program    := (literalize | production)*
    literalize := "(" "literalize" SYMBOL attr-name+ ")"
    production := "(" "p" SYMBOL [salience] ce+ "-->" action* ")"
    ce         := ["-"] "(" SYMBOL slot* ")"
    slot       := ATTR value-spec
    value-spec := operand | OP operand | "{" test+ "}"
    test       := operand | OP operand
    operand    := NUMBER | STRING | SYMBOL | VAR     (SYMBOL "*" = don't care,
                                                      "nil" = None)
    action     := "(" "make" SYMBOL (ATTR expr)* ")"
                | "(" "remove" NUMBER+ ")"
                | "(" "modify" NUMBER (ATTR expr)* ")"
                | "(" "halt" ")"
                | "(" "write" expr* ")"
                | "(" "bind" VAR expr ")"
                | "(" "call" SYMBOL expr* ")"
    expr       := NUMBER | STRING | SYMBOL | VAR
                | "(" "compute" expr (OPSYM expr)* ")"

Salience: ``(p name (salience N) ...)`` — an extension for the priority
conflict-resolution strategy; plain OPS5 text never uses it.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.ast import (
    Action,
    AttributeTest,
    BindAction,
    CallAction,
    ComputeExpr,
    ConditionElement,
    Constant,
    ConstExpr,
    DisjunctionTest,
    Expression,
    HaltAction,
    MakeAction,
    ModifyAction,
    Operand,
    Program,
    RemoveAction,
    Rule,
    Variable,
    VarExpr,
    WriteAction,
)
from repro.lang.lexer import Token, tokenize
from repro.storage.schema import RelationSchema

_COMPUTE_OPS = {"+", "-", "*", "/", "mod"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self) -> Token | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            last = self._tokens[-1] if self._tokens else None
            raise ParseError(
                "unexpected end of input",
                last.line if last else 0,
                last.column if last else 0,
            )
        self._pos += 1
        return token

    def _expect(self, kind: str, what: str) -> Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"expected {what}, got {token.text!r}", token.line, token.column
            )
        return token

    def _at(self, kind: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == kind

    # -- program -------------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        while self._peek() is not None:
            self._expect("LPAREN", "'('")
            head = self._expect("SYMBOL", "'literalize' or 'p'")
            if head.value == "literalize":
                schema = self._parse_literalize()
                if schema.name in program.schemas:
                    raise ParseError(
                        f"class {schema.name!r} literalized twice",
                        head.line,
                        head.column,
                    )
                program.schemas[schema.name] = schema
            elif head.value == "p":
                rule = self._parse_production()
                if any(r.name == rule.name for r in program.rules):
                    raise ParseError(
                        f"rule {rule.name!r} defined twice", head.line, head.column
                    )
                program.rules.append(rule)
            elif head.value == "make":
                # Top-level (make Class ^attr value ...): initial WM.
                program.initial_elements.append(self._parse_toplevel_make())
            else:
                raise ParseError(
                    f"expected 'literalize', 'p' or 'make', got {head.text!r}",
                    head.line,
                    head.column,
                )
        return program

    def _parse_toplevel_make(self) -> tuple[str, dict]:
        class_token = self._expect("SYMBOL", "class name")
        values: dict = {}
        while self._at("ATTR"):
            attr = self._next()
            operand = self._parse_operand()
            if operand is None or isinstance(operand, Variable):
                raise ParseError(
                    "top-level (make ...) values must be constants",
                    attr.line,
                    attr.column,
                )
            values[str(attr.value)] = operand.value
        self._expect("RPAREN", "')'")
        return (str(class_token.value), values)

    def _parse_literalize(self) -> RelationSchema:
        name = self._expect("SYMBOL", "class name")
        attributes: list[str] = []
        while not self._at("RPAREN"):
            attributes.append(self._expect("SYMBOL", "attribute name").value)
        self._expect("RPAREN", "')'")
        return RelationSchema(str(name.value), tuple(attributes))

    # -- productions ----------------------------------------------------------

    def _parse_production(self) -> Rule:
        name = self._expect("SYMBOL", "rule name")
        salience = 0
        ces: list[ConditionElement] = []
        # optional (salience N)
        if self._at("LPAREN"):
            mark = self._pos
            self._next()
            token = self._peek()
            if token is not None and token.kind == "SYMBOL" and token.value == "salience":
                self._next()
                salience = int(self._expect("NUMBER", "salience value").value)
                self._expect("RPAREN", "')'")
            else:
                self._pos = mark
        while not self._at("ARROW"):
            ces.append(self._parse_condition_element())
        self._expect("ARROW", "'-->'")
        actions: list[Action] = []
        while not self._at("RPAREN"):
            actions.extend(self._parse_action())
        self._expect("RPAREN", "')'")
        return Rule(
            name=str(name.value),
            condition_elements=tuple(ces),
            actions=tuple(actions),
            salience=salience,
        )

    def _parse_condition_element(self) -> ConditionElement:
        negated = False
        if self._at("MINUS"):
            self._next()
            negated = True
        self._expect("LPAREN", "'(' starting a condition element")
        class_name = self._expect("SYMBOL", "class name")
        tests: list[AttributeTest] = []
        while not self._at("RPAREN"):
            attr = self._expect("ATTR", "'^attribute'")
            tests.extend(self._parse_value_spec(str(attr.value)))
        self._expect("RPAREN", "')'")
        return ConditionElement(
            class_name=str(class_name.value), tests=tuple(tests), negated=negated
        )

    def _parse_value_spec(self, attribute: str) -> list[AttributeTest]:
        if self._at("LBRACE"):
            self._next()
            tests: list[AttributeTest] = []
            while not self._at("RBRACE"):
                tests.extend(self._parse_single_test(attribute))
            self._expect("RBRACE", "'}'")
            if not tests:
                raise ParseError(f"empty '{{}}' test on ^{attribute}")
            return tests
        return self._parse_single_test(attribute)

    def _parse_single_test(self, attribute: str) -> list:
        if self._at("DLANGLE"):
            return [self._parse_disjunction(attribute)]
        op = "="
        if self._at("OP"):
            op = str(self._next().value)
        operand = self._parse_operand()
        if operand is None:  # don't care '*'
            if op != "=":
                raise ParseError(f"'*' cannot follow operator {op!r} on ^{attribute}")
            return []
        return [AttributeTest(attribute, op, operand)]

    def _parse_disjunction(self, attribute: str) -> DisjunctionTest:
        opener = self._expect("DLANGLE", "'<<'")
        values: list = []
        while not self._at("DRANGLE"):
            operand = self._parse_operand()
            if operand is None or isinstance(operand, Variable):
                raise ParseError(
                    "a '<< >>' disjunction may contain only constants",
                    opener.line,
                    opener.column,
                )
            values.append(operand.value)
        self._expect("DRANGLE", "'>>'")
        if not values:
            raise ParseError(
                "empty '<< >>' disjunction", opener.line, opener.column
            )
        return DisjunctionTest(attribute, tuple(values))

    def _parse_operand(self) -> Operand | None:
        token = self._next()
        if token.kind == "MINUS":
            # A bare '-' in value position is the minus symbol constant
            # (e.g. ^Op -); as a CE prefix it is negation, handled earlier.
            return Constant("-")
        if token.kind == "VAR":
            return Variable(str(token.value))
        if token.kind == "NUMBER":
            return Constant(token.value)
        if token.kind == "STRING":
            return Constant(str(token.value))
        if token.kind == "SYMBOL":
            text = str(token.value)
            if text == "*":
                return None
            if text.lower() == "nil":
                return Constant(None)
            return Constant(text)
        raise ParseError(
            f"expected a value, got {token.text!r}", token.line, token.column
        )

    # -- actions ---------------------------------------------------------------

    def _parse_action(self) -> list[Action]:
        self._expect("LPAREN", "'(' starting an action")
        head = self._expect("SYMBOL", "action name")
        name = str(head.value)
        if name == "make":
            class_name = self._expect("SYMBOL", "class name")
            assignments = self._parse_assignments()
            self._expect("RPAREN", "')'")
            return [MakeAction(str(class_name.value), assignments)]
        if name == "remove":
            indices: list[int] = []
            while not self._at("RPAREN"):
                indices.append(int(self._expect("NUMBER", "condition number").value))
            self._expect("RPAREN", "')'")
            if not indices:
                raise ParseError("(remove) needs >= 1 condition number", head.line, head.column)
            return [RemoveAction(i) for i in indices]
        if name == "modify":
            index = int(self._expect("NUMBER", "condition number").value)
            assignments = self._parse_assignments()
            self._expect("RPAREN", "')'")
            return [ModifyAction(index, assignments)]
        if name == "halt":
            self._expect("RPAREN", "')'")
            return [HaltAction()]
        if name == "write":
            expressions: list[Expression] = []
            while not self._at("RPAREN"):
                expressions.append(self._parse_expression())
            self._expect("RPAREN", "')'")
            return [WriteAction(tuple(expressions))]
        if name == "bind":
            var = self._expect("VAR", "a variable")
            expression = self._parse_expression()
            self._expect("RPAREN", "')'")
            return [BindAction(str(var.value), expression)]
        if name == "call":
            fn = self._expect("SYMBOL", "function name")
            expressions = []
            while not self._at("RPAREN"):
                expressions.append(self._parse_expression())
            self._expect("RPAREN", "')'")
            return [CallAction(str(fn.value), tuple(expressions))]
        raise ParseError(f"unknown action {name!r}", head.line, head.column)

    def _parse_assignments(self) -> tuple[tuple[str, Expression], ...]:
        assignments: list[tuple[str, Expression]] = []
        while self._at("ATTR"):
            attr = self._next()
            assignments.append((str(attr.value), self._parse_expression()))
        return tuple(assignments)

    def _parse_expression(self) -> Expression:
        token = self._next()
        if token.kind == "VAR":
            return VarExpr(str(token.value))
        if token.kind == "NUMBER":
            return ConstExpr(token.value)
        if token.kind == "STRING":
            return ConstExpr(str(token.value))
        if token.kind == "SYMBOL":
            text = str(token.value)
            return ConstExpr(None) if text.lower() == "nil" else ConstExpr(text)
        if token.kind == "LPAREN":
            head = self._expect("SYMBOL", "'compute'")
            if head.value != "compute":
                raise ParseError(
                    f"only (compute ...) is allowed in expressions, got "
                    f"{head.text!r}",
                    head.line,
                    head.column,
                )
            expr = self._parse_expression()
            while not self._at("RPAREN"):
                op_token = self._next()
                op = str(op_token.value)
                if op not in _COMPUTE_OPS:
                    raise ParseError(
                        f"unknown compute operator {op!r}",
                        op_token.line,
                        op_token.column,
                    )
                right = self._parse_expression()
                expr = ComputeExpr(op, expr, right)
            self._expect("RPAREN", "')'")
            return expr
        raise ParseError(
            f"expected an expression, got {token.text!r}", token.line, token.column
        )


def parse_program(source: str) -> Program:
    """Parse a whole OPS5 program (literalize declarations + rules)."""
    return _Parser(tokenize(source)).parse_program()


def parse_rule(source: str) -> Rule:
    """Parse a single ``(p ...)`` production."""
    program = parse_program(source)
    if len(program.rules) != 1 or program.schemas:
        raise ParseError("expected exactly one production")
    return program.rules[0]
