"""Workload generation: the paper's example programs + synthetic families."""

from repro.workload.generator import (
    GeneratedWorkload,
    WorkloadSpec,
    generate_insert_stream,
    generate_program,
    generate_workload,
    mixed_stream,
)
from repro.workload.k8s import (
    K8S_PROGRAM,
    as_requests,
    k8s_events,
    k8s_setup,
)
from repro.workload.programs import (
    EXAMPLE2_SOURCE,
    EXAMPLE3_SOURCE,
    EXAMPLE4_SOURCE,
    EXAMPLE5_INSERTS,
    chain_program,
    contended_rules_program,
    counter_program,
    independent_rules_program,
    monkey_bananas_program,
)

__all__ = [
    "EXAMPLE2_SOURCE",
    "EXAMPLE3_SOURCE",
    "EXAMPLE4_SOURCE",
    "EXAMPLE5_INSERTS",
    "GeneratedWorkload",
    "K8S_PROGRAM",
    "WorkloadSpec",
    "as_requests",
    "chain_program",
    "contended_rules_program",
    "counter_program",
    "generate_insert_stream",
    "generate_program",
    "generate_workload",
    "independent_rules_program",
    "k8s_events",
    "k8s_setup",
    "mixed_stream",
    "monkey_bananas_program",
]
