"""Synthetic rule-base and WM-stream generation.

The paper's implicit workload parameters — number of rules, number of WM
classes, join arity of the LHSs, selectivity of the variable-free tests,
and how much conditions overlap across rules — are all knobs of
:class:`WorkloadSpec`.  Generation is fully seeded, so every benchmark run
is reproducible.

RNG-stream invariant
--------------------
Every independent generation concern draws from its **own** seeded RNG
stream (derived as ``random.Random(f"{seed}/<stream>")``, which seeds
deterministically across processes):

* ``pool``       — the shared-condition pool contents;
* ``rules``      — rule sizes and condition skeletons (or pool indexes);
* ``negation``   — the per-condition negation roll, drawn *unconditionally*
  for every condition position;
* ``disjunction``— the per-condition ``<< ... >>`` roll and its values;
* ``actions``    — the RHS action mix (``remove`` vs ``modify``).

Consequences, relied on by the differential-fuzz harness (``repro.check``)
and safe to depend on elsewhere:

* toggling ``negation_probability``, ``disjunction_probability`` or
  ``modify_action_probability`` never changes which classes/tests the
  other streams draw — only the feature it controls;
* enabling ``shared_condition_pool`` consumes pool-stream state only; the
  rule stream always spends exactly one draw per condition choice when a
  pool is active, so pool draws cannot shift unrelated draws;
* generation happens once per spec and is a pure function of the spec —
  replaying the same spec for different match strategies (or replaying it
  twice within one process) can never observe different programs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.lang.ast import Program, Rule
from repro.lang.builder import RuleBuilder, member, test, var
from repro.storage.schema import RelationSchema, Value


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic production-system workload.

    Attributes:
        classes: Number of WM classes (relations).
        attributes: Attributes per class (``a0`` is the join attribute).
        rules: Number of productions.
        min_conditions / max_conditions: LHS size range; adjacent
            conditions chain-join on ``a0``.
        constant_probability: Chance a condition carries an equality test
            on ``a1`` (selectivity knob).
        comparison_probability: Chance of an extra ``>`` test on ``a2``.
        negation_probability: Chance a non-first condition is negated.
        disjunction_probability: Chance a condition's ``a1`` test is a
            ``<< v1 v2 ... >>`` membership disjunction instead of an
            equality constant.
        modify_action_probability: Chance a rule's RHS is
            ``(modify 1 ^a1 c)`` instead of ``(remove 1)`` (modify-heavy
            action mixes; runs of such rules are bounded by the caller's
            cycle limit, not by consumption of WM elements).
        domain: Attribute values are drawn from ``0..domain-1``.
        shared_condition_pool: When > 0, conditions are drawn from a pool
            of this size so rules overlap (the §3.2 sharing/MQO knob).
        seed: RNG seed (see the module docstring's RNG-stream invariant).
    """

    classes: int = 4
    attributes: int = 3
    rules: int = 10
    min_conditions: int = 1
    max_conditions: int = 3
    constant_probability: float = 0.7
    comparison_probability: float = 0.2
    negation_probability: float = 0.0
    disjunction_probability: float = 0.0
    modify_action_probability: float = 0.0
    domain: int = 8
    shared_condition_pool: int = 0
    seed: int = 0

    def class_name(self, index: int) -> str:
        return f"K{index}"

    def attribute_name(self, index: int) -> str:
        return f"a{index}"

    def stream(self, name: str) -> random.Random:
        """The named seeded RNG stream (module docstring invariant)."""
        return random.Random(f"{self.seed}/{name}")


@dataclass
class GeneratedWorkload:
    """A generated program plus its spec (for labeling bench rows)."""

    spec: WorkloadSpec
    program: Program
    insert_stream: list[tuple[str, tuple[Value, ...]]] = field(
        default_factory=list
    )


def _schemas(spec: WorkloadSpec) -> dict[str, RelationSchema]:
    return {
        spec.class_name(i): RelationSchema(
            spec.class_name(i),
            tuple(spec.attribute_name(j) for j in range(spec.attributes)),
        )
        for i in range(spec.classes)
    }


def _draw_condition(
    spec: WorkloadSpec, rng: random.Random, disjunction_rng: random.Random
) -> tuple[str, dict]:
    """One (class, extra tests) condition skeleton.

    Content draws come from *rng* (the pool or rule stream); disjunction
    rolls come from the dedicated *disjunction_rng* stream so toggling
    ``disjunction_probability`` cannot shift the other draws.
    """
    class_name = spec.class_name(rng.randrange(spec.classes))
    extras: dict = {}
    disjunction_roll = disjunction_rng.random()
    if spec.attributes >= 2:
        # The roll and the value are consumed on every call so that
        # toggling the disjunction knob never shifts the content stream.
        constant_roll = rng.random()
        constant_value = rng.randrange(spec.domain)
        if disjunction_roll < spec.disjunction_probability:
            width = disjunction_rng.randint(2, 3)
            extras[spec.attribute_name(1)] = member(
                *sorted(
                    {disjunction_rng.randrange(spec.domain)
                     for _ in range(width)}
                )
            )
        elif constant_roll < spec.constant_probability:
            extras[spec.attribute_name(1)] = constant_value
    if spec.attributes >= 3 and rng.random() < spec.comparison_probability:
        extras[spec.attribute_name(2)] = test(">", rng.randrange(spec.domain))
    return class_name, extras


def generate_program(spec: WorkloadSpec) -> GeneratedWorkload:
    """Generate the schemas and rules of *spec* (no WM stream yet)."""
    rng_pool = spec.stream("pool")
    rng_rules = spec.stream("rules")
    rng_negation = spec.stream("negation")
    rng_disjunction = spec.stream("disjunction")
    rng_actions = spec.stream("actions")
    schemas = _schemas(spec)
    pool: list[tuple[str, dict]] = [
        _draw_condition(spec, rng_pool, rng_disjunction)
        for _ in range(min(spec.shared_condition_pool, 10_000))
    ]
    rules: list[Rule] = []
    for rule_index in range(spec.rules):
        count = rng_rules.randint(spec.min_conditions, spec.max_conditions)
        builder = RuleBuilder(f"rule{rule_index}")
        for position in range(count):
            if pool:
                # One random() per choice: unlike randrange(n), which
                # consumes a pool-size-dependent number of bits, this keeps
                # rule-stream state independent of the pool size.
                roll = rng_rules.random()
                class_name, extras = pool[
                    min(int(roll * len(pool)), len(pool) - 1)
                ]
            else:
                class_name, extras = _draw_condition(
                    spec, rng_rules, rng_disjunction
                )
            attrs = dict(extras)
            # Chain join: every condition binds the shared variable <j>.
            attrs[spec.attribute_name(0)] = var("j")
            # The roll is drawn unconditionally (even at position 0, where
            # negation is never applied) so the negation stream advances
            # identically for every condition position.
            negation_roll = rng_negation.random()
            negated = position > 0 and negation_roll < spec.negation_probability
            if negated:
                builder.unless(class_name, **attrs)
            else:
                builder.when(class_name, **attrs)
        action_roll = rng_actions.random()
        if (
            spec.attributes >= 2
            and action_roll < spec.modify_action_probability
        ):
            builder.modify(
                1,
                **{spec.attribute_name(1): rng_actions.randrange(spec.domain)},
            )
        else:
            builder.remove(1)
        rules.append(builder.build())
    program = Program(schemas=schemas, rules=rules)
    return GeneratedWorkload(spec=spec, program=program)


def generate_insert_stream(
    spec: WorkloadSpec,
    count: int,
    seed: int | None = None,
) -> list[tuple[str, tuple[Value, ...]]]:
    """A stream of *count* tuple insertions matching the spec's domains."""
    rng = random.Random(spec.seed + 1 if seed is None else seed)
    stream: list[tuple[str, tuple[Value, ...]]] = []
    for _ in range(count):
        class_name = spec.class_name(rng.randrange(spec.classes))
        values = tuple(
            rng.randrange(spec.domain) for _ in range(spec.attributes)
        )
        stream.append((class_name, values))
    return stream


def generate_workload(
    spec: WorkloadSpec, stream_length: int = 200
) -> GeneratedWorkload:
    """Program plus insert stream in one call."""
    workload = generate_program(spec)
    workload.insert_stream = generate_insert_stream(spec, stream_length)
    return workload


def mixed_stream(
    spec: WorkloadSpec,
    count: int,
    delete_fraction: float = 0.3,
    seed: int | None = None,
) -> list[tuple[str, object]]:
    """A stream of ("insert", (class, values)) / ("delete", index) events.

    Delete events reference the i-th still-live insert by position, letting
    the driver resolve actual tuple ids at run time.
    """
    rng = random.Random((spec.seed + 2) if seed is None else seed)
    events: list[tuple[str, object]] = []
    live = 0
    for _ in range(count):
        if live > 0 and rng.random() < delete_fraction:
            events.append(("delete", rng.randrange(live)))
            live -= 1
        else:
            class_name = spec.class_name(rng.randrange(spec.classes))
            values = tuple(
                rng.randrange(spec.domain) for _ in range(spec.attributes)
            )
            events.append(("insert", (class_name, values)))
            live += 1
    return events
