"""Synthetic rule-base and WM-stream generation.

The paper's implicit workload parameters — number of rules, number of WM
classes, join arity of the LHSs, selectivity of the variable-free tests,
and how much conditions overlap across rules — are all knobs of
:class:`WorkloadSpec`.  Generation is fully seeded, so every benchmark run
is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.lang.ast import Program, Rule
from repro.lang.builder import RuleBuilder, test, var
from repro.storage.schema import RelationSchema, Value


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic production-system workload.

    Attributes:
        classes: Number of WM classes (relations).
        attributes: Attributes per class (``a0`` is the join attribute).
        rules: Number of productions.
        min_conditions / max_conditions: LHS size range; adjacent
            conditions chain-join on ``a0``.
        constant_probability: Chance a condition carries an equality test
            on ``a1`` (selectivity knob).
        comparison_probability: Chance of an extra ``>`` test on ``a2``.
        negation_probability: Chance a non-first condition is negated.
        domain: Attribute values are drawn from ``0..domain-1``.
        shared_condition_pool: When > 0, conditions are drawn from a pool
            of this size so rules overlap (the §3.2 sharing/MQO knob).
        seed: RNG seed.
    """

    classes: int = 4
    attributes: int = 3
    rules: int = 10
    min_conditions: int = 1
    max_conditions: int = 3
    constant_probability: float = 0.7
    comparison_probability: float = 0.2
    negation_probability: float = 0.0
    domain: int = 8
    shared_condition_pool: int = 0
    seed: int = 0

    def class_name(self, index: int) -> str:
        return f"K{index}"

    def attribute_name(self, index: int) -> str:
        return f"a{index}"


@dataclass
class GeneratedWorkload:
    """A generated program plus its spec (for labeling bench rows)."""

    spec: WorkloadSpec
    program: Program
    insert_stream: list[tuple[str, tuple[Value, ...]]] = field(
        default_factory=list
    )


def _schemas(spec: WorkloadSpec) -> dict[str, RelationSchema]:
    return {
        spec.class_name(i): RelationSchema(
            spec.class_name(i),
            tuple(spec.attribute_name(j) for j in range(spec.attributes)),
        )
        for i in range(spec.classes)
    }


def _condition_choices(
    spec: WorkloadSpec, rng: random.Random
) -> list[tuple[str, dict]]:
    """Pre-draw a pool of (class, extra tests) condition skeletons."""
    pool_size = spec.shared_condition_pool or 10_000
    pool: list[tuple[str, dict]] = []
    for _ in range(min(pool_size, 10_000) if spec.shared_condition_pool else 0):
        pool.append(_draw_condition(spec, rng))
    return pool


def _draw_condition(spec: WorkloadSpec, rng: random.Random) -> tuple[str, dict]:
    class_name = spec.class_name(rng.randrange(spec.classes))
    extras: dict = {}
    if spec.attributes >= 2 and rng.random() < spec.constant_probability:
        extras[spec.attribute_name(1)] = rng.randrange(spec.domain)
    if spec.attributes >= 3 and rng.random() < spec.comparison_probability:
        extras[spec.attribute_name(2)] = test(">", rng.randrange(spec.domain))
    return class_name, extras


def generate_program(spec: WorkloadSpec) -> GeneratedWorkload:
    """Generate the schemas and rules of *spec* (no WM stream yet)."""
    rng = random.Random(spec.seed)
    schemas = _schemas(spec)
    pool = _condition_choices(spec, rng)
    rules: list[Rule] = []
    for rule_index in range(spec.rules):
        count = rng.randint(spec.min_conditions, spec.max_conditions)
        builder = RuleBuilder(f"rule{rule_index}")
        for position in range(count):
            if pool:
                class_name, extras = pool[rng.randrange(len(pool))]
            else:
                class_name, extras = _draw_condition(spec, rng)
            attrs = dict(extras)
            # Chain join: every condition binds the shared variable <j>.
            attrs[spec.attribute_name(0)] = var("j")
            negated = (
                position > 0 and rng.random() < spec.negation_probability
            )
            if negated:
                builder.unless(class_name, **attrs)
            else:
                builder.when(class_name, **attrs)
        builder.remove(1)
        rules.append(builder.build())
    program = Program(schemas=schemas, rules=rules)
    return GeneratedWorkload(spec=spec, program=program)


def generate_insert_stream(
    spec: WorkloadSpec,
    count: int,
    seed: int | None = None,
) -> list[tuple[str, tuple[Value, ...]]]:
    """A stream of *count* tuple insertions matching the spec's domains."""
    rng = random.Random(spec.seed + 1 if seed is None else seed)
    stream: list[tuple[str, tuple[Value, ...]]] = []
    for _ in range(count):
        class_name = spec.class_name(rng.randrange(spec.classes))
        values = tuple(
            rng.randrange(spec.domain) for _ in range(spec.attributes)
        )
        stream.append((class_name, values))
    return stream


def generate_workload(
    spec: WorkloadSpec, stream_length: int = 200
) -> GeneratedWorkload:
    """Program plus insert stream in one call."""
    workload = generate_program(spec)
    workload.insert_stream = generate_insert_stream(spec, stream_length)
    return workload


def mixed_stream(
    spec: WorkloadSpec,
    count: int,
    delete_fraction: float = 0.3,
    seed: int | None = None,
) -> list[tuple[str, object]]:
    """A stream of ("insert", (class, values)) / ("delete", index) events.

    Delete events reference the i-th still-live insert by position, letting
    the driver resolve actual tuple ids at run time.
    """
    rng = random.Random((spec.seed + 2) if seed is None else seed)
    events: list[tuple[str, object]] = []
    live = 0
    for _ in range(count):
        if live > 0 and rng.random() < delete_fraction:
            events.append(("delete", rng.randrange(live)))
            live -= 1
        else:
            class_name = spec.class_name(rng.randrange(spec.classes))
            values = tuple(
                rng.randrange(spec.domain) for _ in range(spec.attributes)
            )
            events.append(("insert", (class_name, values)))
            live += 1
    return events
