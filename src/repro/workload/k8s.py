"""The k8s-auto-fix workload: a production-shaped serving profile.

The serving benchmark (report ``a9``) needs a rule pack that looks like
a real always-on consumer — not a synthetic chain.  This one is a
cluster auto-remediator: *events* (crash loops, OOM kills, node
pressure, failed probes) stream into working memory, and rules diagnose
each one against the *pod*/*node* inventory, emit a *remediation*,
verify it, and escalate repeat offenders to a *ticket*.  Every event is
consumed by exactly one rule, so a quiescent engine has an empty event
relation — the invariant the soak test asserts.

Everything here is deterministic in the seed: the same stream against
the same program yields the same remediations, tickets and firing
sequence on every run, which is what lets the crash-restart suite
compare a killed-and-recovered server against an uninterrupted one.
"""

from __future__ import annotations

import random

#: The auto-fix rule pack.  Attribute conventions: counts are integers,
#: everything else symbols.  ``count <= 3`` routes to a kind-specific
#: fix; ``count > 3`` escalates instead — the guards are disjoint, so
#: rule applicability never races on resolution order.
K8S_PROGRAM = """
(literalize event id pod node kind count)
(literalize pod name node restarts memory)
(literalize node name cordoned)
(literalize remediation pod action verified)
(literalize ticket pod kind count)

(p restart-crashloop
    (event ^id <e> ^pod <p> ^kind crashloop ^count <= 3)
    (pod ^name <p> ^restarts <r>)
    -(remediation ^pod <p> ^action restart)
    -->
    (make remediation ^pod <p> ^action restart ^verified no)
    (modify 2 ^restarts (compute <r> + 1))
    (remove 1))

(p raise-memory-oom
    (event ^id <e> ^pod <p> ^kind oomkill ^count <= 3)
    (pod ^name <p> ^memory <m>)
    -(remediation ^pod <p> ^action raise-memory)
    -->
    (make remediation ^pod <p> ^action raise-memory ^verified no)
    (modify 2 ^memory (compute <m> * 2))
    (remove 1))

(p cordon-pressured-node
    (event ^id <e> ^node <n> ^kind pressure ^count <= 3)
    (node ^name <n> ^cordoned no)
    -->
    (make remediation ^pod <n> ^action cordon ^verified no)
    (modify 2 ^cordoned yes)
    (remove 1))

(p drop-pressure-on-cordoned
    (event ^id <e> ^node <n> ^kind pressure ^count <= 3)
    (node ^name <n> ^cordoned yes)
    -->
    (remove 1))

(p restart-failed-probe
    (event ^id <e> ^pod <p> ^kind probe ^count <= 3)
    (pod ^name <p> ^restarts <r>)
    -(remediation ^pod <p> ^action restart)
    -->
    (make remediation ^pod <p> ^action restart ^verified no)
    (modify 2 ^restarts (compute <r> + 1))
    (remove 1))

(p drop-already-restarted
    (event ^id <e> ^pod <p> ^kind << crashloop probe >> ^count <= 3)
    (remediation ^pod <p> ^action restart)
    -->
    (remove 1))

(p drop-already-resized
    (event ^id <e> ^pod <p> ^kind oomkill ^count <= 3)
    (remediation ^pod <p> ^action raise-memory)
    -->
    (remove 1))

(p escalate-repeat-offender
    (event ^id <e> ^pod <p> ^kind <k> ^count > 3)
    -->
    (make ticket ^pod <p> ^kind <k> ^count <e>)
    (remove 1))

(p drop-orphan-event
    (event ^id <e> ^pod <p> ^kind <k> ^count <= 3)
    -(pod ^name <p>)
    -(node ^name <p>)
    -->
    (remove 1))

(p verify-remediation
    (remediation ^pod <p> ^action <a> ^verified no)
    -->
    (modify 1 ^verified yes))
"""

#: Event kinds with their relative weights in the generated stream.
EVENT_KINDS = (
    ("crashloop", 4),
    ("oomkill", 3),
    ("pressure", 2),
    ("probe", 3),
)


def k8s_setup(pods: int = 8, nodes: int = 3) -> list[tuple[str, dict]]:
    """Inventory inserts: *nodes* nodes, *pods* pods round-robin on them."""
    ops: list[tuple[str, dict]] = []
    for n in range(nodes):
        ops.append(("node", {"name": f"node-{n}", "cordoned": "no"}))
    for p in range(pods):
        ops.append(
            (
                "pod",
                {
                    "name": f"pod-{p}",
                    "node": f"node-{p % nodes}",
                    "restarts": 0,
                    "memory": 256,
                },
            )
        )
    return ops


def k8s_events(
    count: int, seed: int = 0, pods: int = 8, nodes: int = 3
) -> list[tuple[str, dict]]:
    """A deterministic stream of *count* cluster events.

    Roughly one event in eight carries ``count > 3`` (the escalation
    path); a few name pods that are not in the inventory (the orphan
    path), so every rule in the pack sees traffic.
    """
    rng = random.Random(seed)
    kinds = [kind for kind, weight in EVENT_KINDS for _ in range(weight)]
    events: list[tuple[str, dict]] = []
    for i in range(count):
        kind = kinds[rng.randrange(len(kinds))]
        if rng.randrange(12) == 0:
            target = f"ghost-{rng.randrange(4)}"  # not in the inventory
        else:
            target = f"pod-{rng.randrange(pods)}"
        events.append(
            (
                "event",
                {
                    "id": i + 1,
                    "pod": target,
                    "node": f"node-{rng.randrange(nodes)}",
                    "kind": kind,
                    "count": 5 if rng.randrange(8) == 0 else 1 + rng.randrange(3),
                },
            )
        )
    return events


def as_requests(
    tenant: str, ops: list[tuple[str, dict]], start_seq: int = 1
) -> list[dict]:
    """Wrap raw ``(relation, values)`` ops as serve-protocol inserts."""
    return [
        {
            "op": "insert",
            "tenant": tenant,
            "seq": start_seq + i,
            "relation": relation,
            "values": values,
        }
        for i, (relation, values) in enumerate(ops)
    ]
