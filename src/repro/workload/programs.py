"""Canned programs: the paper's own examples plus parametric families.

The 1988 OPS5 benchmark suites are not available, so the reproduction's
fixed points are the programs printed in the paper (Examples 2–4) plus
parametric families that exercise the structures the paper reasons about:
the Figure-1 chain ``C1 ∧ … ∧ Cn``, counters for the recognize-act cycle,
and independent-rule batches for the §5 concurrency experiments.
"""

from __future__ import annotations

#: Example 2 (§3.1): algebraic simplification.  The paper shows PlusOX in
#: full and names the sibling TimesOX; §4.1.1's COND tables list both.
EXAMPLE2_SOURCE = """
(literalize Goal Type Object)
(literalize Expression Name Arg1 Op Arg2)

(p PlusOX
    (Goal ^Type Simplify ^Object <N>)
    (Expression ^Name <N> ^Arg1 0 ^Op + ^Arg2 <X>)
    -->
    (modify 2 ^Op nil ^Arg1 nil))

(p TimesOX
    (Goal ^Type Simplify ^Object <N>)
    (Expression ^Name <N> ^Arg1 0 ^Op '*' ^Arg2 <X>)
    -->
    (modify 2 ^Op nil ^Arg2 nil))
"""

#: Example 3 (§3.2): employee deletion rules.
EXAMPLE3_SOURCE = """
(literalize Emp name salary dno manager)
(literalize Dept dno dname floor manager)

(p R1
    (Emp ^name Mike ^salary <S> ^manager <M>)
    (Emp ^name <M> ^salary {<S1> < <S>})
    -->
    (remove 1))

(p R2
    (Emp ^dno <D>)
    (Dept ^dno <D> ^dname Toy ^floor 1)
    -->
    (remove 1))
"""

#: Example 4 (§4.2.1): the three-way cyclic join Rule-1 over A, B, C.
EXAMPLE4_SOURCE = """
(literalize A A1 A2 A3)
(literalize B B1 B2 B3)
(literalize C C1 C2 C3)

(p Rule-1
    (A ^A1 <x> ^A2 a ^A3 <z>)
    (B ^B1 <x> ^B2 <y> ^B3 b)
    (C ^C1 c ^C2 <y> ^C3 <z>)
    -->
    (halt))
"""

#: Example 5 (§4.2.2): the insert sequence driven through Example 4's rule.
EXAMPLE5_INSERTS = [
    ("B", (4, 5, "b")),
    ("C", ("c", 7, 8)),
    ("A", (4, "a", 8)),
    ("B", (4, 7, "b")),
]


def chain_program(depth: int, shared_attr: bool = True) -> str:
    """Figure 1's ``C1 ∧ C2 ∧ … ∧ Cn`` as one rule over *depth* classes.

    When *shared_attr* is true every adjacent pair joins on a common
    variable, matching the figure; otherwise the conditions are
    independent selections.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    lines = []
    conditions = []
    for i in range(depth):
        lines.append(f"(literalize C{i} v tag)")
        if shared_attr:
            conditions.append(f"(C{i} ^v <x>)")
        else:
            conditions.append(f"(C{i} ^tag live)")
    lines.append(f"(p chain {' '.join(conditions)} --> (remove 1))")
    return "\n".join(lines)


def counter_program(limit: int) -> str:
    """A counter that runs the recognize-act cycle *limit* times."""
    return f"""
    (literalize Counter value limit)
    (p count-up
        (Counter ^value <V> ^limit {{<L> > <V>}})
        -->
        (modify 1 ^value (compute <V> + 1)))
    (p done
        (Counter ^value {limit} ^limit {limit})
        -->
        (halt))
    """


def independent_rules_program(count: int) -> str:
    """*count* rules over disjoint classes — fully parallelizable (§5)."""
    parts = []
    for i in range(count):
        parts.append(f"(literalize T{i} x)")
        parts.append(f"(literalize L{i} x)")
        parts.append(
            f"(p r{i} (T{i} ^x <V>) --> (remove 1) (make L{i} ^x <V>))"
        )
    return "\n".join(parts)


def contended_rules_program(count: int) -> str:
    """*count* rules all updating one shared relation — the serial worst
    case of §5.2 ("in the worst case, this will reduce to the time taken
    for a serial execution")."""
    parts = ["(literalize Shared x)", "(literalize Log x)"]
    for i in range(count):
        parts.append(f"(literalize T{i} x)")
        parts.append(
            f"(p r{i} (T{i} ^x <V>) (Shared ^x <S>) --> "
            f"(remove 1) (modify 2 ^x (compute <S> + 1)))"
        )
    return "\n".join(parts)


def monkey_bananas_program() -> str:
    """A compact classic planning program (monkey-and-bananas style).

    Exercises multi-step chaining: the monkey moves to the chair, pushes it
    under the bananas, climbs, and grabs.
    """
    return """
    (literalize Monkey at on holding)
    (literalize Object name at)
    (literalize Goal status)

    (p go-to-chair
        (Goal ^status active)
        (Monkey ^at <M> ^on floor)
        (Object ^name chair ^at {<C> <> <M>})
        -->
        (modify 2 ^at <C>))

    (p push-chair
        (Goal ^status active)
        (Object ^name chair ^at <C>)
        (Object ^name bananas ^at {<B> <> <C>})
        (Monkey ^at <C> ^on floor)
        -->
        (modify 2 ^at <B>)
        (modify 4 ^at <B>))

    (p climb-chair
        (Goal ^status active)
        (Object ^name chair ^at <B>)
        (Object ^name bananas ^at <B>)
        (Monkey ^at <B> ^on floor)
        -->
        (modify 4 ^on chair))

    (p grab-bananas
        (Goal ^status active)
        (Object ^name bananas ^at <B>)
        (Monkey ^at <B> ^on chair ^holding nil)
        -->
        (modify 3 ^holding bananas)
        (modify 1 ^status satisfied)
        (halt))
    """
