"""Shard planning for parallel match execution.

Two partitioning schemes, both deterministic functions of the data:

* **hash shards** — a per-class WM group is split by ``tid % shards``
  for the alpha phase.  Every shard remembers the original positions of
  its elements, so per-shard results scatter back into a full-length
  mask in the original order; the admission that follows consumes the
  mask serially, making shard assignment invisible to the outcome.
* **contiguous chunks** — a probe token set is split into contiguous
  runs for the join/negation phase.  Each chunk's pair list preserves
  the serial token-major (or element-major) order internally, so
  concatenating the chunk results in chunk order reproduces the serial
  pair sequence exactly.

Neither scheme consults anything besides the input sequence and the
requested shard count — no clocks, no thread identities — which is what
lets ``workers=N`` stay bit-identical to ``workers=1``.
"""

from __future__ import annotations


def chunk_spans(count: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(count)`` into up to *chunks* contiguous spans.

    Spans are near-equal (sizes differ by at most one, larger spans
    first) and cover the range exactly.  Empty spans are never produced.
    """
    chunks = max(1, min(chunks, count))
    base, extra = divmod(count, chunks)
    spans: list[tuple[int, int]] = []
    start = 0
    for index in range(chunks):
        size = base + (1 if index < extra else 0)
        spans.append((start, start + size))
        start += size
    return spans


def contiguous_chunks(items: list, chunks: int) -> list[list]:
    """Split *items* into up to *chunks* contiguous, order-preserving runs."""
    if not items:
        return []
    return [
        items[start:stop] for start, stop in chunk_spans(len(items), chunks)
    ]


def plan_shard_count(
    count: int, workers: int, min_shard_items: int
) -> int:
    """How many shards to cut *count* items into for *workers* workers.

    One shard per worker, but never shards smaller than
    *min_shard_items* — tiny shards cost more in task dispatch than
    their matching saves.
    """
    if count <= 0 or workers <= 1:
        return 1
    by_size = count // max(1, min_shard_items)
    return max(1, min(workers, by_size))


def hash_shards(
    wmes: list, shards: int
) -> list[tuple[list[int], list]]:
    """Partition *wmes* into hash shards keyed by ``tid % shards``.

    Returns ``(positions, elements)`` per non-empty shard, where
    *positions* are the elements' indices in the input list.  Tuple ids
    are engine-assigned integers, so the bucketing is stable across
    processes (unlike ``hash(str)``, which is seeded per interpreter).
    """
    if shards <= 1 or len(wmes) <= 1:
        return [(list(range(len(wmes))), list(wmes))] if wmes else []
    buckets: list[tuple[list[int], list]] = [
        ([], []) for _ in range(shards)
    ]
    for position, wme in enumerate(wmes):
        positions, elements = buckets[wme.tid % shards]
        positions.append(position)
        elements.append(wme)
    return [bucket for bucket in buckets if bucket[1]]
