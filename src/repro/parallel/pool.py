"""A worker pool with a deterministic ordered fan-out primitive.

The pool owns ``workers - 1`` daemon threads; the calling thread is the
remaining worker, so ``workers=2`` means "the engine thread plus one
helper".  One fan-out (:meth:`WorkerPool.map_tasks`) pushes every task
onto a shared queue, lets the caller and the helpers race through them,
and then returns the results **in task-submission order** — which tasks
ran on which thread is invisible to the merged result.  Tasks must be
pure with respect to engine state: they read frozen memory snapshots and
return values; all mutation happens on the caller after the merge.

Cost accounting stays deterministic too: each task works against its own
:class:`~repro.instrument.Counters` and the caller folds them into the
shared counters in task order, so totals are independent of scheduling.
:class:`PoolStats` tracks the work distribution itself — items fanned
out and the critical path of a round-robin assignment over the worker
slots — giving benchmarks a scheduling-independent speedup bound
(`items / critical_path_items`), the §5.2-style makespan measure.  Wall
clock is recorded in the ``parallel.*`` metrics but never asserted on.
"""

from __future__ import annotations

import queue
import threading
import time
import weakref
from dataclasses import dataclass
from dataclasses import fields as dataclass_fields

from repro.instrument import Counters
from repro.obs import Observability
from repro.obs.metrics import SIZE_BUCKETS
from repro.obs.tracing import NULL_SPAN

from repro.parallel.shard import contiguous_chunks, plan_shard_count


def merge_counters(target: Counters, part: Counters) -> None:
    """Fold *part* into *target* field-by-field (commutative sums)."""
    for spec in dataclass_fields(part):
        setattr(
            target,
            spec.name,
            getattr(target, spec.name) + getattr(part, spec.name),
        )


@dataclass
class PoolStats:
    """Deterministic work-distribution totals for one pool's lifetime.

    All four counts are functions of the fanned-out work itself, never of
    thread scheduling: ``critical_path_items`` models a round-robin
    assignment of tasks to worker slots and accumulates the largest
    per-slot share of each fan-out — the §5.2 makespan bound for this
    pool's worker count.
    """

    workers: int = 1
    fanouts: int = 0
    tasks: int = 0
    items: int = 0
    critical_path_items: int = 0

    @property
    def speedup_bound(self) -> float:
        """Serial items over the critical path (≥ 1 when fan-out paid)."""
        if self.critical_path_items == 0:
            return 1.0
        return self.items / self.critical_path_items

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "fanouts": self.fanouts,
            "tasks": self.tasks,
            "items": self.items,
            "critical_path_items": self.critical_path_items,
            "speedup_bound": round(self.speedup_bound, 3),
        }


class _Task:
    """One unit of fanned-out work: a thunk plus its completion latch."""

    __slots__ = ("fn", "result", "error", "done", "duration", "_pool")

    def __init__(self, fn, pool: "WorkerPool") -> None:
        self.fn = fn
        self.result = None
        self.error: BaseException | None = None
        self.done = threading.Event()
        self.duration = 0.0
        self._pool = pool

    def run(self) -> None:
        started = time.perf_counter()
        try:
            self.result = self.fn()
        except BaseException as exc:  # re-raised on the caller at merge
            self.error = exc
        finally:
            self.duration = time.perf_counter() - started
            self.done.set()
            self._pool._task_done()


def _worker_loop(task_queue: "queue.SimpleQueue") -> None:
    while True:
        task = task_queue.get()
        if task is None:
            return
        task.run()


def _shutdown(task_queue: "queue.SimpleQueue", thread_count: int) -> None:
    for _ in range(thread_count):
        task_queue.put(None)


class WorkerPool:
    """Deterministic fan-out over ``workers`` threads (caller included).

    ``workers=1`` (or a closed pool) runs every fan-out inline — the
    serial reference path with zero thread traffic.  *min_fanout_items*
    is the smallest work-set worth fanning out at all; callers consult
    it before splitting, so small probes stay serial.
    """

    def __init__(
        self,
        workers: int,
        obs: Observability | None = None,
        min_fanout_items: int = 8,
        min_shard_items: int = 4,
        name: str = "match",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self.workers = workers
        self.obs = obs
        self.min_fanout_items = min_fanout_items
        self.min_shard_items = min_shard_items
        self.name = name
        self.stats = PoolStats(workers=workers)
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._pending = 0
        self._closed = False
        self._threads: list[threading.Thread] = []
        for index in range(workers - 1):
            thread = threading.Thread(
                target=_worker_loop,
                args=(self._queue,),
                name=f"repro-{name}-w{index + 1}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        # Helper threads park on the queue forever; shut them down when
        # the pool is garbage-collected so short-lived systems (tests,
        # fuzz replays) do not accumulate idle threads.
        self._finalizer = weakref.finalize(
            self, _shutdown, self._queue, len(self._threads)
        )

    # -- lifecycle ---------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether fan-outs actually use helper threads."""
        return self.workers > 1 and not self._closed

    def drain(self) -> None:
        """Block until no fanned-out task is in flight.

        Topology changes (detaching a strategy, attaching a new one)
        call this first so no worker can be probing a memory that is
        about to be torn down.
        """
        with self._idle:
            while self._pending > 0:
                self._idle.wait(timeout=0.1)

    def close(self) -> None:
        """Drain outstanding work and stop the helper threads."""
        self.drain()
        if not self._closed:
            self._closed = True
            self._finalizer()

    def _task_done(self) -> None:
        with self._idle:
            self._pending -= 1
            if self._pending <= 0:
                self._idle.notify_all()

    # -- shard planning ----------------------------------------------------

    def shard_count(self, count: int) -> int:
        """Shards to cut *count* items into (see :func:`plan_shard_count`)."""
        return plan_shard_count(count, self.workers, self.min_shard_items)

    # -- fan-out -----------------------------------------------------------

    def _account(self, sizes: list[int]) -> None:
        stats = self.stats
        stats.fanouts += 1
        stats.tasks += len(sizes)
        stats.items += sum(sizes)
        shares = [0] * self.workers
        for index, size in enumerate(sizes):
            shares[index % self.workers] += size
        stats.critical_path_items += max(shares)

    def map_tasks(
        self,
        thunks: list,
        sizes: list[int] | None = None,
        label: str = "",
    ) -> list:
        """Run *thunks* and return their results in submission order.

        *sizes* (items per task, defaulting to 1 each) feeds the
        deterministic work-distribution stats and the shard-size
        metrics.  A task exception is re-raised here on the caller once
        every task of the fan-out has finished.
        """
        count = len(thunks)
        if count == 0:
            return []
        if sizes is None:
            sizes = [1] * count
        self._account(sizes)
        if not self.active or count == 1:
            return [fn() for fn in thunks]
        obs = self.obs
        observing = obs is not None and obs.enabled
        span = (
            obs.span(
                "parallel.fanout",
                pool=self.name,
                label=label,
                workers=self.workers,
                tasks=count,
                items=sum(sizes),
            )
            if observing
            else NULL_SPAN
        )
        with span:
            started = time.perf_counter()
            tasks = [_Task(fn, self) for fn in thunks]
            with self._idle:
                self._pending += count
            for task in tasks:
                self._queue.put(task)
            # The caller is a worker too: race the helpers down the queue.
            while True:
                try:
                    grabbed = self._queue.get_nowait()
                except queue.Empty:
                    break
                if grabbed is None:  # shutdown sentinel from close(); re-park
                    self._queue.put(None)
                    break
                grabbed.run()
            merge_started = time.perf_counter()
            for task in tasks:
                task.done.wait()
            merge_wait = time.perf_counter() - merge_started
            span.set("merge_wait_us", int(merge_wait * 1e6))
            if observing:
                elapsed = time.perf_counter() - started
                busy = sum(task.duration for task in tasks)
                metrics = obs.metrics
                metrics.counter("parallel.fanouts").inc()
                metrics.counter("parallel.tasks").inc(count)
                shard_hist = metrics.histogram(
                    "parallel.shard_size", SIZE_BUCKETS
                )
                for size in sizes:
                    shard_hist.observe(size)
                metrics.log2_histogram("parallel.merge_wait_us").observe(
                    merge_wait * 1e6
                )
                if elapsed > 0:
                    metrics.histogram(
                        "parallel.utilization_pct",
                        buckets=(10.0, 25.0, 50.0, 75.0, 90.0, 100.0),
                    ).observe(
                        min(100.0, 100.0 * busy / (elapsed * self.workers))
                    )
        for task in tasks:
            if task.error is not None:
                raise task.error
        return [task.result for task in tasks]

    def map_chunks(
        self,
        items: list,
        compute,
        counters: Counters | None = None,
        label: str = "",
    ) -> list:
        """Chunked pure fan-out: ``compute(chunk, task_counters)`` per chunk.

        *items* is split into contiguous chunks (one per worker slot);
        each task calls *compute* with its chunk and a private
        :class:`Counters`; the per-chunk result lists are concatenated
        in chunk order — bit-identical to ``compute(items, counters)``
        for any order-preserving *compute*.  Task counters fold into
        *counters* afterwards, in chunk order.
        """
        chunks = contiguous_chunks(items, self.workers)
        if len(chunks) <= 1:
            task_counters = Counters()
            merged = compute(items, task_counters)
            if counters is not None:
                merge_counters(counters, task_counters)
            return merged

        def make_thunk(chunk):
            def thunk():
                task_counters = Counters()
                return compute(chunk, task_counters), task_counters

            return thunk

        results = self.map_tasks(
            [make_thunk(chunk) for chunk in chunks],
            sizes=[len(chunk) for chunk in chunks],
            label=label,
        )
        merged = []
        for chunk_result, task_counters in results:
            merged.extend(chunk_result)
            if counters is not None:
                merge_counters(counters, task_counters)
        return merged
