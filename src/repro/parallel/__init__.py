"""Parallel sharded match execution (§4.2's "fully parallelizable").

The paper observes that set-oriented matching-pattern propagation is
"flat, hence parallelizable"; this package supplies the machinery that
makes the claim concrete without giving up determinism:

* :class:`~repro.parallel.pool.WorkerPool` — a small thread pool with a
  *deterministic ordered fan-out* primitive: work is split into
  deterministically-planned tasks, workers compute pure results over
  frozen memory snapshots, and the caller merges results in task order.
  The merged sequence is bit-identical to the serial computation no
  matter how many workers run or how the OS schedules them.
* :mod:`~repro.parallel.shard` — shard planning: working memory is
  partitioned by class, large per-class groups are hash-sharded by
  tuple id, and probe token sets are split into contiguous chunks.

See ``docs/PARALLELISM.md`` for the sharding model and the determinism
contract, and ``docs/ALGORITHMS.md`` §11 for the equivalence argument.
"""

from repro.parallel.pool import PoolStats, WorkerPool
from repro.parallel.shard import (
    chunk_spans,
    contiguous_chunks,
    hash_shards,
    plan_shard_count,
)

__all__ = [
    "PoolStats",
    "WorkerPool",
    "chunk_spans",
    "contiguous_chunks",
    "hash_shards",
    "plan_shard_count",
]
