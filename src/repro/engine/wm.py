"""Working memory: the WM relations of the paper, with change notification.

Working memory is a set of relations (one per literalized class) stored in a
:class:`~repro.storage.catalog.Catalog`, so it can live in memory or in
SQLite.  Every insert/delete is announced to registered listeners — the
match strategies — which is exactly Figure 2 of the paper: "Changes to
Working Memory → propagate → Rete Network".

A *modify* is a delete followed by an insert (§3.1), so the new element gets
a fresh timetag, as in OPS5.

Two change-propagation granularities exist (§4.2.3's set-orientation):

* tuple-at-a-time — :meth:`WorkingMemory.insert` / :meth:`remove` notify
  listeners immediately, as the seed implementation always did;
* set-at-a-time — :meth:`apply_batch` applies a whole operation list to
  storage first (grouped per relation, one backend transaction) and then
  notifies each listener *once* with a :class:`~repro.delta.DeltaBatch`;
  :meth:`begin_batch`/:meth:`flush_batch`/:meth:`end_batch` buffer both
  the notifications *and the storage writes* of ordinary mutations the
  same way (used by the act phase and the transaction layer).

Batch scopes *stage* their writes: an insert reserves a real tuple id and
timetag immediately (so the returned element is identical to what an
eager write would produce) but the row only reaches the backend at flush,
grouped per relation through ``delete_many``/``insert_prepared`` inside
one backend transaction.  Inside a scope, point reads through
:meth:`WorkingMemory.get` consult the staged overlay, so RHS actions and
the engine's liveness check observe their own writes; raw table scans see
the pre-batch storage state until the flush.  Insert/delete pairs netted
away by :meth:`~repro.delta.DeltaBatch.net` never reach storage at all
(their tid and timetag stay consumed, exactly as under eager writes).

Listeners that implement ``on_delta(batch)`` receive the batch whole;
anything else gets the classic per-tuple callbacks in batch order.

When a write-ahead log is attached (``wm.wal``, see
:mod:`repro.recovery.wal`), every delivered batch — and every
tuple-at-a-time mutation — is appended to the log *after* the listeners
(the maintenance process) have consumed it, matching §5's
commit-after-maintenance discipline.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from typing import Protocol

from repro.delta import DELETE, INSERT, Delta, DeltaBatch
from repro.errors import MatchError, StorageError
from repro.instrument import Counters
from repro.obs import Observability
from repro.storage.catalog import Catalog
from repro.storage.schema import RelationSchema, Value
from repro.storage.table import Table
from repro.storage.tuples import StoredTuple


class WMListener(Protocol):
    """Anything notified of WM changes (match strategies, view maintainers).

    Implementing ``on_delta(batch: DeltaBatch)`` is optional; listeners
    that do are handed change batches whole on the set-at-a-time path.
    """

    def on_insert(self, wme: StoredTuple) -> None:
        """Called after *wme* is stored."""

    def on_delete(self, wme: StoredTuple) -> None:
        """Called after *wme* is removed."""


class WorkingMemory:
    """The WM relations plus listener fan-out."""

    def __init__(
        self,
        schemas: dict[str, RelationSchema],
        backend: str = "memory",
        counters: Counters | None = None,
        path: str | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.counters = counters or Counters()
        self.obs = obs or Observability()
        self.catalog = Catalog(
            backend=backend, counters=self.counters, path=path, obs=self.obs
        )
        self.schemas = dict(schemas)
        for schema in schemas.values():
            self.catalog.create(schema)
        self._listeners: list[WMListener] = []
        self._pending: list[Delta] | None = None
        #: Staged-row overlay, non-None exactly while a batch scope is
        #: open: ``(relation, tid) -> StoredTuple`` for rows inserted but
        #: not yet flushed, ``-> None`` for rows deleted in this scope.
        self._staged: dict[tuple[str, int], StoredTuple | None] | None = None
        #: Optional write-ahead log (:class:`repro.recovery.wal.WalWriter`
        #: or anything with ``log_batch(DeltaBatch)``); when attached,
        #: every delivered batch is appended after listener fan-out.
        self.wal = None

    # -- listeners ------------------------------------------------------------

    def add_listener(self, listener: WMListener) -> None:
        """Register *listener* for subsequent WM changes."""
        self._listeners.append(listener)

    def remove_listener(self, listener: WMListener) -> None:
        """Unregister *listener*."""
        self._listeners.remove(listener)

    # -- access ----------------------------------------------------------------

    def relation(self, class_name: str) -> Table:
        """Return the WM relation for *class_name*."""
        if class_name not in self.schemas:
            raise MatchError(f"unknown WM class {class_name!r}")
        return self.catalog.get(class_name)

    def schema(self, class_name: str) -> RelationSchema:
        """Return the schema of *class_name*."""
        try:
            return self.schemas[class_name]
        except KeyError:
            raise MatchError(f"unknown WM class {class_name!r}") from None

    def tuples(self, class_name: str) -> Iterator[StoredTuple]:
        """Iterate over the current elements of *class_name*."""
        return self.relation(class_name).scan()

    def get(self, class_name: str, tid: int) -> StoredTuple:
        """Fetch one element by tuple id.

        Inside a batch scope the staged overlay answers first, so callers
        observe the scope's own not-yet-flushed writes (and deletes).
        """
        staged = self._staged
        if staged is not None:
            key = (class_name, tid)
            if key in staged:
                entry = staged[key]
                if entry is None:
                    raise StorageError(
                        f"relation {class_name!r} has no tuple #{tid}"
                    )
                return entry
        return self.relation(class_name).get(tid)

    def size(self) -> int:
        """Total number of WM elements across all classes."""
        return sum(len(self.relation(name)) for name in self.schemas)

    def tid_marks(self) -> dict[str, int]:
        """Per-relation tuple-id high-water marks (identity allocation).

        Recorded at WAL boundaries: reserved tids whose rows were netted
        away never reach storage, so the marks — not ``MAX(tid)`` — are
        what recovery must restore for a resumed run to allocate the same
        identities the uninterrupted run would have.
        """
        return {
            name: self.relation(name).tid_high_water()
            for name in self.schemas
        }

    def restore_tid_marks(self, marks: dict[str, int]) -> None:
        """Push every relation's allocation mark to at least *marks*."""
        for name, tid in marks.items():
            if name in self.schemas:
                self.relation(name).advance_tid(tid)

    # -- mutation ----------------------------------------------------------------

    def insert(
        self, class_name: str, values: tuple[Value, ...] | dict[str, Value]
    ) -> StoredTuple:
        """Insert a WM element and notify listeners; returns the element.

        Inside a batch scope the notification is buffered and the storage
        write staged: the element gets its real tid and timetag now (so it
        is bit-identical to an eager write) but reaches the backend only
        at the next flush, batched per relation.
        """
        table = self.relation(class_name)
        if isinstance(values, dict):
            values = table.schema.row_from_mapping(values)
        if self._staged is not None:
            values = tuple(values)
            table.schema.validate_row(values)
            wme = StoredTuple(
                relation=class_name,
                tid=table.reserve_tid(),
                timetag=self.catalog.clock.tick(),
                values=values,
            )
            self._staged[(class_name, wme.tid)] = wme
            self._pending.append(Delta(INSERT, wme))
            return wme
        wme = table.insert(tuple(values))
        self._notify(Delta(INSERT, wme))
        return wme

    def insert_many(
        self,
        class_name: str,
        rows: list[tuple[Value, ...] | dict[str, Value]],
    ) -> list[StoredTuple]:
        """Insert several elements of one class as a unit; returns them.

        Bit-identical to calling :meth:`insert` once per row — tids and
        timetags are assigned in row order — but the relation and schema
        are resolved once and, inside a batch scope, all rows join the
        open batch as a single staged contribution (the act path's
        same-class ``(make ...)`` runs land here).
        """
        table = self.relation(class_name)
        schema = table.schema
        prepared: list[tuple[Value, ...]] = [
            tuple(
                schema.row_from_mapping(values)
                if isinstance(values, dict)
                else values
            )
            for values in rows
        ]
        if self._staged is None:
            stored = []
            for values in prepared:
                wme = table.insert(values)
                self._notify(Delta(INSERT, wme))
                stored.append(wme)
            return stored
        clock = self.catalog.clock
        staged: list[StoredTuple] = []
        for values in prepared:
            schema.validate_row(values)
            wme = StoredTuple(
                relation=class_name,
                tid=table.reserve_tid(),
                timetag=clock.tick(),
                values=values,
            )
            self._staged[(class_name, wme.tid)] = wme
            self._pending.append(Delta(INSERT, wme))
            staged.append(wme)
        return staged

    def remove(self, wme: StoredTuple) -> StoredTuple:
        """Delete a WM element and notify listeners; returns the element."""
        table = self.relation(wme.relation)
        staged = self._staged
        if staged is not None:
            key = (wme.relation, wme.tid)
            if key in staged:
                removed = staged[key]
                if removed is None:
                    raise StorageError(
                        f"relation {wme.relation!r} has no tuple #{wme.tid}"
                    )
            else:
                removed = table.get(wme.tid)
            staged[key] = None
            self._pending.append(Delta(DELETE, removed))
            return removed
        removed = table.delete(wme.tid)
        self._notify(Delta(DELETE, removed))
        return removed

    def _notify(self, delta: Delta) -> None:
        """Tuple-at-a-time fan-out (no batch scope open), then the WAL."""
        for listener in list(self._listeners):
            if delta.op == INSERT:
                listener.on_insert(delta.wme)
            else:
                listener.on_delete(delta.wme)
        if self.wal is not None:
            self.wal.log_batch(DeltaBatch([delta]))

    def modify(
        self, wme: StoredTuple, changes: dict[str, Value]
    ) -> StoredTuple:
        """Update fields of *wme*: delete + insert with a fresh timetag."""
        schema = self.schema(wme.relation)
        new_values = list(wme.values)
        for attribute, value in changes.items():
            new_values[schema.position(attribute)] = value
        self.remove(wme)
        return self.insert(wme.relation, tuple(new_values))

    # -- set-at-a-time mutation (the delta pipeline) ----------------------------

    @property
    def batching(self) -> bool:
        """True while a batch scope is buffering notifications."""
        return self._pending is not None

    def pending_deltas(self) -> int:
        """Number of buffered, not-yet-delivered deltas."""
        return len(self._pending) if self._pending is not None else 0

    def begin_batch(self) -> None:
        """Start buffering change notifications (and storage writes)."""
        if self._pending is not None:
            raise MatchError("a WM batch is already open")
        self._pending = []
        self._staged = {}

    def flush_batch(self) -> DeltaBatch:
        """Flush staged writes and deliver buffered deltas as one batch;
        stay in batch mode."""
        if self._pending is None:
            raise MatchError("no WM batch is open")
        batch = DeltaBatch(self._pending).net()
        self._pending = []
        self._staged = {}
        if batch:
            observing = self.obs.enabled
            started = time.perf_counter() if observing else 0.0
            logged = self._apply_storage(batch, log_wal=True)
            self._deliver(batch)
            if self.wal is not None and not logged:
                self.wal.log_batch(batch)
            if observing:
                self.obs.metrics.log2_histogram("wm.flush_us").observe(
                    (time.perf_counter() - started) * 1e6
                )
        return batch

    def end_batch(self) -> DeltaBatch:
        """Deliver buffered deltas and leave batch mode."""
        batch = self.flush_batch()
        self._pending = None
        self._staged = None
        return batch

    def _apply_storage(self, batch: DeltaBatch, log_wal: bool = False)  \
            -> bool:
        """Persist one netted staged batch: deletes then inserts, grouped
        per relation, in a single backend transaction.

        Rows already carry their reserved tid and timetag, so inserts go
        through ``insert_prepared``; netted insert/delete pairs are gone
        from *batch* and never touch the backend.

        With *log_wal* and a WAL attached, the batch's log record is
        appended *and fsynced* inside the transaction's pre-commit hook —
        write-ahead in the strict sense: the backend COMMIT waits on the
        WAL fsync, so a crash between the two leaves the database behind
        the log (recovery's replay direction), never ahead of it.
        Returns True when the hook logged the batch (the caller must not
        log it again); False on the memory backend and in nested scopes,
        where there is no commit to order against.
        """
        logged = False
        pre_commit = None
        if log_wal and self.wal is not None:
            def pre_commit() -> bool:
                nonlocal logged
                logged = True
                self.wal.log_batch(batch)
                self.wal.sync()
                return not self.wal.dead
        deletes = batch.deletes
        inserts = batch.inserts
        with self.catalog.transaction(pre_commit=pre_commit):
            if deletes:
                groups: dict[str, list[int]] = {}
                for delta in deletes:
                    groups.setdefault(delta.relation, []).append(delta.tid)
                for relation, tids in groups.items():
                    self.relation(relation).delete_many(tids)
            if inserts:
                rows: dict[str, list[StoredTuple]] = {}
                for delta in inserts:
                    rows.setdefault(delta.relation, []).append(delta.wme)
                for relation, staged_rows in rows.items():
                    self.relation(relation).insert_prepared(staged_rows)
        return logged

    @contextmanager
    def batch(self):
        """Scope mutations as one delta batch (re-entrant: nested scopes
        join the outer batch rather than flushing early)."""
        if self._pending is not None:
            yield self
            return
        self.begin_batch()
        try:
            yield self
        finally:
            self.end_batch()

    def apply_batch(
        self, ops: list[tuple]
    ) -> DeltaBatch:
        """Apply an operation list set-at-a-time; notify listeners once.

        Each op is ``("insert", class_name, values)``,
        ``("delete", wme)`` or ``("modify", wme, changes)`` (the latter
        expands to delete + insert, §3.1).  Storage writes are grouped per
        relation (``delete_many``/``insert_many``) inside a single backend
        transaction; timetags are pre-assigned in op order so recency
        agrees with sequential application.  Deletes must reference
        elements stored before this batch.  The returned batch lists the
        realized deltas in op order.
        """
        if self._pending is not None:
            raise MatchError("apply_batch cannot run inside an open WM batch")
        expanded: list[tuple] = []
        for op in ops:
            kind = op[0]
            if kind == "insert":
                _, class_name, values = op
                schema = self.schema(class_name)
                if isinstance(values, dict):
                    values = schema.row_from_mapping(values)
                expanded.append((INSERT, class_name, tuple(values)))
            elif kind == "delete":
                expanded.append((DELETE, op[1]))
            elif kind == "modify":
                _, wme, changes = op
                schema = self.schema(wme.relation)
                new_values = list(wme.values)
                for attribute, value in changes.items():
                    new_values[schema.position(attribute)] = value
                expanded.append((DELETE, wme))
                expanded.append((INSERT, wme.relation, tuple(new_values)))
            else:
                raise MatchError(f"unknown batch op kind {kind!r}")

        clock = self.catalog.clock
        deltas: list[Delta | None] = [None] * len(expanded)
        delete_groups: dict[str, tuple[list[int], list[int]]] = {}
        insert_groups: dict[
            str, tuple[list[int], list[tuple], list[int]]
        ] = {}
        for position, op in enumerate(expanded):
            if op[0] == DELETE:
                wme = op[1]
                positions, tids = delete_groups.setdefault(
                    wme.relation, ([], [])
                )
                positions.append(position)
                tids.append(wme.tid)
            else:
                _, class_name, values = op
                positions, rows, timetags = insert_groups.setdefault(
                    class_name, ([], [], [])
                )
                positions.append(position)
                rows.append(values)
                timetags.append(clock.tick())

        batch = DeltaBatch()
        logged = False
        pre_commit = None
        if self.wal is not None:
            def pre_commit() -> bool:
                # Write-ahead: the realized batch is logged and fsynced
                # before the backend COMMIT (see ``_apply_storage``).
                nonlocal logged
                logged = True
                if batch:
                    self.wal.log_batch(batch)
                    self.wal.sync()
                return not self.wal.dead
        with self.catalog.transaction(pre_commit=pre_commit):
            for class_name, (positions, tids) in delete_groups.items():
                removed = self.relation(class_name).delete_many(tids)
                for position, row in zip(positions, removed):
                    deltas[position] = Delta(DELETE, row)
            for class_name, (positions, rows, timetags) in (
                insert_groups.items()
            ):
                stored = self.relation(class_name).insert_many(rows, timetags)
                for position, row in zip(positions, stored):
                    deltas[position] = Delta(INSERT, row)
            batch = DeltaBatch(d for d in deltas if d is not None)

        if batch:
            self._deliver(batch)
            if self.wal is not None and not logged:
                self.wal.log_batch(batch)
        return batch

    def restore_batch(self, batch: DeltaBatch) -> None:
        """Re-apply one committed batch during crash recovery.

        Rows keep the exact tid and timetag recorded in the log
        (``insert_prepared``), the shared clock is advanced past every
        replayed timetag, and listeners are notified once — replaying the
        maintenance process.  Never logged to the WAL (the records came
        *from* it).
        """
        if self._pending is not None:
            raise MatchError("restore_batch cannot run inside an open WM batch")
        self._apply_storage(batch)
        for delta in batch:
            self.catalog.clock.advance_to(delta.wme.timetag)
        if batch:
            self._deliver(batch)

    def _deliver(self, batch: DeltaBatch) -> None:
        """Fan one batch out to every listener, preferring ``on_delta``."""
        for listener in list(self._listeners):
            on_delta = getattr(listener, "on_delta", None)
            if on_delta is not None:
                on_delta(batch)
                continue
            for delta in batch:
                if delta.op == INSERT:
                    listener.on_insert(delta.wme)
                else:
                    listener.on_delete(delta.wme)
