"""Working memory: the WM relations of the paper, with change notification.

Working memory is a set of relations (one per literalized class) stored in a
:class:`~repro.storage.catalog.Catalog`, so it can live in memory or in
SQLite.  Every insert/delete is announced to registered listeners — the
match strategies — which is exactly Figure 2 of the paper: "Changes to
Working Memory → propagate → Rete Network".

A *modify* is a delete followed by an insert (§3.1), so the new element gets
a fresh timetag, as in OPS5.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Protocol

from repro.errors import MatchError
from repro.instrument import Counters
from repro.obs import Observability
from repro.storage.catalog import Catalog
from repro.storage.schema import RelationSchema, Value
from repro.storage.table import Table
from repro.storage.tuples import StoredTuple


class WMListener(Protocol):
    """Anything notified of WM changes (match strategies, view maintainers)."""

    def on_insert(self, wme: StoredTuple) -> None:
        """Called after *wme* is stored."""

    def on_delete(self, wme: StoredTuple) -> None:
        """Called after *wme* is removed."""


class WorkingMemory:
    """The WM relations plus listener fan-out."""

    def __init__(
        self,
        schemas: dict[str, RelationSchema],
        backend: str = "memory",
        counters: Counters | None = None,
        path: str | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.counters = counters or Counters()
        self.obs = obs or Observability()
        self.catalog = Catalog(
            backend=backend, counters=self.counters, path=path, obs=self.obs
        )
        self.schemas = dict(schemas)
        for schema in schemas.values():
            self.catalog.create(schema)
        self._listeners: list[WMListener] = []

    # -- listeners ------------------------------------------------------------

    def add_listener(self, listener: WMListener) -> None:
        """Register *listener* for subsequent WM changes."""
        self._listeners.append(listener)

    def remove_listener(self, listener: WMListener) -> None:
        """Unregister *listener*."""
        self._listeners.remove(listener)

    # -- access ----------------------------------------------------------------

    def relation(self, class_name: str) -> Table:
        """Return the WM relation for *class_name*."""
        if class_name not in self.schemas:
            raise MatchError(f"unknown WM class {class_name!r}")
        return self.catalog.get(class_name)

    def schema(self, class_name: str) -> RelationSchema:
        """Return the schema of *class_name*."""
        try:
            return self.schemas[class_name]
        except KeyError:
            raise MatchError(f"unknown WM class {class_name!r}") from None

    def tuples(self, class_name: str) -> Iterator[StoredTuple]:
        """Iterate over the current elements of *class_name*."""
        return self.relation(class_name).scan()

    def get(self, class_name: str, tid: int) -> StoredTuple:
        """Fetch one element by tuple id."""
        return self.relation(class_name).get(tid)

    def size(self) -> int:
        """Total number of WM elements across all classes."""
        return sum(len(self.relation(name)) for name in self.schemas)

    # -- mutation ----------------------------------------------------------------

    def insert(
        self, class_name: str, values: tuple[Value, ...] | dict[str, Value]
    ) -> StoredTuple:
        """Insert a WM element and notify listeners; returns the element."""
        table = self.relation(class_name)
        if isinstance(values, dict):
            wme = table.insert_mapping(values)
        else:
            wme = table.insert(values)
        for listener in list(self._listeners):
            listener.on_insert(wme)
        return wme

    def remove(self, wme: StoredTuple) -> StoredTuple:
        """Delete a WM element and notify listeners; returns the element."""
        removed = self.relation(wme.relation).delete(wme.tid)
        for listener in list(self._listeners):
            listener.on_delete(removed)
        return removed

    def modify(
        self, wme: StoredTuple, changes: dict[str, Value]
    ) -> StoredTuple:
        """Update fields of *wme*: delete + insert with a fresh timetag."""
        schema = self.schema(wme.relation)
        new_values = list(wme.values)
        for attribute, value in changes.items():
            new_values[schema.position(attribute)] = value
        self.remove(wme)
        return self.insert(wme.relation, tuple(new_values))
