"""Working memory: the WM relations of the paper, with change notification.

Working memory is a set of relations (one per literalized class) stored in a
:class:`~repro.storage.catalog.Catalog`, so it can live in memory or in
SQLite.  Every insert/delete is announced to registered listeners — the
match strategies — which is exactly Figure 2 of the paper: "Changes to
Working Memory → propagate → Rete Network".

A *modify* is a delete followed by an insert (§3.1), so the new element gets
a fresh timetag, as in OPS5.

Two change-propagation granularities exist (§4.2.3's set-orientation):

* tuple-at-a-time — :meth:`WorkingMemory.insert` / :meth:`remove` notify
  listeners immediately, as the seed implementation always did;
* set-at-a-time — :meth:`apply_batch` applies a whole operation list to
  storage first (grouped per relation, one backend transaction) and then
  notifies each listener *once* with a :class:`~repro.delta.DeltaBatch`;
  :meth:`begin_batch`/:meth:`flush_batch`/:meth:`end_batch` buffer the
  notifications of ordinary mutations the same way (used by the act phase
  and the transaction layer, where returned tuples must be real
  immediately but maintenance may run per batch).

Listeners that implement ``on_delta(batch)`` receive the batch whole;
anything else gets the classic per-tuple callbacks in batch order.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from typing import Protocol

from repro.delta import DELETE, INSERT, Delta, DeltaBatch
from repro.errors import MatchError
from repro.instrument import Counters
from repro.obs import Observability
from repro.storage.catalog import Catalog
from repro.storage.schema import RelationSchema, Value
from repro.storage.table import Table
from repro.storage.tuples import StoredTuple


class WMListener(Protocol):
    """Anything notified of WM changes (match strategies, view maintainers).

    Implementing ``on_delta(batch: DeltaBatch)`` is optional; listeners
    that do are handed change batches whole on the set-at-a-time path.
    """

    def on_insert(self, wme: StoredTuple) -> None:
        """Called after *wme* is stored."""

    def on_delete(self, wme: StoredTuple) -> None:
        """Called after *wme* is removed."""


class WorkingMemory:
    """The WM relations plus listener fan-out."""

    def __init__(
        self,
        schemas: dict[str, RelationSchema],
        backend: str = "memory",
        counters: Counters | None = None,
        path: str | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.counters = counters or Counters()
        self.obs = obs or Observability()
        self.catalog = Catalog(
            backend=backend, counters=self.counters, path=path, obs=self.obs
        )
        self.schemas = dict(schemas)
        for schema in schemas.values():
            self.catalog.create(schema)
        self._listeners: list[WMListener] = []
        self._pending: list[Delta] | None = None

    # -- listeners ------------------------------------------------------------

    def add_listener(self, listener: WMListener) -> None:
        """Register *listener* for subsequent WM changes."""
        self._listeners.append(listener)

    def remove_listener(self, listener: WMListener) -> None:
        """Unregister *listener*."""
        self._listeners.remove(listener)

    # -- access ----------------------------------------------------------------

    def relation(self, class_name: str) -> Table:
        """Return the WM relation for *class_name*."""
        if class_name not in self.schemas:
            raise MatchError(f"unknown WM class {class_name!r}")
        return self.catalog.get(class_name)

    def schema(self, class_name: str) -> RelationSchema:
        """Return the schema of *class_name*."""
        try:
            return self.schemas[class_name]
        except KeyError:
            raise MatchError(f"unknown WM class {class_name!r}") from None

    def tuples(self, class_name: str) -> Iterator[StoredTuple]:
        """Iterate over the current elements of *class_name*."""
        return self.relation(class_name).scan()

    def get(self, class_name: str, tid: int) -> StoredTuple:
        """Fetch one element by tuple id."""
        return self.relation(class_name).get(tid)

    def size(self) -> int:
        """Total number of WM elements across all classes."""
        return sum(len(self.relation(name)) for name in self.schemas)

    # -- mutation ----------------------------------------------------------------

    def insert(
        self, class_name: str, values: tuple[Value, ...] | dict[str, Value]
    ) -> StoredTuple:
        """Insert a WM element and notify listeners; returns the element.

        Inside a batch scope the notification is buffered instead (the
        storage write still happens immediately).
        """
        table = self.relation(class_name)
        if isinstance(values, dict):
            wme = table.insert_mapping(values)
        else:
            wme = table.insert(values)
        if self._pending is not None:
            self._pending.append(Delta(INSERT, wme))
        else:
            for listener in list(self._listeners):
                listener.on_insert(wme)
        return wme

    def remove(self, wme: StoredTuple) -> StoredTuple:
        """Delete a WM element and notify listeners; returns the element."""
        removed = self.relation(wme.relation).delete(wme.tid)
        if self._pending is not None:
            self._pending.append(Delta(DELETE, removed))
        else:
            for listener in list(self._listeners):
                listener.on_delete(removed)
        return removed

    def modify(
        self, wme: StoredTuple, changes: dict[str, Value]
    ) -> StoredTuple:
        """Update fields of *wme*: delete + insert with a fresh timetag."""
        schema = self.schema(wme.relation)
        new_values = list(wme.values)
        for attribute, value in changes.items():
            new_values[schema.position(attribute)] = value
        self.remove(wme)
        return self.insert(wme.relation, tuple(new_values))

    # -- set-at-a-time mutation (the delta pipeline) ----------------------------

    @property
    def batching(self) -> bool:
        """True while a batch scope is buffering notifications."""
        return self._pending is not None

    def pending_deltas(self) -> int:
        """Number of buffered, not-yet-delivered deltas."""
        return len(self._pending) if self._pending is not None else 0

    def begin_batch(self) -> None:
        """Start buffering change notifications into a batch."""
        if self._pending is not None:
            raise MatchError("a WM batch is already open")
        self._pending = []

    def flush_batch(self) -> DeltaBatch:
        """Deliver buffered deltas as one batch; stay in batch mode."""
        if self._pending is None:
            raise MatchError("no WM batch is open")
        batch = DeltaBatch(self._pending).net()
        self._pending = []
        if batch:
            self._deliver(batch)
        return batch

    def end_batch(self) -> DeltaBatch:
        """Deliver buffered deltas and leave batch mode."""
        batch = self.flush_batch()
        self._pending = None
        return batch

    @contextmanager
    def batch(self):
        """Scope mutations as one delta batch (re-entrant: nested scopes
        join the outer batch rather than flushing early)."""
        if self._pending is not None:
            yield self
            return
        self.begin_batch()
        try:
            yield self
        finally:
            self.end_batch()

    def apply_batch(
        self, ops: list[tuple]
    ) -> DeltaBatch:
        """Apply an operation list set-at-a-time; notify listeners once.

        Each op is ``("insert", class_name, values)``,
        ``("delete", wme)`` or ``("modify", wme, changes)`` (the latter
        expands to delete + insert, §3.1).  Storage writes are grouped per
        relation (``delete_many``/``insert_many``) inside a single backend
        transaction; timetags are pre-assigned in op order so recency
        agrees with sequential application.  Deletes must reference
        elements stored before this batch.  The returned batch lists the
        realized deltas in op order.
        """
        if self._pending is not None:
            raise MatchError("apply_batch cannot run inside an open WM batch")
        expanded: list[tuple] = []
        for op in ops:
            kind = op[0]
            if kind == "insert":
                _, class_name, values = op
                schema = self.schema(class_name)
                if isinstance(values, dict):
                    values = schema.row_from_mapping(values)
                expanded.append((INSERT, class_name, tuple(values)))
            elif kind == "delete":
                expanded.append((DELETE, op[1]))
            elif kind == "modify":
                _, wme, changes = op
                schema = self.schema(wme.relation)
                new_values = list(wme.values)
                for attribute, value in changes.items():
                    new_values[schema.position(attribute)] = value
                expanded.append((DELETE, wme))
                expanded.append((INSERT, wme.relation, tuple(new_values)))
            else:
                raise MatchError(f"unknown batch op kind {kind!r}")

        clock = self.catalog.clock
        deltas: list[Delta | None] = [None] * len(expanded)
        delete_groups: dict[str, tuple[list[int], list[int]]] = {}
        insert_groups: dict[
            str, tuple[list[int], list[tuple], list[int]]
        ] = {}
        for position, op in enumerate(expanded):
            if op[0] == DELETE:
                wme = op[1]
                positions, tids = delete_groups.setdefault(
                    wme.relation, ([], [])
                )
                positions.append(position)
                tids.append(wme.tid)
            else:
                _, class_name, values = op
                positions, rows, timetags = insert_groups.setdefault(
                    class_name, ([], [], [])
                )
                positions.append(position)
                rows.append(values)
                timetags.append(clock.tick())

        with self.catalog.transaction():
            for class_name, (positions, tids) in delete_groups.items():
                removed = self.relation(class_name).delete_many(tids)
                for position, row in zip(positions, removed):
                    deltas[position] = Delta(DELETE, row)
            for class_name, (positions, rows, timetags) in (
                insert_groups.items()
            ):
                stored = self.relation(class_name).insert_many(rows, timetags)
                for position, row in zip(positions, stored):
                    deltas[position] = Delta(INSERT, row)

        batch = DeltaBatch(d for d in deltas if d is not None)
        if batch:
            self._deliver(batch)
        return batch

    def _deliver(self, batch: DeltaBatch) -> None:
        """Fan one batch out to every listener, preferring ``on_delta``."""
        for listener in list(self._listeners):
            on_delta = getattr(listener, "on_delta", None)
            if on_delta is not None:
                on_delta(batch)
                continue
            for delta in batch:
                if delta.op == INSERT:
                    listener.on_insert(delta.wme)
                else:
                    listener.on_delete(delta.wme)
