"""Production-system engine: WM, conflict set, resolution, actions, cycle."""

from repro.engine.actions import (
    ActionExecutor,
    ActionOutcome,
    Halt,
    evaluate_expression,
)
from repro.engine.conflict import ConflictSet, Instantiation, InstantiationKey
from repro.engine.interpreter import (
    BatchSizeTuner,
    FiredRule,
    ProductionSystem,
    RunResult,
    TraceEvent,
)
from repro.engine.resolution import (
    SeededRandom,
    fifo,
    lex,
    make_resolver,
    mea,
    priority,
)
from repro.engine.wm import WMListener, WorkingMemory

__all__ = [
    "ActionExecutor",
    "ActionOutcome",
    "BatchSizeTuner",
    "ConflictSet",
    "FiredRule",
    "Halt",
    "Instantiation",
    "InstantiationKey",
    "ProductionSystem",
    "RunResult",
    "TraceEvent",
    "SeededRandom",
    "WMListener",
    "WorkingMemory",
    "evaluate_expression",
    "fifo",
    "lex",
    "make_resolver",
    "mea",
    "priority",
]
