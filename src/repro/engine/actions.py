"""RHS action execution (the Act step of §2.1 / §5).

"The actions on the RHS of the production represent changes to the WM
classes and include insertions, deletions and updates of WM elements."
Executing an action mutates working memory, which re-enters the match
machinery through the WM listener fan-out — Figure 2's cycle.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.engine.conflict import Instantiation
from repro.engine.wm import WorkingMemory
from repro.errors import ExecutionError
from repro.lang.ast import (
    Action,
    BindAction,
    CallAction,
    ComputeExpr,
    ConstExpr,
    Expression,
    HaltAction,
    MakeAction,
    ModifyAction,
    RemoveAction,
    VarExpr,
    WriteAction,
)
from repro.lang.analysis import RuleAnalysis
from repro.storage.schema import Value
from repro.storage.tuples import StoredTuple

#: A host function callable from ``(call fn ...)`` actions.
HostFunction = Callable[..., None]


class Halt(Exception):
    """Raised internally when a ``(halt)`` action executes."""


def evaluate_expression(
    expression: Expression, bindings: dict[str, Value]
) -> Value:
    """Evaluate an RHS expression under the instantiation's bindings."""
    if isinstance(expression, ConstExpr):
        return expression.value
    if isinstance(expression, VarExpr):
        if expression.name not in bindings:
            raise ExecutionError(
                f"RHS variable <{expression.name}> is unbound"
            )
        return bindings[expression.name]
    if isinstance(expression, ComputeExpr):
        left = evaluate_expression(expression.left, bindings)
        right = evaluate_expression(expression.right, bindings)
        return _arith(expression.op, left, right)
    raise ExecutionError(f"cannot evaluate expression {expression!r}")


def _arith(op: str, left: Value, right: Value) -> Value:
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        raise ExecutionError(
            f"(compute ...) needs numeric operands, got {left!r} {op} {right!r}"
        )
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("(compute ...) division by zero")
        quotient = left / right
        return int(quotient) if quotient == int(quotient) else quotient
    if op == "mod":
        if right == 0:
            raise ExecutionError("(compute ...) modulo by zero")
        return left % right
    raise ExecutionError(f"unknown compute operator {op!r}")


@dataclass
class ActionOutcome:
    """What one rule firing did to working memory."""

    inserted: list[StoredTuple] = field(default_factory=list)
    removed: list[StoredTuple] = field(default_factory=list)
    written: list[tuple[Value, ...]] = field(default_factory=list)
    halted: bool = False


class ActionExecutor:
    """Executes the RHS of fired instantiations against a WorkingMemory."""

    def __init__(
        self,
        wm: WorkingMemory,
        host_functions: dict[str, HostFunction] | None = None,
    ) -> None:
        self.wm = wm
        self.host_functions = dict(host_functions or {})

    def register(self, name: str, function: HostFunction) -> None:
        """Expose a host function to ``(call name ...)`` actions."""
        self.host_functions[name] = function

    def execute(
        self, analysis: RuleAnalysis, instantiation: Instantiation
    ) -> ActionOutcome:
        """Run every action of the rule for *instantiation*."""
        outcome = ActionOutcome()
        bindings = dict(instantiation.binding_map())
        # Track the current identity of each matched element: a modify
        # replaces the element, and later actions on the same condition
        # number must see the replacement.
        current: list[StoredTuple | None] = list(instantiation.wmes)
        actions = analysis.rule.actions
        try:
            index = 0
            while index < len(actions):
                action = actions[index]
                run = self._make_run(actions, index)
                if len(run) > 1:
                    self._execute_makes(run, bindings, outcome)
                    index += len(run)
                    continue
                self._execute_one(action, bindings, current, outcome)
                index += 1
        except Halt:
            outcome.halted = True
        return outcome

    def _make_run(self, actions, index: int) -> list[MakeAction]:
        """The maximal run of same-class ``(make ...)`` actions at *index*.

        Only worth batching while the WM is buffering a delta batch (the
        engine's act phase); safe because makes neither read ``current``
        nor rebind variables, so evaluation order within the run is
        indistinguishable from sequential execution.
        """
        first = actions[index]
        if not isinstance(first, MakeAction) or not self.wm.batching:
            return [first]
        run = [first]
        for action in actions[index + 1:]:
            if (
                not isinstance(action, MakeAction)
                or action.class_name != first.class_name
            ):
                break
            run.append(action)
        return run

    def _execute_makes(
        self,
        run: list[MakeAction],
        bindings: dict[str, Value],
        outcome: ActionOutcome,
    ) -> None:
        """One ``insert_many`` for a run of same-class makes."""
        schema = self.wm.schema(run[0].class_name)
        rows = [
            schema.row_from_mapping(
                {
                    attribute: evaluate_expression(expression, bindings)
                    for attribute, expression in action.assignments
                }
            )
            for action in run
        ]
        outcome.inserted.extend(self.wm.insert_many(run[0].class_name, rows))

    def _execute_one(
        self,
        action: Action,
        bindings: dict[str, Value],
        current: list[StoredTuple | None],
        outcome: ActionOutcome,
    ) -> None:
        if isinstance(action, MakeAction):
            schema = self.wm.schema(action.class_name)
            values = {
                attribute: evaluate_expression(expression, bindings)
                for attribute, expression in action.assignments
            }
            row = self.wm.insert(action.class_name, schema.row_from_mapping(values))
            outcome.inserted.append(row)
        elif isinstance(action, RemoveAction):
            target = self._resolve(action.ce_index, current)
            if target is None:
                return  # already removed by an earlier action of this firing
            self.wm.remove(target)
            outcome.removed.append(target)
            current[action.ce_index - 1] = None
        elif isinstance(action, ModifyAction):
            target = self._resolve(action.ce_index, current)
            if target is None:
                raise ExecutionError(
                    f"(modify {action.ce_index}) after the element was removed"
                )
            changes = {
                attribute: evaluate_expression(expression, bindings)
                for attribute, expression in action.assignments
            }
            replacement = self.wm.modify(target, changes)
            outcome.removed.append(target)
            outcome.inserted.append(replacement)
            current[action.ce_index - 1] = replacement
        elif isinstance(action, HaltAction):
            raise Halt()
        elif isinstance(action, WriteAction):
            outcome.written.append(
                tuple(
                    evaluate_expression(expression, bindings)
                    for expression in action.expressions
                )
            )
        elif isinstance(action, BindAction):
            bindings[action.variable] = evaluate_expression(
                action.expression, bindings
            )
        elif isinstance(action, CallAction):
            function = self.host_functions.get(action.function)
            if function is None:
                raise ExecutionError(
                    f"(call {action.function}) has no registered host function"
                )
            function(
                *(
                    evaluate_expression(expression, bindings)
                    for expression in action.expressions
                )
            )
        else:
            raise ExecutionError(f"unknown action {action!r}")

    def _resolve(
        self, ce_index: int, current: list[StoredTuple | None]
    ) -> StoredTuple | None:
        if not 1 <= ce_index <= len(current):
            raise ExecutionError(f"action references condition {ce_index}")
        target = current[ce_index - 1]
        if target is None:
            return None
        # The element may have been removed by another rule between match
        # and act; treat that as already-gone.
        try:
            return self.wm.get(target.relation, target.tid)
        except Exception:
            return None
