"""Conflict-resolution strategies (the Select step of §2.1).

"One may use user-defined priorities or, in general, order rules according
to some static or dynamic criteria and then fire the rules in that order."
OPS5's own LEX and MEA strategies order by recency of the matched elements;
``priority`` uses rule salience; ``fifo`` fires oldest matches first; and
``random`` (seeded) models the paper's "arbitrarily selected" transaction
of §5.2.

All strategies apply *refraction*: an instantiation that has fired does not
fire again (tracked by the engine, not here).

Every resolver here induces a **total** order: the primary criterion is
followed by the instantiation's canonical key, so candidates that tie on
recency/salience resolve identically no matter how the conflict set happens
to enumerate them.  Match strategies build the conflict set in different
orders, so without this tie-break the *fired sequence* (not the conflict
set) could differ between strategies — the differential-fuzz oracle in
``repro.check`` depends on it not doing so.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence

from repro.engine.conflict import Instantiation
from repro.errors import ExecutionError

Resolver = Callable[[Sequence[Instantiation]], Instantiation]


def canonical_key(instantiation: Instantiation) -> tuple:
    """A strategy-independent total order over instantiations.

    Based on the identity key (rule name + per-CE (relation, tid) slots)
    with ``None`` slots (negated condition elements) mapped to a sortable
    sentinel — the raw key is not comparable across instantiations because
    ``None`` and tuples do not order.
    """
    rule_name, slots = instantiation.key
    return (
        rule_name,
        tuple(
            (0, "", -1) if slot is None else (1, slot[0], slot[1])
            for slot in slots
        ),
    )


def _recency_key(instantiation: Instantiation) -> tuple:
    """LEX ordering key: timetags descending, then specificity.

    The canonical key rides along as the final component, making the
    order total (see the module docstring).
    """
    specificity = sum(
        1 for wme in instantiation.wmes if wme is not None
    )
    return (instantiation.timetags, specificity, canonical_key(instantiation))


def lex(candidates: Sequence[Instantiation]) -> Instantiation:
    """OPS5 LEX: most recent matched elements win."""
    return max(candidates, key=_recency_key)


def mea(candidates: Sequence[Instantiation]) -> Instantiation:
    """OPS5 MEA: recency of the *first* condition element dominates."""

    def key(instantiation: Instantiation) -> tuple:
        first = instantiation.wmes[0]
        first_tag = first.timetag if first is not None else 0
        return (first_tag, *_recency_key(instantiation))

    return max(candidates, key=key)


def priority(candidates: Sequence[Instantiation]) -> Instantiation:
    """Highest salience wins; LEX breaks ties."""
    return max(candidates, key=lambda i: (i.salience, *_recency_key(i)))


def fifo(candidates: Sequence[Instantiation]) -> Instantiation:
    """Oldest instantiation (smallest newest-timetag) fires first."""
    return min(candidates, key=_recency_key)


class SeededRandom:
    """The arbitrary selection of §5.2, reproducible via a seed."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def __call__(self, candidates: Sequence[Instantiation]) -> Instantiation:
        ordered = sorted(candidates, key=canonical_key)
        return ordered[self._rng.randrange(len(ordered))]

    def getstate(self) -> tuple:
        """The underlying RNG state (for WAL boundary records)."""
        return self._rng.getstate()

    def setstate(self, state) -> None:
        """Restore a state captured by :meth:`getstate`.

        Accepts the JSON round-tripped form (lists instead of tuples), so
        crash recovery can feed it straight from a log record.
        """
        version, internal, gauss_next = state
        self._rng.setstate((version, tuple(internal), gauss_next))


def make_resolver(name: str, seed: int = 0) -> Resolver:
    """Build a resolver by name: lex, mea, priority, fifo, random."""
    if name == "lex":
        return lex
    if name == "mea":
        return mea
    if name == "priority":
        return priority
    if name == "fifo":
        return fifo
    if name == "random":
        return SeededRandom(seed)
    raise ExecutionError(
        f"unknown conflict-resolution strategy {name!r}; "
        "choose from lex, mea, priority, fifo, random"
    )
