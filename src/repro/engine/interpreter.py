"""The recognize-act interpreter: Match → Select → Act (§2.1, Figure 2).

:class:`ProductionSystem` is the library's main façade: it owns working
memory, a pluggable match strategy, a conflict-resolution strategy with
refraction, and the action executor, and it runs the OPS5 cycle:

    Match   — incremental, maintained by the strategy on every WM change;
    Select  — pick one unfired instantiation from the conflict set, halt
              when none remains;
    Act     — execute the RHS, whose WM changes re-enter Match.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.actions import ActionExecutor, ActionOutcome, HostFunction
from repro.engine.conflict import ConflictSet, Instantiation, InstantiationKey
from repro.engine.resolution import Resolver, make_resolver
from repro.engine.wm import WorkingMemory
from repro.errors import ExecutionError
from repro.instrument import Counters
from repro.lang.analysis import RuleAnalysis, analyze_program
from repro.lang.ast import Program, Rule
from repro.lang.parser import parse_program
from repro.match import STRATEGIES, MatchStrategy
from repro.storage.schema import RelationSchema, Value
from repro.storage.tuples import StoredTuple


@dataclass
class FiredRule:
    """Trace record of one Act step."""

    cycle: int
    instantiation: Instantiation
    outcome: ActionOutcome


@dataclass(frozen=True)
class TraceEvent:
    """One event from the engine's OPS5-``watch``-style trace stream.

    ``kind`` is ``"insert"``, ``"remove"``, ``"fire"`` or ``"halt"``;
    ``detail`` carries the WM element or :class:`FiredRule`.
    """

    kind: str
    cycle: int
    detail: object

    def __str__(self) -> str:
        if self.kind == "insert":
            return f"=>WM: {self.detail}"
        if self.kind == "remove":
            return f"<=WM: {self.detail}"
        if self.kind == "fire":
            assert isinstance(self.detail, FiredRule)
            return f"FIRE {self.cycle}: {self.detail.instantiation}"
        return "HALT"


class _WmTracer:
    """Forwards WM changes into the engine's trace stream."""

    def __init__(self, system: "ProductionSystem") -> None:
        self._system = system

    def on_insert(self, wme: StoredTuple) -> None:
        self._system._emit("insert", wme)

    def on_delete(self, wme: StoredTuple) -> None:
        self._system._emit("remove", wme)


@dataclass
class RunResult:
    """Summary of a :meth:`ProductionSystem.run` call."""

    cycles: int
    halted: bool
    exhausted: bool
    fired: list[FiredRule] = field(default_factory=list)

    @property
    def fired_rule_names(self) -> list[str]:
        return [f.instantiation.rule_name for f in self.fired]


class ProductionSystem:
    """An OPS5-style production system over a relational working memory.

    ``firing`` selects the Act granularity:

    * ``"instance"`` (OPS5, default) — one instantiation per cycle;
    * ``"set"`` — §5.1's DBMS style: "Traditionally, DBMS support
      set-at-a-time processing ... A selected production will execute
      simultaneously against all combinations of these sets of tuples."
      Each cycle selects a rule (via the resolver) and fires *every*
      eligible instantiation of it, skipping those invalidated by earlier
      firings of the same batch.
    """

    def __init__(
        self,
        source: str | Program | None = None,
        rules: list[Rule] | None = None,
        schemas: dict[str, RelationSchema] | None = None,
        strategy: str | type[MatchStrategy] = "patterns",
        resolution: str | Resolver = "lex",
        backend: str = "memory",
        seed: int = 0,
        counters: Counters | None = None,
        firing: str = "instance",
        path: str | None = None,
    ) -> None:
        if firing not in ("instance", "set"):
            raise ExecutionError(
                f"unknown firing mode {firing!r}; use 'instance' or 'set'"
            )
        self.firing = firing
        program = self._resolve_program(source, rules, schemas)
        self.program = program
        self.analyses: dict[str, RuleAnalysis] = analyze_program(
            program.rules, program.schemas
        )
        self.counters = counters or Counters()
        self.wm = WorkingMemory(
            program.schemas,
            backend=backend,
            counters=self.counters,
            path=path,
        )
        strategy_cls = (
            STRATEGIES[strategy] if isinstance(strategy, str) else strategy
        )
        self.strategy: MatchStrategy = strategy_cls(
            self.wm, self.analyses, counters=self.counters
        )
        self.resolver: Resolver = (
            make_resolver(resolution, seed)
            if isinstance(resolution, str)
            else resolution
        )
        self.executor = ActionExecutor(self.wm)
        self.output: list[tuple[Value, ...]] = []
        self._fired_keys: set[InstantiationKey] = set()
        self._tracers: list = []
        self._current_cycle = 0
        self._wm_tracer: _WmTracer | None = None
        for class_name, values in program.initial_elements:
            self.insert(class_name, values)

    @staticmethod
    def _resolve_program(
        source: str | Program | None,
        rules: list[Rule] | None,
        schemas: dict[str, RelationSchema] | None,
    ) -> Program:
        if isinstance(source, str):
            return parse_program(source)
        if isinstance(source, Program):
            return source
        if rules is not None and schemas is not None:
            return Program(schemas=dict(schemas), rules=list(rules))
        raise ExecutionError(
            "ProductionSystem needs OPS5 source text, a Program, or "
            "rules + schemas"
        )

    # -- working-memory access ------------------------------------------------

    @property
    def conflict_set(self) -> ConflictSet:
        return self.strategy.conflict_set

    def insert(
        self, class_name: str, values: tuple[Value, ...] | dict[str, Value]
    ) -> StoredTuple:
        """Insert a WM element (user-level ``make``)."""
        if isinstance(values, dict):
            schema = self.wm.schema(class_name)
            values = schema.row_from_mapping(values)
        return self.wm.insert(class_name, values)

    def remove(self, wme: StoredTuple) -> StoredTuple:
        """Remove a WM element (user-level ``remove``)."""
        return self.wm.remove(wme)

    def modify(self, wme: StoredTuple, changes: dict[str, Value]) -> StoredTuple:
        """Modify a WM element (delete + insert, §3.1)."""
        return self.wm.modify(wme, changes)

    def register_function(self, name: str, function: HostFunction) -> None:
        """Expose a host function to ``(call ...)`` actions."""
        self.executor.register(name, function)

    def explain(self, rule_name: str):
        """Diagnose why *rule_name* is (not) satisfied; see
        :meth:`repro.match.base.MatchStrategy.explain`."""
        return self.strategy.explain(rule_name)

    # -- the recognize-act cycle ---------------------------------------------------

    def eligible(self) -> list[Instantiation]:
        """Conflict-set entries that refraction has not yet consumed."""
        return [
            instantiation
            for instantiation in self.conflict_set
            if instantiation.key not in self._fired_keys
        ]

    # -- tracing (OPS5 "watch") -------------------------------------------------

    def add_trace(self, callback) -> None:
        """Register a callback receiving :class:`TraceEvent` objects.

        The first registration also hooks WM changes, so inserts/removes
        (including those performed by RHS actions) appear in the stream.
        """
        if self._wm_tracer is None:
            self._wm_tracer = _WmTracer(self)
            self.wm.add_listener(self._wm_tracer)
        self._tracers.append(callback)

    def remove_trace(self, callback) -> None:
        """Unregister a trace callback."""
        self._tracers.remove(callback)

    def _emit(self, kind: str, detail: object) -> None:
        if not self._tracers:
            return
        event = TraceEvent(kind=kind, cycle=self._current_cycle, detail=detail)
        for callback in list(self._tracers):
            callback(event)

    def mark_fired(self, instantiation: Instantiation) -> None:
        """Record *instantiation* as fired (refraction), e.g. by an
        external transaction scheduler."""
        self._fired_keys.add(instantiation.key)

    def step(self, cycle: int = 0) -> FiredRule | None:
        """One Select + Act step; returns None when nothing is eligible.

        In ``"set"`` firing mode this fires the whole batch for the
        selected rule and returns the *first* firing's record (all are
        appended to run traces by :meth:`run`).
        """
        records = self.step_records(cycle)
        return records[0] if records else None

    def step_records(self, cycle: int = 0) -> list[FiredRule]:
        """One Select + Act step, returning every firing it performed."""
        candidates = self.eligible()
        if not candidates:
            return []
        chosen = self.resolver(candidates)
        if self.firing == "set":
            batch = [
                inst
                for inst in candidates
                if inst.rule_name == chosen.rule_name
            ]
        else:
            batch = [chosen]
        records: list[FiredRule] = []
        self._current_cycle = cycle
        analysis = self.analyses[chosen.rule_name]
        for instantiation in batch:
            self._fired_keys.add(instantiation.key)
            if instantiation is not chosen and instantiation not in self.conflict_set:
                continue  # invalidated by an earlier firing of this batch
            outcome = self.executor.execute(analysis, instantiation)
            self.output.extend(outcome.written)
            record = FiredRule(
                cycle=cycle, instantiation=instantiation, outcome=outcome
            )
            records.append(record)
            self._emit("fire", record)
            if outcome.halted:
                self._emit("halt", record)
                break
        return records

    def run(self, max_cycles: int = 10_000) -> RunResult:
        """Run the cycle until halt, exhaustion, or *max_cycles*."""
        fired: list[FiredRule] = []
        for cycle in range(1, max_cycles + 1):
            records = self.step_records(cycle)
            if not records:
                return RunResult(
                    cycles=cycle - 1, halted=False, exhausted=False, fired=fired
                )
            fired.extend(records)
            if any(record.outcome.halted for record in records):
                return RunResult(
                    cycles=cycle, halted=True, exhausted=False, fired=fired
                )
        return RunResult(
            cycles=max_cycles, halted=False, exhausted=True, fired=fired
        )
