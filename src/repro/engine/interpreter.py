"""The recognize-act interpreter: Match → Select → Act (§2.1, Figure 2).

:class:`ProductionSystem` is the library's main façade: it owns working
memory, a pluggable match strategy, a conflict-resolution strategy with
refraction, and the action executor, and it runs the OPS5 cycle:

    Match   — incremental, maintained by the strategy on every WM change;
    Select  — pick one unfired instantiation from the conflict set, halt
              when none remains;
    Act     — execute the RHS, whose WM changes re-enter Match.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.delta import INSERT, DeltaBatch
from repro.engine.actions import ActionExecutor, ActionOutcome, HostFunction
from repro.engine.conflict import ConflictSet, Instantiation, InstantiationKey
from repro.engine.resolution import Resolver, make_resolver
from repro.engine.wm import WorkingMemory
from repro.errors import ExecutionError, StorageError
from repro.instrument import Counters
from repro.lang.analysis import RuleAnalysis, analyze_program
from repro.lang.ast import Program, Rule
from repro.lang.parser import parse_program
from repro.match import STRATEGIES, MatchStrategy
from repro.obs import Observability
from repro.obs.metrics import SIZE_BUCKETS
from repro.storage.schema import RelationSchema, Value
from repro.storage.tuples import StoredTuple


@dataclass
class FiredRule:
    """Trace record of one Act step."""

    cycle: int
    instantiation: Instantiation
    outcome: ActionOutcome


@dataclass(frozen=True)
class TraceEvent:
    """One event from the engine's OPS5-``watch``-style trace stream.

    ``kind`` is ``"insert"``, ``"remove"``, ``"fire"`` or ``"halt"``;
    ``detail`` carries the WM element or :class:`FiredRule`.
    """

    kind: str
    cycle: int
    detail: object

    def __str__(self) -> str:
        if self.kind == "insert":
            return f"=>WM: {self.detail}"
        if self.kind == "remove":
            return f"<=WM: {self.detail}"
        if self.kind == "fire":
            assert isinstance(self.detail, FiredRule)
            return f"FIRE {self.cycle}: {self.detail.instantiation}"
        if self.kind == "halt":
            if isinstance(self.detail, FiredRule):
                return (
                    f"HALT {self.cycle}: "
                    f"{self.detail.instantiation.rule_name}"
                )
            return f"HALT {self.cycle}"
        return f"{self.kind.upper()} {self.cycle}: {self.detail}"


class TraceEventSink:
    """One registered OPS5-``watch`` callback, as an observability sink.

    The classic :class:`TraceEvent` stream is a view over the engine's
    event bus: each ``add_trace`` callback becomes one of these sinks,
    which converts bus events of the four public kinds back into
    :class:`TraceEvent` objects.  Spans and other event kinds flowing
    through the same bus are ignored here.
    """

    KINDS = frozenset(("insert", "remove", "fire", "halt"))

    def __init__(self, callback) -> None:
        self.callback = callback

    def emit(self, record: dict) -> None:
        if record.get("type") != "event" or record.get("kind") not in self.KINDS:
            return
        self.callback(
            TraceEvent(
                kind=record["kind"],
                cycle=record.get("cycle", 0),
                detail=record.get("detail"),
            )
        )


class _WmTracer:
    """Forwards WM changes into the engine's trace stream."""

    def __init__(self, system: "ProductionSystem") -> None:
        self._system = system

    def on_insert(self, wme: StoredTuple) -> None:
        self._system._emit("insert", wme)

    def on_delete(self, wme: StoredTuple) -> None:
        self._system._emit("remove", wme)

    def on_delta(self, batch: DeltaBatch) -> None:
        """Unfold a delta batch into the classic per-element trace events."""
        for delta in batch:
            self._system._emit(
                "insert" if delta.op == INSERT else "remove", delta.wme
            )


class BatchSizeTuner:
    """Auto-tunes the act-phase batch size from delivered delta batches.

    The signal is the same one the ``match.batch_group_max`` histogram
    records: how wide the largest per-relation group of each batch is.
    A full batch whose largest group covers most of it means set-at-a-time
    maintenance is amortizing well — double the budget (up to ``ceiling``).
    A batch fragmented across many relations (largest group ≤ a quarter of
    the batch) means grouping is not biting — halve toward ``floor``.
    """

    def __init__(
        self, initial: int = 8, floor: int = 2, ceiling: int = 256
    ) -> None:
        self.size = initial
        self.floor = floor
        self.ceiling = ceiling

    def observe(self, batch: DeltaBatch) -> int:
        """Feed one delivered batch; returns the (possibly new) size."""
        observed = len(batch)
        if observed:
            group_max = max(len(g) for g in batch.by_relation().values())
            if observed >= self.size and group_max * 2 >= observed:
                self.size = min(self.size * 2, self.ceiling)
            elif group_max * 4 <= observed:
                self.size = max(self.size // 2, self.floor)
        return self.size


@dataclass
class RunResult:
    """Summary of a :meth:`ProductionSystem.run` call."""

    cycles: int
    halted: bool
    exhausted: bool
    fired: list[FiredRule] = field(default_factory=list)

    @property
    def fired_rule_names(self) -> list[str]:
        return [f.instantiation.rule_name for f in self.fired]


class ProductionSystem:
    """An OPS5-style production system over a relational working memory.

    ``firing`` selects the Act granularity:

    * ``"instance"`` (OPS5, default) — one instantiation per cycle;
    * ``"set"`` — §5.1's DBMS style: "Traditionally, DBMS support
      set-at-a-time processing ... A selected production will execute
      simultaneously against all combinations of these sets of tuples."
      Each cycle selects a rule (via the resolver) and fires *every*
      eligible instantiation of it, skipping those invalidated by earlier
      firings of the same batch.

    ``batch_size`` selects the Act→Match granularity (§4.2.3's
    set-orientation).  With the default 1, every ``make``/``remove``/
    ``modify`` propagates to the match network immediately — the classic
    tuple-at-a-time behaviour, bit-for-bit.  With N > 1 the act phase
    buffers WM change notifications and delivers them to the strategies
    as :class:`~repro.delta.DeltaBatch` objects of up to N deltas
    (flushing at cycle end regardless), so maintenance runs
    set-at-a-time.  Instantiations invalidated by not-yet-propagated
    deletions are suppressed by a storage liveness check; a firing blocked
    by a not-yet-propagated negated-condition witness is only suppressed
    once the batch flushes, the one (documented) semantic difference of
    batched act.

    ``batch_size="auto"`` delegates the budget to a
    :class:`BatchSizeTuner`: every delivered batch's per-relation group
    fan-out (the ``match.batch_group_max`` signal) grows or shrinks the
    next cycle's budget; the current value is published as the
    ``engine.auto_batch_size`` gauge when observability is on.

    ``workers`` sizes the match-phase worker pool (``repro.parallel``).
    The default 1 creates no pool at all — the serial reference loop —
    while N > 1 fans alpha evaluation and per-(join, batch-group)
    probes across N workers with results merged deterministically, so
    conflict sets, fired sequences and final WM are bit-identical to
    ``workers=1`` (see ``docs/PARALLELISM.md``).
    """

    def __init__(
        self,
        source: str | Program | None = None,
        rules: list[Rule] | None = None,
        schemas: dict[str, RelationSchema] | None = None,
        strategy: str | type[MatchStrategy] = "patterns",
        resolution: str | Resolver = "lex",
        backend: str = "memory",
        seed: int = 0,
        counters: Counters | None = None,
        firing: str = "instance",
        path: str | None = None,
        obs: Observability | None = None,
        batch_size: int | str = 1,
        lineage: bool = False,
        compile: str = "auto",
        workers: int = 1,
        analyses: dict[str, RuleAnalysis] | None = None,
    ) -> None:
        if firing not in ("instance", "set"):
            raise ExecutionError(
                f"unknown firing mode {firing!r}; use 'instance' or 'set'"
            )
        if compile not in ("off", "on", "auto"):
            raise ExecutionError(
                f"unknown compile mode {compile!r}; use 'on', 'off' or 'auto'"
            )
        if not isinstance(workers, int) or workers < 1:
            raise ExecutionError(
                f"workers must be a positive integer, got {workers!r}"
            )
        self._auto_tuner: BatchSizeTuner | None = None
        if batch_size == "auto":
            self._auto_tuner = BatchSizeTuner()
        elif not isinstance(batch_size, int) or batch_size < 1:
            raise ExecutionError(
                f"batch_size must be a positive integer or 'auto', "
                f"got {batch_size!r}"
            )
        self.firing = firing
        self.batch_size = batch_size
        #: Match-compilation mode (:mod:`repro.match.compile`).  ``"auto"``
        #: compiles kernels where possible and falls back per node;
        #: ``"off"`` is the interpreted reference the parity suites pin
        #: compiled runs against.
        self.compile_mode = compile
        program = self._resolve_program(source, rules, schemas)
        self.program = program
        #: Rule analyses are pure functions of the program text, so
        #: callers hosting many systems over one program (a rule pack in
        #: ``repro.serve``) may pass a shared dict and skip re-analysis.
        self.analyses: dict[str, RuleAnalysis] = (
            analyses
            if analyses is not None
            else analyze_program(program.rules, program.schemas)
        )
        self.counters = counters or Counters()
        self.obs = obs or Observability()
        self.wm = WorkingMemory(
            program.schemas,
            backend=backend,
            counters=self.counters,
            path=path,
            obs=self.obs,
        )
        #: Worker count for the parallel match phase (``repro.parallel``).
        #: 1 (the default) keeps the serial reference loop: no pool is
        #: created at all, so ``workers=1`` is literally the old code path.
        self.workers = workers
        self.pool = None
        if workers > 1:
            from repro.parallel import WorkerPool

            self.pool = WorkerPool(workers, obs=self.obs)
        strategy_cls = (
            STRATEGIES[strategy] if isinstance(strategy, str) else strategy
        )
        self.strategy: MatchStrategy = strategy_cls(
            self.wm,
            self.analyses,
            counters=self.counters,
            compile_mode=self.compile_mode,
            pool=self.pool,
        )
        self.resolver: Resolver = (
            make_resolver(resolution, seed)
            if isinstance(resolution, str)
            else resolution
        )
        self.executor = ActionExecutor(self.wm)
        self.output: list[tuple[Value, ...]] = []
        self._fired_keys: set[InstantiationKey] = set()
        self._trace_sinks: list[TraceEventSink] = []
        self._current_cycle = 0
        # Provenance capture (repro.obs.xray) is strictly opt-in: with
        # lineage=False no listener is registered and the match/act hot
        # paths see a single None check per firing.  The recorder must
        # attach before the initial elements load so setup-time
        # instantiations carry lineage too.
        self.lineage_recorder = None
        if lineage:
            from repro.obs.xray import LineageRecorder

            self.lineage_recorder = LineageRecorder(self)
        # WM changes always feed the event bus; _emit bails out in one
        # check when no sink is attached, so the idle cost is negligible.
        self._wm_tracer = _WmTracer(self)
        self.wm.add_listener(self._wm_tracer)
        for class_name, values in program.initial_elements:
            self.insert(class_name, values)

    @staticmethod
    def _resolve_program(
        source: str | Program | None,
        rules: list[Rule] | None,
        schemas: dict[str, RelationSchema] | None,
    ) -> Program:
        if isinstance(source, str):
            return parse_program(source)
        if isinstance(source, Program):
            return source
        if rules is not None and schemas is not None:
            return Program(schemas=dict(schemas), rules=list(rules))
        raise ExecutionError(
            "ProductionSystem needs OPS5 source text, a Program, or "
            "rules + schemas"
        )

    # -- working-memory access ------------------------------------------------

    @property
    def conflict_set(self) -> ConflictSet:
        return self.strategy.conflict_set

    def insert(
        self, class_name: str, values: tuple[Value, ...] | dict[str, Value]
    ) -> StoredTuple:
        """Insert a WM element (user-level ``make``)."""
        if isinstance(values, dict):
            schema = self.wm.schema(class_name)
            values = schema.row_from_mapping(values)
        return self.wm.insert(class_name, values)

    def remove(self, wme: StoredTuple) -> StoredTuple:
        """Remove a WM element (user-level ``remove``)."""
        return self.wm.remove(wme)

    def modify(self, wme: StoredTuple, changes: dict[str, Value]) -> StoredTuple:
        """Modify a WM element (delete + insert, §3.1)."""
        return self.wm.modify(wme, changes)

    def register_function(self, name: str, function: HostFunction) -> None:
        """Expose a host function to ``(call ...)`` actions."""
        self.executor.register(name, function)

    def explain(self, rule_name: str):
        """Diagnose why *rule_name* is (not) satisfied; see
        :meth:`repro.match.base.MatchStrategy.explain`."""
        return self.strategy.explain(rule_name)

    # -- the recognize-act cycle ---------------------------------------------------

    def eligible(self) -> list[Instantiation]:
        """Conflict-set entries that refraction has not yet consumed."""
        return [
            instantiation
            for instantiation in self.conflict_set
            if instantiation.key not in self._fired_keys
        ]

    # -- tracing (OPS5 "watch") -------------------------------------------------

    @property
    def _tracers(self) -> list:
        """The registered trace callbacks (compatibility view)."""
        return [sink.callback for sink in self._trace_sinks]

    def add_trace(self, callback) -> None:
        """Register a callback receiving :class:`TraceEvent` objects.

        The callback is attached to the observability event bus as a
        :class:`TraceEventSink`, so WM inserts/removes (including those
        performed by RHS actions), firings and halts appear in the stream
        exactly as under the pre-obs API.
        """
        sink = TraceEventSink(callback)
        self._trace_sinks.append(sink)
        self.obs.add_sink(sink)

    def remove_trace(self, callback) -> None:
        """Unregister a trace callback."""
        for sink in self._trace_sinks:
            if sink.callback == callback:
                self._trace_sinks.remove(sink)
                self.obs.remove_sink(sink)
                return
        raise ValueError(f"{callback!r} is not a registered trace callback")

    def _emit(self, kind: str, detail: object) -> None:
        obs = self.obs
        if not obs.sinks:
            return
        obs.event(kind, cycle=self._current_cycle, detail=detail)

    @property
    def effective_batch_size(self) -> int:
        """The act-phase batch budget for the next cycle.

        The configured value when fixed; the tuner's current size under
        ``batch_size="auto"``.
        """
        if self._auto_tuner is not None:
            return self._auto_tuner.size
        assert isinstance(self.batch_size, int)
        return self.batch_size

    @property
    def auto_batch_size(self) -> int | None:
        """The tuner's current size under ``batch_size="auto"``, else None.

        Recorded in WAL boundary records so a recovered run resumes with
        the budget the crashed run had tuned its way to.
        """
        return self._auto_tuner.size if self._auto_tuner is not None else None

    def restore_run_state(
        self,
        fired_keys,
        output,
        auto_batch_size: int | None = None,
    ) -> None:
        """Reinstate run state captured in WAL boundary records.

        *fired_keys* refill the refraction set, *output* rows (JSON lists
        or tuples) re-extend the program output, and *auto_batch_size*
        restores the tuner when ``batch_size="auto"``.
        """
        self._fired_keys.update(fired_keys)
        self.output.extend(tuple(row) for row in output)
        if auto_batch_size is not None and self._auto_tuner is not None:
            self._auto_tuner.size = auto_batch_size

    def _observe_flush(self, batch: DeltaBatch) -> int | None:
        """Feed one flushed batch to the auto-tuner; returns the new size
        (``None`` when the batch size is fixed)."""
        if self._auto_tuner is None:
            return None
        size = self._auto_tuner.observe(batch)
        if self.obs.enabled:
            self.obs.metrics.gauge("engine.auto_batch_size").set(size)
        return size

    def _instantiation_live(self, instantiation: Instantiation) -> bool:
        """True while every matched element still exists in storage.

        The batched act path uses this instead of the (lagging) conflict
        set to skip instantiations whose support was removed by an earlier
        firing whose deltas have not been propagated yet.
        """
        for wme in instantiation.positive_wmes():
            try:
                self.wm.get(wme.relation, wme.tid)
            except StorageError:
                return False
        return True

    def mark_fired(self, instantiation: Instantiation) -> None:
        """Record *instantiation* as fired (refraction), e.g. by an
        external transaction scheduler."""
        self._fired_keys.add(instantiation.key)

    def step(self, cycle: int = 0) -> FiredRule | None:
        """One Select + Act step; returns None when nothing is eligible.

        In ``"set"`` firing mode this fires the whole batch for the
        selected rule and returns the *first* firing's record (all are
        appended to run traces by :meth:`run`).
        """
        records = self.step_records(cycle)
        return records[0] if records else None

    def step_records(self, cycle: int = 0) -> list[FiredRule]:
        """One Select + Act step, returning every firing it performed."""
        obs = self.obs
        observing = obs.enabled
        started = time.perf_counter() if observing else 0.0
        with obs.span("select", cycle=cycle) as span:
            candidates = self.eligible()
            if not candidates:
                span.set("rule", "(none)")
                return []
            chosen = self.resolver(candidates)
            span.set("rule", chosen.rule_name)
            span.set("conflict_set", len(candidates))
        if self.firing == "set":
            batch = [
                inst
                for inst in candidates
                if inst.rule_name == chosen.rule_name
            ]
        else:
            batch = [chosen]
        records: list[FiredRule] = []
        self._current_cycle = cycle
        analysis = self.analyses[chosen.rule_name]
        tracing = obs.tracer.enabled
        batch_size = self.effective_batch_size
        batching = batch_size > 1
        with obs.span("act", cycle=cycle, rule=chosen.rule_name) as act_span:
            if tracing:
                obs.tracer.set_context(rule=chosen.rule_name)
            if batching:
                self.wm.begin_batch()
            try:
                for instantiation in batch:
                    self._fired_keys.add(instantiation.key)
                    if instantiation is not chosen:
                        # Invalidated by an earlier firing of this batch?
                        # With deferred match maintenance the conflict set
                        # lags, so also require the matched elements to
                        # still exist in storage.
                        if instantiation not in self.conflict_set:
                            continue
                        if batching and not self._instantiation_live(
                            instantiation
                        ):
                            continue
                    outcome = self.executor.execute(analysis, instantiation)
                    self.output.extend(outcome.written)
                    record = FiredRule(
                        cycle=cycle, instantiation=instantiation, outcome=outcome
                    )
                    records.append(record)
                    self._emit("fire", record)
                    if self.lineage_recorder is not None:
                        self.lineage_recorder.note_fired(
                            instantiation.key, cycle
                        )
                    if outcome.halted:
                        self._emit("halt", record)
                        break
                    if (
                        batching
                        and self.wm.pending_deltas() >= batch_size
                    ):
                        tuned = self._observe_flush(self.wm.flush_batch())
                        if tuned is not None:
                            batch_size = tuned
            finally:
                if batching:
                    self._observe_flush(self.wm.end_batch())
                if tracing:
                    obs.tracer.clear_context("rule")
            act_span.set("fires", len(records))
        if observing:
            dur_us = (time.perf_counter() - started) * 1e6
            metrics = obs.metrics
            metrics.counter("engine.cycles").inc()
            metrics.counter("engine.fires").inc(len(records))
            metrics.histogram("engine.conflict_set_size", SIZE_BUCKETS).observe(
                len(candidates)
            )
            metrics.log2_histogram("engine.cycle_us").observe(dur_us)
            if obs.sinks:
                # One structured event per cycle: the stream `repro top`
                # tails.  TraceEventSink filters it out of the classic
                # OPS5-watch view.
                wal = self.wm.wal
                obs.event(
                    "cycle",
                    cycle=cycle,
                    dur_us=dur_us,
                    rule=chosen.rule_name,
                    conflict_set=len(candidates),
                    fires=len(records),
                    wal_seq=getattr(wal, "last_seq", None),
                    wal_pending=getattr(wal, "pending_records", None),
                )
        return records

    def snapshot_metrics(self) -> dict:
        """Fold final state into the metrics registry; return the snapshot.

        Absorbs the analytic operation counters (``ops.*`` gauges) and
        records the closing gauges the paper reasons about: WM size,
        conflict-set size and the strategy's auxiliary-storage footprint
        (pattern-table cardinality, stored tokens, estimated cells).
        """
        metrics = self.obs.metrics
        metrics.absorb_counters(self.counters)
        metrics.gauge("engine.wm_size").set(self.wm.size())
        metrics.gauge("engine.conflict_set").set(len(self.conflict_set))
        space = self.strategy.space_report()
        metrics.gauge("match.stored_patterns").set(space.stored_patterns)
        metrics.gauge("match.stored_tokens").set(space.stored_tokens)
        metrics.gauge("match.marker_entries").set(space.marker_entries)
        metrics.gauge("match.aux_cells").set(space.estimated_cells)
        if self.pool is not None:
            stats = self.pool.stats
            metrics.gauge("parallel.workers").set(stats.workers)
            metrics.gauge("parallel.fanned_items").set(stats.items)
            metrics.gauge("parallel.critical_path_items").set(
                stats.critical_path_items
            )
        return metrics.snapshot()

    def run(self, max_cycles: int = 10_000) -> RunResult:
        """Run the cycle until halt, exhaustion, or *max_cycles*."""
        fired: list[FiredRule] = []
        for cycle in range(1, max_cycles + 1):
            records = self.step_records(cycle)
            if not records:
                return RunResult(
                    cycles=cycle - 1, halted=False, exhausted=False, fired=fired
                )
            fired.extend(records)
            if any(record.outcome.halted for record in records):
                return RunResult(
                    cycles=cycle, halted=True, exhausted=False, fired=fired
                )
        return RunResult(
            cycles=max_cycles, halted=False, exhausted=True, fired=fired
        )
