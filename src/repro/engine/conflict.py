"""Instantiations and the conflict set.

An :class:`Instantiation` is one satisfied production together with the WM
elements satisfying it — what the paper calls "the qualifying rule ... with
the token that caused the rule to become active" (§3.1).  Negated condition
elements contribute no element, so their slot is ``None``.

The :class:`ConflictSet` indexes instantiations by the WM elements they
reference, so deleting an element efficiently retracts every instantiation
built on it (used by all strategies, and by Δdel bookkeeping in §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.schema import Value
from repro.storage.tuples import StoredTuple

#: Identity of one instantiation: rule name + per-CE (relation, tid) slots.
InstantiationKey = tuple[str, tuple[tuple[str, int] | None, ...]]


@dataclass(frozen=True)
class Instantiation:
    """A rule plus the WM elements matching its condition elements.

    Attributes:
        rule_name: The satisfied production.
        wmes: One entry per condition element, in LHS order; ``None`` for
            negated condition elements.
        bindings: The variable substitution, sorted by name.
        salience: Copied from the rule for priority resolution.
    """

    rule_name: str
    wmes: tuple[StoredTuple | None, ...]
    bindings: tuple[tuple[str, Value], ...] = ()
    salience: int = 0

    @property
    def key(self) -> InstantiationKey:
        """Identity: rule plus the (relation, tid) of each matched element."""
        return (
            self.rule_name,
            tuple(
                (w.relation, w.tid) if w is not None else None
                for w in self.wmes
            ),
        )

    @property
    def timetags(self) -> tuple[int, ...]:
        """Timetags of matched elements, descending (LEX recency order)."""
        return tuple(
            sorted((w.timetag for w in self.wmes if w is not None), reverse=True)
        )

    def binding_map(self) -> dict[str, Value]:
        """Bindings as a dictionary."""
        return dict(self.bindings)

    def positive_wmes(self) -> tuple[StoredTuple, ...]:
        """The matched WM elements (negated slots skipped)."""
        return tuple(w for w in self.wmes if w is not None)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instantiation):
            return NotImplemented
        return self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __str__(self) -> str:
        slots = ", ".join(
            "-" if w is None else f"{w.relation}#{w.tid}" for w in self.wmes
        )
        return f"{self.rule_name}[{slots}]"


@dataclass
class ConflictSet:
    """The set of currently satisfied instantiations, indexed by WME.

    Listeners (callbacks ``on_added(inst)`` / ``on_removed(inst)``) observe
    membership changes — the hook the trigger and materialized-view layers
    build on.
    """

    _by_key: dict[InstantiationKey, Instantiation] = field(default_factory=dict)
    _by_wme: dict[tuple[str, int], set[InstantiationKey]] = field(
        default_factory=dict
    )
    _listeners: list = field(default_factory=list)
    additions: int = 0
    removals: int = 0

    def add_listener(self, on_added, on_removed) -> None:
        """Register membership-change callbacks."""
        self._listeners.append((on_added, on_removed))

    def add(self, instantiation: Instantiation) -> bool:
        """Insert; returns False when it was already present."""
        key = instantiation.key
        if key in self._by_key:
            return False
        self._by_key[key] = instantiation
        for wme in instantiation.positive_wmes():
            self._by_wme.setdefault((wme.relation, wme.tid), set()).add(key)
        self.additions += 1
        for on_added, _ in self._listeners:
            on_added(instantiation)
        return True

    def remove(self, instantiation: Instantiation) -> bool:
        """Remove; returns False when it was not present."""
        key = instantiation.key
        if key not in self._by_key:
            return False
        self._discard(key)
        return True

    def _discard(self, key: InstantiationKey) -> None:
        instantiation = self._by_key.pop(key)
        for wme in instantiation.positive_wmes():
            bucket = self._by_wme.get((wme.relation, wme.tid))
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_wme[(wme.relation, wme.tid)]
        self.removals += 1
        for _, on_removed in self._listeners:
            on_removed(instantiation)

    def remove_wme(self, wme: StoredTuple) -> list[Instantiation]:
        """Retract every instantiation referencing *wme*; return them."""
        keys = self._by_wme.get((wme.relation, wme.tid))
        if not keys:
            return []
        removed = [self._by_key[key] for key in list(keys)]
        for key in list(keys):
            self._discard(key)
        return removed

    def for_rule(self, rule_name: str) -> list[Instantiation]:
        """All current instantiations of *rule_name*."""
        return [
            inst
            for inst in self._by_key.values()
            if inst.rule_name == rule_name
        ]

    def instantiations(self) -> list[Instantiation]:
        """All current instantiations (insertion order)."""
        return list(self._by_key.values())

    def __contains__(self, instantiation: Instantiation) -> bool:
        return instantiation.key in self._by_key

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self):
        return iter(self._by_key.values())

    def clear(self) -> None:
        """Empty the set (counters are kept)."""
        self._by_key.clear()
        self._by_wme.clear()
