"""SQLite-backed tables.

§3.2 of the paper argues that a "straightforward implementation" of the Rete
network in a DBMS offers "simplicity and re-usability of existing
technology".  This backend demonstrates exactly that path: the same
:class:`~repro.storage.table.Table` interface realized on the stdlib
``sqlite3`` module, so any match strategy can persist its WM relations and
memories in a real relational engine.

Values are stored natively (SQLite is dynamically typed like OPS5 working
memory); ``None`` maps to SQL NULL.  Because SQL's NULL never compares equal
while OPS5's ``nil`` does, equality probes against ``None`` use ``IS NULL``.
"""

from __future__ import annotations

import sqlite3
import time
from collections.abc import Iterator

from repro.errors import StorageError
from repro.instrument import Counters
from repro.obs import Observability
from repro.storage.schema import RelationSchema, Value
from repro.storage.table import Table, TimetagClock
from repro.storage.tuples import StoredTuple

_SQL_IDENT_OK = set("abcdefghijklmnopqrstuvwxyz0123456789_")


def _quote_ident(name: str) -> str:
    """Return *name* as a safe, quoted SQL identifier."""
    if '"' in name:
        raise StorageError(f"identifier {name!r} contains a double quote")
    return f'"{name}"'


class SqliteTable(Table):
    """A table stored in a SQLite database (one SQL table + marker table)."""

    def __init__(
        self,
        schema: RelationSchema,
        clock: TimetagClock | None = None,
        counters: Counters | None = None,
        connection: sqlite3.Connection | None = None,
        obs: Observability | None = None,
    ) -> None:
        super().__init__(schema, clock, counters, obs=obs)
        self._conn = connection or sqlite3.connect(
            ":memory:", isolation_level=None
        )
        self._owns_connection = connection is None
        self._table = _quote_ident(f"t_{schema.name}")
        self._table_name = f"t_{schema.name}"
        self._marker_table = _quote_ident(f"m_{schema.name}")
        #: Cache of the highest tid ever issued (AUTOINCREMENT sequence);
        #: populated lazily by :meth:`reserve_tid` and kept coherent by
        #: every insert path so reserved and auto-assigned tids interleave
        #: exactly like the memory backend's counter.
        self._next_tid: int | None = None
        self._columns = [_quote_ident(f"a_{a}") for a in schema.attributes]
        self._indexed: set[str] = set()
        columns_sql = ", ".join(f"{c} BLOB" for c in self._columns)
        self._conn.execute(
            f"CREATE TABLE IF NOT EXISTS {self._table} "
            f"(tid INTEGER PRIMARY KEY AUTOINCREMENT, "
            f"timetag INTEGER, {columns_sql})"
        )
        self._conn.execute(
            f"CREATE TABLE IF NOT EXISTS {self._marker_table} "
            "(tid INTEGER, marker TEXT, PRIMARY KEY (tid, marker))"
        )

    # -- helpers ------------------------------------------------------------

    def _execute(self, sql: str, params: tuple = ()) -> sqlite3.Cursor:
        """Run one statement, tracing it when observability is enabled.

        Each backend call becomes a ``storage.sql`` span carrying the
        statement verb and target relation, plus a per-statement counter
        and latency histogram — the paper's "straightforward
        implementation ... in a DBMS" made visible statement by statement.
        """
        obs = self.obs
        if obs is None or not obs.enabled:
            return self._conn.execute(sql, params)
        started = time.perf_counter()
        with obs.span(
            "storage.sql",
            verb=sql.split(None, 1)[0].upper(),
            relation=self.schema.name,
        ):
            cursor = self._conn.execute(sql, params)
        metrics = obs.metrics
        metrics.counter("storage.sql_statements").inc()
        metrics.histogram("storage.sql_us").observe(
            (time.perf_counter() - started) * 1e6
        )
        return cursor

    def _executemany(
        self, sql: str, rows: list[tuple]
    ) -> sqlite3.Cursor:
        """Run one statement over many parameter rows.

        The whole batch counts as a single ``storage.sql_statements`` tick
        (that is the point: N per-row round trips collapse into one), with
        the row count recorded separately as ``storage.sql_batched_rows``.
        """
        obs = self.obs
        if obs is None or not obs.enabled:
            return self._conn.executemany(sql, rows)
        started = time.perf_counter()
        with obs.span(
            "storage.sql",
            verb=sql.split(None, 1)[0].upper(),
            relation=self.schema.name,
            rows=len(rows),
        ):
            cursor = self._conn.executemany(sql, rows)
        metrics = obs.metrics
        metrics.counter("storage.sql_statements").inc()
        metrics.counter("storage.sql_batched_rows").inc(len(rows))
        metrics.histogram("storage.sql_us").observe(
            (time.perf_counter() - started) * 1e6
        )
        return cursor

    def _row_from_sql(self, record: tuple) -> StoredTuple:
        tid, timetag, *values = record
        self.counters.tuple_reads += 1
        return StoredTuple(
            relation=self.schema.name,
            tid=tid,
            timetag=timetag,
            values=tuple(values),
        )

    def _column(self, attribute: str) -> str:
        self.schema.position(attribute)  # validates the name
        return _quote_ident(f"a_{attribute}")

    # -- Table primitives ----------------------------------------------------

    def insert_at(self, values: tuple[Value, ...], timetag: int) -> StoredTuple:
        self.schema.validate_row(values)
        cursor = self._execute(self._insert_sql(), (timetag, *values))
        self.counters.tuple_writes += 1
        if self._next_tid is not None:
            self._next_tid = max(self._next_tid, cursor.lastrowid)
        return StoredTuple(
            relation=self.schema.name,
            tid=cursor.lastrowid,
            timetag=timetag,
            values=tuple(values),
        )

    def reserve_tid(self) -> int:
        # Push the AUTOINCREMENT sequence forward as well: a reservation
        # held only in the Python-side cache would be re-issued by a later
        # auto-assigned insert if the reserved row nets out of its batch
        # and never reaches storage.
        tid = self.tid_high_water() + 1
        self.advance_tid(tid)
        return tid

    def tid_high_water(self) -> int:
        if self._next_tid is None:
            # AUTOINCREMENT's high-water mark lives in sqlite_sequence
            # (created on the first auto insert); it never shrinks on
            # deletes, so it dominates MAX(tid).
            try:
                record = self._conn.execute(
                    "SELECT seq FROM sqlite_sequence WHERE name = ?",
                    (self._table_name,),
                ).fetchone()
            except sqlite3.OperationalError:
                record = None
            sequence = record[0] if record else 0
            (highest,) = self._conn.execute(
                f"SELECT COALESCE(MAX(tid), 0) FROM {self._table}"
            ).fetchone()
            self._next_tid = max(sequence, highest)
        return self._next_tid

    def advance_tid(self, tid: int) -> None:
        if self.tid_high_water() >= tid:
            return
        # Auto-assigned rowids must also start above the mark, so push the
        # AUTOINCREMENT sequence forward alongside the cache.
        updated = self._conn.execute(
            "UPDATE sqlite_sequence SET seq = ? WHERE name = ? AND seq < ?",
            (tid, self._table_name, tid),
        )
        if updated.rowcount == 0:
            exists = self._conn.execute(
                "SELECT 1 FROM sqlite_sequence WHERE name = ?",
                (self._table_name,),
            ).fetchone()
            if exists is None:
                self._conn.execute(
                    "INSERT INTO sqlite_sequence (name, seq) VALUES (?, ?)",
                    (self._table_name, tid),
                )
        self._next_tid = tid

    def insert_prepared(self, rows: list[StoredTuple]) -> None:
        for row in rows:
            if row.relation != self.schema.name:
                raise StorageError(
                    f"row for {row.relation!r} offered to "
                    f"{self.schema.name!r}"
                )
            self.schema.validate_row(row.values)
        if not rows:
            return
        placeholders = ", ".join("?" for _ in range(self.schema.arity + 2))
        # Explicit tids advance the AUTOINCREMENT sequence, so later auto
        # inserts continue above the staged range.
        self._executemany(
            f"INSERT INTO {self._table} "
            f"(tid, timetag, {', '.join(self._columns)}) "
            f"VALUES ({placeholders})",
            [(row.tid, row.timetag, *row.values) for row in rows],
        )
        self.counters.tuple_writes += len(rows)
        highest = max(row.tid for row in rows)
        if self._next_tid is not None:
            self._next_tid = max(self._next_tid, highest)

    def _insert_sql(self) -> str:
        placeholders = ", ".join("?" for _ in range(self.schema.arity + 1))
        return (
            f"INSERT INTO {self._table} "
            f"(timetag, {', '.join(self._columns)}) VALUES ({placeholders})"
        )

    def insert_many(
        self,
        rows: list[tuple[Value, ...]],
        timetags: list[int] | None = None,
    ) -> list[StoredTuple]:
        rows = [tuple(row) for row in rows]
        for row in rows:
            self.schema.validate_row(row)
        if not rows:
            return []
        if timetags is None:
            timetags = [self.clock.tick() for _ in rows]
        own_txn = not self._conn.in_transaction
        if own_txn:
            self._conn.execute("BEGIN")
        try:
            self._executemany(
                self._insert_sql(),
                [(timetag, *row) for timetag, row in zip(timetags, rows)],
            )
            # AUTOINCREMENT rowids are strictly increasing by one per insert
            # on a single connection, so the batch occupies a contiguous
            # range ending at last_insert_rowid().
            (last,) = self._execute("SELECT last_insert_rowid()").fetchone()
        except BaseException:
            if own_txn:
                self._conn.execute("ROLLBACK")
            raise
        if own_txn:
            self._conn.execute("COMMIT")
        self.counters.tuple_writes += len(rows)
        if self._next_tid is not None:
            self._next_tid = max(self._next_tid, last)
        first = last - len(rows) + 1
        return [
            StoredTuple(
                relation=self.schema.name,
                tid=first + offset,
                timetag=timetag,
                values=row,
            )
            for offset, (timetag, row) in enumerate(zip(timetags, rows))
        ]

    def delete(self, tid: int) -> StoredTuple:
        row = self.get(tid)
        self._execute(f"DELETE FROM {self._table} WHERE tid = ?", (tid,))
        self._execute(
            f"DELETE FROM {self._marker_table} WHERE tid = ?", (tid,)
        )
        self.counters.tuple_writes += 1
        return row

    #: Parameter-list chunk size for IN (...) batch statements, comfortably
    #: under SQLite's host-parameter limit.
    _IN_CHUNK = 500

    def delete_many(self, tids: list[int]) -> list[StoredTuple]:
        tids = list(tids)
        if not tids:
            return []
        own_txn = not self._conn.in_transaction
        if own_txn:
            self._conn.execute("BEGIN")
        try:
            fetched: dict[int, StoredTuple] = {}
            for start in range(0, len(tids), self._IN_CHUNK):
                chunk = tids[start:start + self._IN_CHUNK]
                marks = ", ".join("?" for _ in chunk)
                cursor = self._execute(
                    f"SELECT tid, timetag, {', '.join(self._columns)} "
                    f"FROM {self._table} WHERE tid IN ({marks})",
                    tuple(chunk),
                )
                for record in cursor.fetchall():
                    row = self._row_from_sql(record)
                    fetched[row.tid] = row
                missing = [tid for tid in chunk if tid not in fetched]
                if missing:
                    raise StorageError(
                        f"relation {self.schema.name!r} has no tuple "
                        f"#{missing[0]}"
                    )
                self._execute(
                    f"DELETE FROM {self._table} WHERE tid IN ({marks})",
                    tuple(chunk),
                )
                self._execute(
                    f"DELETE FROM {self._marker_table} "
                    f"WHERE tid IN ({marks})",
                    tuple(chunk),
                )
        except BaseException:
            if own_txn:
                self._conn.execute("ROLLBACK")
            raise
        if own_txn:
            self._conn.execute("COMMIT")
        self.counters.tuple_writes += len(tids)
        return [fetched[tid] for tid in tids]

    def get(self, tid: int) -> StoredTuple:
        record = self._execute(
            f"SELECT tid, timetag, {', '.join(self._columns)} "
            f"FROM {self._table} WHERE tid = ?",
            (tid,),
        ).fetchone()
        if record is None:
            raise StorageError(
                f"relation {self.schema.name!r} has no tuple #{tid}"
            )
        return self._row_from_sql(record)

    def scan(self) -> Iterator[StoredTuple]:
        cursor = self._execute(
            f"SELECT tid, timetag, {', '.join(self._columns)} "
            f"FROM {self._table} ORDER BY tid"
        )
        for record in cursor.fetchall():
            yield self._row_from_sql(record)

    def __len__(self) -> int:
        (count,) = self._execute(
            f"SELECT COUNT(*) FROM {self._table}"
        ).fetchone()
        return count

    def create_index(self, attribute: str) -> None:
        column = self._column(attribute)
        index_name = _quote_ident(f"ix_{self.schema.name}_{attribute}")
        self._execute(
            f"CREATE INDEX IF NOT EXISTS {index_name} "
            f"ON {self._table} ({column})"
        )
        self._indexed.add(attribute)

    def indexed_attributes(self) -> set[str]:
        return set(self._indexed)

    def lookup(self, attribute: str, value: Value) -> Iterator[StoredTuple]:
        column = self._column(attribute)
        self.counters.index_lookups += 1
        if value is None:
            where, params = f"{column} IS NULL", ()
        else:
            where, params = f"{column} = ?", (value,)
        cursor = self._execute(
            f"SELECT tid, timetag, {', '.join(self._columns)} "
            f"FROM {self._table} WHERE {where} ORDER BY tid",
            params,
        )
        for record in cursor.fetchall():
            row = self._row_from_sql(record)
            # SQLite compares 1 and 1.0 equal and is case-sensitive for
            # text, matching repro semantics; but it also treats the blob
            # b'x' distinctly, which we never store.  A str/number probe
            # mismatch cannot match in SQLite, so no post-filter is needed.
            yield row

    # -- markers -------------------------------------------------------------

    def add_marker(self, tid: int, marker: str) -> None:
        self.get(tid)
        self._execute(
            f"INSERT OR IGNORE INTO {self._marker_table} (tid, marker) "
            "VALUES (?, ?)",
            (tid, marker),
        )

    def remove_marker(self, tid: int, marker: str) -> None:
        self._execute(
            f"DELETE FROM {self._marker_table} WHERE tid = ? AND marker = ?",
            (tid, marker),
        )

    def markers(self, tid: int) -> frozenset[str]:
        rows = self._execute(
            f"SELECT marker FROM {self._marker_table} WHERE tid = ?", (tid,)
        ).fetchall()
        return frozenset(marker for (marker,) in rows)

    def marker_count(self) -> int:
        (count,) = self._execute(
            f"SELECT COUNT(*) FROM {self._marker_table}"
        ).fetchone()
        return count

    def close(self) -> None:
        """Close the connection when this table owns it."""
        if self._owns_connection:
            self._conn.close()
