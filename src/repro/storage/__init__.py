"""Relational storage substrate.

The minimal DBMS the paper's algorithms run on: schemas, tables with tuple
ids/timetags/markers, hash indexes, predicates, a seeded conjunctive-query
evaluator, and two interchangeable backends (in-memory and SQLite).
"""

from repro.storage.catalog import BACKENDS, Catalog
from repro.storage.predicate import (
    And,
    AttributeComparison,
    Comparison,
    Membership,
    Not,
    Or,
    Predicate,
    TruePredicate,
    compare,
    conjunction,
    negate_operator,
    reverse_operator,
)
from repro.storage.query import (
    Bindings,
    ConjunctSpec,
    QueryResult,
    VariableTest,
    evaluate,
)
from repro.storage.schema import RelationSchema, Value, check_value
from repro.storage.sqlite_backend import SqliteTable
from repro.storage.table import MemoryTable, Table, TimetagClock
from repro.storage.tuples import StoredTuple

__all__ = [
    "BACKENDS",
    "And",
    "AttributeComparison",
    "Bindings",
    "Catalog",
    "Comparison",
    "Membership",
    "ConjunctSpec",
    "MemoryTable",
    "Not",
    "Or",
    "Predicate",
    "QueryResult",
    "RelationSchema",
    "SqliteTable",
    "StoredTuple",
    "Table",
    "TimetagClock",
    "TruePredicate",
    "Value",
    "VariableTest",
    "check_value",
    "compare",
    "conjunction",
    "evaluate",
    "negate_operator",
    "reverse_operator",
]
