"""Relation schemas.

A schema fixes the relation's name and its ordered attribute list, mirroring
what the OPS5 ``literalize`` command declares (§3.2 of the paper: "literalize
Emp name age salary dno" is equivalent to defining a relation ``Emp``).
Values are dynamically typed — ints, floats, strings, or ``None`` — exactly
as OPS5 working-memory elements are.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError

#: The scalar types a stored attribute value may take.  ``None`` plays the
#: role of OPS5's ``nil``.
Value = int | float | str | None

_ALLOWED_TYPES = (int, float, str, type(None))


def check_value(value: object) -> Value:
    """Validate that *value* is a legal attribute value and return it."""
    if isinstance(value, bool) or not isinstance(value, _ALLOWED_TYPES):
        raise SchemaError(
            f"attribute values must be int/float/str/None, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class RelationSchema:
    """Name plus ordered attribute names of one relation (WM class)."""

    name: str
    attributes: tuple[str, ...]
    _positions: dict[str, int] = field(
        init=False, repr=False, compare=False, hash=False, default=None
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if not self.attributes:
            raise SchemaError(f"relation {self.name!r} needs >= 1 attribute")
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(
                f"relation {self.name!r} has duplicate attribute names"
            )
        object.__setattr__(
            self,
            "_positions",
            {attr: i for i, attr in enumerate(self.attributes)},
        )

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    def position(self, attribute: str) -> int:
        """Return the 0-based slot of *attribute*.

        Raises :class:`SchemaError` for unknown attribute names so typos in
        rule text surface immediately rather than as silent mismatches.
        """
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}; "
                f"known: {', '.join(self.attributes)}"
            ) from None

    def has_attribute(self, attribute: str) -> bool:
        """True when *attribute* is a column of this relation."""
        return attribute in self._positions

    def validate_row(self, values: tuple[Value, ...]) -> tuple[Value, ...]:
        """Check arity and value types of *values*; return them unchanged."""
        if len(values) != self.arity:
            raise SchemaError(
                f"relation {self.name!r} expects {self.arity} values, "
                f"got {len(values)}"
            )
        for value in values:
            check_value(value)
        return values

    def row_from_mapping(self, mapping: dict[str, Value]) -> tuple[Value, ...]:
        """Build an ordered row from ``{attribute: value}``.

        Missing attributes default to ``None`` (OPS5 leaves unmentioned
        fields nil); unknown attributes raise.
        """
        for attr in mapping:
            if attr not in self._positions:
                raise SchemaError(
                    f"relation {self.name!r} has no attribute {attr!r}"
                )
        return tuple(mapping.get(attr) for attr in self.attributes)
