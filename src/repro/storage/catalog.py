"""The catalog: a named collection of tables sharing one timetag clock.

A :class:`Catalog` plays the role of "the database" in the paper: it holds
the WM relations, and match strategies may register their own auxiliary
relations (LEFT/RIGHT memories, COND relations) beside them.  All tables
share a single :class:`~repro.storage.table.TimetagClock` so recency is
globally comparable, and a single :class:`~repro.instrument.Counters` so
operation counts aggregate across relations.
"""

from __future__ import annotations

import sqlite3
from collections.abc import Iterator
from contextlib import contextmanager

from repro.errors import CatalogError
from repro.instrument import Counters
from repro.obs import Observability
from repro.storage.schema import RelationSchema
from repro.storage.sqlite_backend import SqliteTable
from repro.storage.table import MemoryTable, Table, TimetagClock

#: Backends selectable at catalog construction.
BACKENDS = ("memory", "sqlite")


class Catalog:
    """Registry of relations with a shared clock and counters.

    With ``backend="sqlite"`` the relations live in a SQLite database —
    in memory by default, or on disk when *path* is given, which is the
    paper's opening premise: "a large knowledge base cannot, and perhaps
    should not, for space reasons, reside in main memory."
    """

    def __init__(
        self,
        backend: str = "memory",
        counters: Counters | None = None,
        path: str | None = None,
        obs: Observability | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise CatalogError(
                f"unknown backend {backend!r}; choose from {BACKENDS}"
            )
        if path is not None and backend != "sqlite":
            raise CatalogError("a database path requires backend='sqlite'")
        self.backend = backend
        self.path = path
        self.clock = TimetagClock()
        self.counters = counters or Counters()
        self.obs = obs
        self._tables: dict[str, Table] = {}
        self._connection: sqlite3.Connection | None = None
        if backend == "sqlite":
            # Autocommit: every write is durable immediately, so a closed
            # or crashed session never rolls back acknowledged inserts.
            self._connection = sqlite3.connect(
                path or ":memory:", isolation_level=None
            )

    @contextmanager
    def transaction(self, pre_commit=None):
        """Scope a group of writes as one backend transaction.

        On the SQLite backend every statement issued inside the block joins
        a single BEGIN/COMMIT (the per-DeltaBatch transaction of the
        set-at-a-time pipeline); nested use and the memory backend are
        no-ops.  On an exception the transaction rolls back before the
        error propagates.

        *pre_commit*, when given, is called after the block body but
        before COMMIT — the write-ahead hook: the working memory uses it
        to append and fsync the batch's WAL record first, so the database
        file can never hold rows the durable log lacks.  A *pre_commit*
        that raises rolls the transaction back before the error
        propagates; one that returns ``False`` (the log went dead under a
        simulated crash — nothing it wrote is durable) rolls back
        silently, keeping the database at or behind the log.  On the
        memory backend and in nested scopes *pre_commit* is never called:
        there is no commit for it to precede, and the caller falls back
        to its ordinary post-apply logging.
        """
        connection = self._connection
        if connection is None or connection.in_transaction:
            yield
            return
        connection.execute("BEGIN IMMEDIATE")
        try:
            yield
            committable = pre_commit is None or pre_commit() is not False
        except BaseException:
            if connection.in_transaction:
                connection.execute("ROLLBACK")
            raise
        if connection.in_transaction:
            connection.execute("COMMIT" if committable else "ROLLBACK")
        if not committable:
            return
        if self.obs is not None and self.obs.enabled:
            self.obs.metrics.counter("storage.transactions").inc()

    def create(self, schema: RelationSchema) -> Table:
        """Create a table for *schema*; error if the name exists."""
        if schema.name in self._tables:
            raise CatalogError(f"relation {schema.name!r} already exists")
        if self.backend == "sqlite":
            table: Table = SqliteTable(
                schema,
                clock=self.clock,
                counters=self.counters,
                connection=self._connection,
                obs=self.obs,
            )
            # A file-backed database may already hold rows from an earlier
            # session; keep recency monotone across reopens.
            if self.path is not None:
                newest = max((row.timetag for row in table.scan()), default=0)
                self.clock.advance_to(newest)
        else:
            table = MemoryTable(schema, clock=self.clock, counters=self.counters)
        self._tables[schema.name] = table
        return table

    def get(self, name: str) -> Table:
        """Return the table named *name*."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no relation named {name!r}") from None

    def has(self, name: str) -> bool:
        """True when a relation named *name* exists."""
        return name in self._tables

    def drop(self, name: str) -> None:
        """Remove the relation *name* and its contents."""
        table = self.get(name)
        table.clear()
        del self._tables[name]

    def names(self) -> list[str]:
        """All relation names, in creation order."""
        return list(self._tables)

    def tables(self) -> Iterator[Table]:
        """Iterate over all tables in creation order."""
        return iter(self._tables.values())

    def total_tuples(self) -> int:
        """Sum of row counts over every relation (space accounting)."""
        return sum(len(table) for table in self._tables.values())

    def close(self) -> None:
        """Release backend resources (SQLite connection, if any)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None
