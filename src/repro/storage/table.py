"""Table interface and the in-memory backend.

A :class:`Table` is the storage abstraction every higher layer builds on:
WM relations, the LEFT/RIGHT memories of the DBMS Rete (§3.2), and the COND
relations of §4.1/§4.2 are all Tables.  The in-memory backend keeps rows in
a dict keyed by tuple id and maintains optional hash indexes per attribute;
:mod:`repro.storage.sqlite_backend` provides the same interface on SQLite.

Tables also carry per-tuple *marker* sets, the mechanism behind the Basic
Locking rule-indexing scheme the paper contrasts with (§2.3, [STON86a]):
markers name the conditions whose read set includes the tuple.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import StorageError
from repro.instrument import Counters
from repro.obs import Observability
from repro.storage.predicate import Predicate, compile_predicate
from repro.storage.schema import RelationSchema, Value
from repro.storage.tuples import StoredTuple


class TimetagClock:
    """Monotone counter handing out OPS5 timetags across relations."""

    def __init__(self) -> None:
        self._next = 0

    def tick(self) -> int:
        """Return the next timetag."""
        self._next += 1
        return self._next

    def advance_to(self, value: int) -> None:
        """Ensure future timetags exceed *value* (persistent reopen)."""
        self._next = max(self._next, value)

    @property
    def current(self) -> int:
        """The most recently issued timetag (0 before any tick)."""
        return self._next


class Table:
    """Abstract table; subclasses implement the storage primitives."""

    def __init__(
        self,
        schema: RelationSchema,
        clock: TimetagClock | None = None,
        counters: Counters | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.schema = schema
        self.clock = clock or TimetagClock()
        self.counters = counters or Counters()
        #: Optional :class:`repro.obs.Observability`; backends that issue
        #: per-statement calls (SQLite) trace through it when enabled.
        self.obs = obs

    # -- primitives every backend implements -------------------------------

    def insert_at(self, values: tuple[Value, ...], timetag: int) -> StoredTuple:
        """Store a new row under an explicit *timetag*; return it.

        Batch paths pre-assign timetags in operation order (recency must
        follow the caller's logical order even when rows are regrouped per
        relation for the backend), so the timetag is a parameter of the
        storage primitive rather than drawn inside it.
        """
        raise NotImplementedError

    def insert(self, values: tuple[Value, ...]) -> StoredTuple:
        """Store a new row; return it with fresh tid and timetag."""
        return self.insert_at(values, self.clock.tick())

    def reserve_tid(self) -> int:
        """Claim the next tuple id without storing a row.

        The staged-write path of :class:`repro.engine.wm.WorkingMemory`
        (and crash recovery) must hand out real tuple identities *before*
        the storage write happens, and those identities must be the same
        ones an immediate write would have produced.  A reserved tid is
        consumed whether or not a row is ever stored under it — tids are
        never reused.
        """
        raise NotImplementedError

    def insert_prepared(self, rows: list[StoredTuple]) -> None:
        """Store rows that already carry their tid and timetag.

        The batch counterpart of :meth:`reserve_tid`: callers that staged
        rows (WM batch scopes) or replay a log (crash recovery) persist
        them here.  Rows must belong to this relation; tids must be unused.
        """
        raise NotImplementedError

    def tid_high_water(self) -> int:
        """The highest tuple id ever issued (0 for a virgin table).

        Reserved-but-never-stored tids count: the mark tracks identity
        allocation, not storage contents, so crash recovery can restore it
        exactly even when a staged batch netted rows away.
        """
        raise NotImplementedError

    def advance_tid(self, tid: int) -> None:
        """Ensure future allocations start above *tid* (recovery restore).

        A no-op when the table has already issued *tid* or higher.
        """
        raise NotImplementedError

    def delete(self, tid: int) -> StoredTuple:
        """Remove and return the row with id *tid*."""
        raise NotImplementedError

    def get(self, tid: int) -> StoredTuple:
        """Return the row with id *tid*."""
        raise NotImplementedError

    def scan(self) -> Iterator[StoredTuple]:
        """Yield every stored row (order unspecified but deterministic)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def create_index(self, attribute: str) -> None:
        """Build (or re-build) an equality index on *attribute*."""
        raise NotImplementedError

    def indexed_attributes(self) -> set[str]:
        """Attributes with an equality index available."""
        raise NotImplementedError

    def lookup(self, attribute: str, value: Value) -> Iterator[StoredTuple]:
        """Yield rows whose *attribute* equals *value*.

        Uses the index when one exists, otherwise scans.
        """
        raise NotImplementedError

    # -- markers (Basic Locking, §2.3) --------------------------------------

    def add_marker(self, tid: int, marker: str) -> None:
        """Attach *marker* (a condition id) to tuple *tid*."""
        raise NotImplementedError

    def remove_marker(self, tid: int, marker: str) -> None:
        """Detach *marker* from tuple *tid* (no-op when absent)."""
        raise NotImplementedError

    def markers(self, tid: int) -> frozenset[str]:
        """Return the marker set of tuple *tid*."""
        raise NotImplementedError

    def marker_count(self) -> int:
        """Total marker entries across all tuples (space accounting)."""
        raise NotImplementedError

    # -- batch operations (set-at-a-time delta pipeline) ---------------------

    def insert_many(
        self,
        rows: list[tuple[Value, ...]],
        timetags: list[int] | None = None,
    ) -> list[StoredTuple]:
        """Store several rows; return them in input order.

        *timetags*, when given, must parallel *rows*; otherwise fresh ones
        are drawn per row.  Rows are validated up front so a malformed row
        anywhere in the batch stores nothing.  Backends override this to
        amortize per-call costs (the SQLite backend issues a single
        ``executemany``).
        """
        rows = [tuple(row) for row in rows]
        for row in rows:
            self.schema.validate_row(row)
        if timetags is None:
            timetags = [self.clock.tick() for _ in rows]
        return [
            self.insert_at(row, timetag)
            for row, timetag in zip(rows, timetags)
        ]

    def delete_many(self, tids: list[int]) -> list[StoredTuple]:
        """Remove several rows by id; return them in input order."""
        return [self.delete(tid) for tid in tids]

    # -- derived operations shared by all backends --------------------------

    def insert_mapping(self, mapping: dict[str, Value]) -> StoredTuple:
        """Insert a row given ``{attribute: value}``."""
        return self.insert(self.schema.row_from_mapping(mapping))

    def select(self, predicate: Predicate) -> Iterator[StoredTuple]:
        """Yield rows satisfying *predicate* (naive scan fallback)."""
        self.counters.scans += 1
        check = compile_predicate(predicate, self.schema)
        for row in self.scan():
            self.counters.comparisons += 1
            if check(row.values):
                yield row

    def select_eq(self, pairs: dict[str, Value]) -> Iterator[StoredTuple]:
        """Yield rows matching every ``attribute = value`` in *pairs*.

        Prefers the most selective available index, then filters the rest.
        """
        if not pairs:
            yield from self.scan()
            return
        indexed = [a for a in pairs if a in self.indexed_attributes()]
        if indexed:
            probe = indexed[0]
            rest = {a: v for a, v in pairs.items() if a != probe}
            candidates: Iterable[StoredTuple] = self.lookup(probe, pairs[probe])
        else:
            rest = dict(pairs)
            self.counters.scans += 1
            candidates = self.scan()
        positions = {a: self.schema.position(a) for a in rest}
        for row in candidates:
            self.counters.comparisons += len(rest)
            if all(row.values[positions[a]] == v for a, v in rest.items()):
                yield row

    def clear(self) -> None:
        """Delete every row."""
        for row in list(self.scan()):
            self.delete(row.tid)


class MemoryTable(Table):
    """Dict-backed table with per-attribute hash indexes."""

    def __init__(
        self,
        schema: RelationSchema,
        clock: TimetagClock | None = None,
        counters: Counters | None = None,
    ) -> None:
        super().__init__(schema, clock, counters)
        self._rows: dict[int, StoredTuple] = {}
        self._next_tid = 0
        self._indexes: dict[str, dict[Value, set[int]]] = {}
        self._markers: dict[int, set[str]] = {}
        self._marker_total = 0

    def insert_at(self, values: tuple[Value, ...], timetag: int) -> StoredTuple:
        self.schema.validate_row(values)
        self._next_tid += 1
        row = StoredTuple(
            relation=self.schema.name,
            tid=self._next_tid,
            timetag=timetag,
            values=tuple(values),
        )
        self._store_row(row)
        return row

    def _store_row(self, row: StoredTuple) -> None:
        self._rows[row.tid] = row
        for attribute, index in self._indexes.items():
            pos = self.schema.position(attribute)
            index.setdefault(row.values[pos], set()).add(row.tid)
        self.counters.tuple_writes += 1

    def reserve_tid(self) -> int:
        self._next_tid += 1
        return self._next_tid

    def tid_high_water(self) -> int:
        return self._next_tid

    def advance_tid(self, tid: int) -> None:
        self._next_tid = max(self._next_tid, tid)

    def insert_prepared(self, rows: list[StoredTuple]) -> None:
        for row in rows:
            if row.relation != self.schema.name:
                raise StorageError(
                    f"row for {row.relation!r} offered to "
                    f"{self.schema.name!r}"
                )
            self.schema.validate_row(row.values)
            if row.tid in self._rows:
                raise StorageError(
                    f"relation {self.schema.name!r} already has tuple "
                    f"#{row.tid}"
                )
        for row in rows:
            self._store_row(row)
            # Recovery replays rows with externally assigned tids; keep
            # fresh allocations above them.
            self._next_tid = max(self._next_tid, row.tid)

    def delete(self, tid: int) -> StoredTuple:
        try:
            row = self._rows.pop(tid)
        except KeyError:
            raise StorageError(
                f"relation {self.schema.name!r} has no tuple #{tid}"
            ) from None
        for attribute, index in self._indexes.items():
            pos = self.schema.position(attribute)
            bucket = index.get(row.values[pos])
            if bucket is not None:
                bucket.discard(tid)
                if not bucket:
                    del index[row.values[pos]]
        dropped = self._markers.pop(tid, None)
        if dropped:
            self._marker_total -= len(dropped)
        self.counters.tuple_writes += 1
        return row

    def get(self, tid: int) -> StoredTuple:
        try:
            row = self._rows[tid]
        except KeyError:
            raise StorageError(
                f"relation {self.schema.name!r} has no tuple #{tid}"
            ) from None
        self.counters.tuple_reads += 1
        return row

    def scan(self) -> Iterator[StoredTuple]:
        for row in list(self._rows.values()):
            self.counters.tuple_reads += 1
            yield row

    def __len__(self) -> int:
        return len(self._rows)

    def create_index(self, attribute: str) -> None:
        pos = self.schema.position(attribute)
        index: dict[Value, set[int]] = {}
        for row in self._rows.values():
            index.setdefault(row.values[pos], set()).add(row.tid)
        self._indexes[attribute] = index

    def indexed_attributes(self) -> set[str]:
        return set(self._indexes)

    def lookup(self, attribute: str, value: Value) -> Iterator[StoredTuple]:
        index = self._indexes.get(attribute)
        if index is None:
            pos = self.schema.position(attribute)
            self.counters.scans += 1
            for row in list(self._rows.values()):
                self.counters.tuple_reads += 1
                self.counters.comparisons += 1
                if row.values[pos] == value:
                    yield row
            return
        self.counters.index_lookups += 1
        for tid in sorted(index.get(value, ())):
            row = self._rows.get(tid)
            if row is not None:
                self.counters.tuple_reads += 1
                yield row

    def add_marker(self, tid: int, marker: str) -> None:
        if tid not in self._rows:
            raise StorageError(
                f"relation {self.schema.name!r} has no tuple #{tid}"
            )
        bucket = self._markers.setdefault(tid, set())
        if marker not in bucket:
            bucket.add(marker)
            self._marker_total += 1

    def remove_marker(self, tid: int, marker: str) -> None:
        bucket = self._markers.get(tid)
        if bucket and marker in bucket:
            bucket.discard(marker)
            self._marker_total -= 1

    def markers(self, tid: int) -> frozenset[str]:
        return frozenset(self._markers.get(tid, ()))

    def marker_count(self) -> int:
        return self._marker_total
