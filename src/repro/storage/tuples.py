"""Stored tuples.

A :class:`StoredTuple` is an immutable row plus the bookkeeping the paper's
algorithms need: a stable tuple id (for deletes and for locking at tuple
granularity, §5.2) and an OPS5-style *timetag* (monotone insertion counter,
used by the LEX/MEA conflict-resolution strategies).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.schema import RelationSchema, Value


@dataclass(frozen=True, slots=True)
class StoredTuple:
    """One immutable row of a relation.

    Attributes:
        relation: Name of the owning relation (WM class).
        tid: Tuple id, unique within the relation, never reused.
        timetag: Global insertion counter (OPS5 recency).
        values: The attribute values, in schema order.
    """

    relation: str
    tid: int
    timetag: int
    values: tuple[Value, ...]

    def value(self, schema: RelationSchema, attribute: str) -> Value:
        """Return this tuple's value for *attribute* under *schema*."""
        return self.values[schema.position(attribute)]

    def as_mapping(self, schema: RelationSchema) -> dict[str, Value]:
        """Return ``{attribute: value}`` for display and debugging."""
        return dict(zip(schema.attributes, self.values))

    def __str__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        return f"{self.relation}#{self.tid}({inner})"
