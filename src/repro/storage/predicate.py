"""Predicates over stored tuples.

These are the comparison semantics shared by every matcher in the library:
OPS5 predicate tests (``=``, ``<>``, ``<``, ``<=``, ``>``, ``>=``) applied to
dynamically typed values.  Mixed-type *ordering* comparisons simply fail
(return ``False``) instead of raising, matching OPS5's behaviour of a test
not being satisfied; equality across numeric types follows Python (``1 ==
1.0``), while a string never equals a number.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.errors import QueryError
from repro.storage.schema import RelationSchema, Value

#: Operators recognized everywhere, in OPS5 spelling (``<>`` is not-equal).
OPERATORS = ("=", "<>", "<", "<=", ">", ">=")

_NEGATION = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
_REVERSAL = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def negate_operator(op: str) -> str:
    """Return the operator testing the complement of *op*."""
    return _NEGATION[op]


def reverse_operator(op: str) -> str:
    """Return *op* with its operands swapped (``a < b`` -> ``b > a``)."""
    return _REVERSAL[op]


def _orderable(left: Value, right: Value) -> bool:
    if left is None or right is None:
        return False
    left_numeric = isinstance(left, (int, float))
    right_numeric = isinstance(right, (int, float))
    if left_numeric != right_numeric:
        return False
    return True


def compare(op: str, left: Value, right: Value) -> bool:
    """Evaluate ``left op right`` under OPS5 semantics."""
    if op == "=":
        if isinstance(left, str) != isinstance(right, str):
            return False
        return left == right
    if op == "<>":
        return not compare("=", left, right)
    if not _orderable(left, right):
        return False
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise QueryError(f"unknown comparison operator {op!r}")


class Predicate:
    """Base class for boolean conditions over one row."""

    def matches(self, schema: RelationSchema, values: tuple[Value, ...]) -> bool:
        """Evaluate this predicate against one row."""
        raise NotImplementedError

    def attributes(self) -> set[str]:
        """Attribute names this predicate reads (used by planners)."""
        raise NotImplementedError


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Matches every row."""

    def matches(self, schema: RelationSchema, values: tuple[Value, ...]) -> bool:
        return True

    def attributes(self) -> set[str]:
        return set()


@dataclass(frozen=True)
class Comparison(Predicate):
    """``attribute op constant``."""

    attribute: str
    op: str
    value: Value

    def __post_init__(self) -> None:
        if self.op not in OPERATORS:
            raise QueryError(f"unknown comparison operator {self.op!r}")

    def matches(self, schema: RelationSchema, values: tuple[Value, ...]) -> bool:
        return compare(self.op, values[schema.position(self.attribute)], self.value)

    def attributes(self) -> set[str]:
        return {self.attribute}


@dataclass(frozen=True)
class Membership(Predicate):
    """``attribute IN {values}`` — OPS5's ``<< a b c >>`` disjunction."""

    attribute: str
    values: tuple[Value, ...]

    def matches(self, schema: RelationSchema, values: tuple[Value, ...]) -> bool:
        actual = values[schema.position(self.attribute)]
        return any(compare("=", actual, candidate) for candidate in self.values)

    def attributes(self) -> set[str]:
        return {self.attribute}


@dataclass(frozen=True)
class AttributeComparison(Predicate):
    """``left_attribute op right_attribute`` within one row."""

    left: str
    op: str
    right: str

    def __post_init__(self) -> None:
        if self.op not in OPERATORS:
            raise QueryError(f"unknown comparison operator {self.op!r}")

    def matches(self, schema: RelationSchema, values: tuple[Value, ...]) -> bool:
        return compare(
            self.op,
            values[schema.position(self.left)],
            values[schema.position(self.right)],
        )

    def attributes(self) -> set[str]:
        return {self.left, self.right}


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates; empty conjunction is true."""

    parts: tuple[Predicate, ...]

    def matches(self, schema: RelationSchema, values: tuple[Value, ...]) -> bool:
        return all(part.matches(schema, values) for part in self.parts)

    def attributes(self) -> set[str]:
        result: set[str] = set()
        for part in self.parts:
            result |= part.attributes()
        return result


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates; empty disjunction is false."""

    parts: tuple[Predicate, ...]

    def matches(self, schema: RelationSchema, values: tuple[Value, ...]) -> bool:
        return any(part.matches(schema, values) for part in self.parts)

    def attributes(self) -> set[str]:
        result: set[str] = set()
        for part in self.parts:
            result |= part.attributes()
        return result


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    part: Predicate

    def matches(self, schema: RelationSchema, values: tuple[Value, ...]) -> bool:
        return not self.part.matches(schema, values)

    def attributes(self) -> set[str]:
        return self.part.attributes()


def conjunction(parts: Iterable[Predicate]) -> Predicate:
    """Build the simplest predicate equivalent to ``AND(parts)``."""
    flat: list[Predicate] = []
    for part in parts:
        if isinstance(part, TruePredicate):
            continue
        if isinstance(part, And):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return TruePredicate()
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def compile_predicate(
    predicate: Predicate, schema: RelationSchema
) -> Callable[[tuple[Value, ...]], bool]:
    """Bind *predicate* to *schema*, returning a fast row -> bool callable.

    Attribute positions are resolved once here instead of per row, which
    matters when a matcher scans large WM relations.
    """
    if isinstance(predicate, TruePredicate):
        return lambda values: True
    if isinstance(predicate, Comparison):
        pos = schema.position(predicate.attribute)
        op, const = predicate.op, predicate.value
        return lambda values: compare(op, values[pos], const)
    if isinstance(predicate, Membership):
        pos = schema.position(predicate.attribute)
        candidates = predicate.values
        return lambda values: any(
            compare("=", values[pos], c) for c in candidates
        )
    if isinstance(predicate, AttributeComparison):
        left = schema.position(predicate.left)
        right = schema.position(predicate.right)
        op = predicate.op
        return lambda values: compare(op, values[left], values[right])
    if isinstance(predicate, And):
        compiled = [compile_predicate(p, schema) for p in predicate.parts]
        return lambda values: all(fn(values) for fn in compiled)
    if isinstance(predicate, Or):
        compiled = [compile_predicate(p, schema) for p in predicate.parts]
        return lambda values: any(fn(values) for fn in compiled)
    if isinstance(predicate, Not):
        inner = compile_predicate(predicate.part, schema)
        return lambda values: not inner(values)
    raise QueryError(f"cannot compile predicate {predicate!r}")
