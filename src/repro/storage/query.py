"""Seeded conjunctive-query evaluation (select-project-join).

This is the query machinery behind the "simplified algorithm" of §4.1: the
LHS of a rule is an ordinary conjunctive query over the WM relations, and
every WM change re-evaluates the affected LHSs *seeded* with the changed
tuple.  The evaluator here is strategy-neutral: it works on
:class:`ConjunctSpec` descriptions, chooses a greedy join order (most-bound
conjunct first — "the system will have to come up with optimal plans", §4.1.2),
uses equality indexes where available, and supports negated conjuncts via
NOT EXISTS semantics.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.instrument import Counters
from repro.storage.catalog import Catalog
from repro.storage.predicate import Predicate, TruePredicate, compare, compile_predicate
from repro.storage.schema import Value
from repro.storage.tuples import StoredTuple

#: A variable substitution produced during evaluation.
Bindings = dict[str, Value]


@dataclass(frozen=True)
class VariableTest:
    """A non-equality test between an attribute and a bound variable."""

    attribute: str
    op: str
    variable: str


@dataclass(frozen=True)
class ConjunctSpec:
    """One conjunct of a conjunctive query.

    Attributes:
        relation: WM relation the conjunct ranges over.
        constant: Variable-free predicate restricting the relation.
        equalities: ``{attribute: variable}`` equality bindings.  The first
            conjunct mentioning a variable binds it; later mentions join.
        residual: Non-equality variable tests (``attr < <x>`` style).
        negated: When true the conjunct is satisfied by the *absence* of any
            matching tuple (OPS5 ``-`` condition elements).
    """

    relation: str
    constant: Predicate = field(default_factory=TruePredicate)
    equalities: tuple[tuple[str, str], ...] = ()
    residual: tuple[VariableTest, ...] = ()
    negated: bool = False

    def variables(self) -> set[str]:
        """All variables this conjunct mentions."""
        names = {var for _, var in self.equalities}
        names |= {test.variable for test in self.residual}
        return names


@dataclass(frozen=True)
class QueryResult:
    """One satisfying combination.

    ``rows`` holds one :class:`StoredTuple` per *positive* conjunct, in the
    original conjunct order; negated conjuncts contribute ``None``.
    """

    rows: tuple[StoredTuple | None, ...]
    bindings: tuple[tuple[str, Value], ...]

    def binding_map(self) -> Bindings:
        """Bindings as a dictionary."""
        return dict(self.bindings)


#: A residual test whose variable was unbound when its row matched:
#: (value from the matched row, operator, variable still to be bound).
_Deferred = tuple[Value, str, str]


def _match_conjunct(
    spec: ConjunctSpec,
    row: StoredTuple,
    bindings: Bindings,
    catalog: Catalog,
    counters: Counters,
) -> tuple[Bindings, list[_Deferred]] | None:
    """Try to extend *bindings* so that *row* satisfies *spec*.

    Returns ``(extended bindings, deferred residual tests)``, or ``None``
    when the row fails a constant test, an equality join, or a residual
    test whose variable is already bound.  Residual tests on not-yet-bound
    variables are deferred to the caller, to be checked once some later
    conjunct binds them.
    """
    table = catalog.get(spec.relation)
    check = compile_predicate(spec.constant, table.schema)
    counters.comparisons += 1
    if not check(row.values):
        return None
    extended = dict(bindings)
    for attribute, variable in spec.equalities:
        value = row.values[table.schema.position(attribute)]
        if variable in extended:
            counters.comparisons += 1
            if not compare("=", extended[variable], value):
                return None
        else:
            extended[variable] = value
    deferred: list[_Deferred] = []
    for test in spec.residual:
        value = row.values[table.schema.position(test.attribute)]
        if test.variable not in extended:
            deferred.append((value, test.op, test.variable))
            continue
        counters.comparisons += 1
        if not compare(test.op, value, extended[test.variable]):
            return None
    return extended, deferred


def _settle_deferred(
    pending: list[_Deferred], bindings: Bindings, counters: Counters
) -> list[_Deferred] | None:
    """Check deferred tests whose variable is now bound.

    Returns the still-pending subset, or ``None`` when a test fails.
    """
    remaining: list[_Deferred] = []
    for value, op, variable in pending:
        if variable in bindings:
            counters.comparisons += 1
            if not compare(op, value, bindings[variable]):
                return None
        else:
            remaining.append((value, op, variable))
    return remaining


def _candidate_rows(
    spec: ConjunctSpec, bindings: Bindings, catalog: Catalog
) -> Iterator[StoredTuple]:
    """Fetch candidate rows for *spec*, using bound equalities as probes."""
    table = catalog.get(spec.relation)
    probes = {
        attribute: bindings[variable]
        for attribute, variable in spec.equalities
        if variable in bindings
    }
    if probes:
        yield from table.select_eq(probes)
    else:
        yield from table.select(spec.constant)


def _boundness(spec: ConjunctSpec, bound: set[str]) -> tuple[int, int]:
    """Greedy ordering key: (-#bound equality vars, -#constant attrs)."""
    bound_eqs = sum(1 for _, var in spec.equalities if var in bound)
    constants = len(spec.constant.attributes())
    return (-bound_eqs, -constants)


def _order_remaining(
    remaining: list[int], specs: list[ConjunctSpec], bound: set[str]
) -> int:
    """Pick the next conjunct index to evaluate.

    Positive conjuncts are preferred over negated ones (a negated conjunct
    is only safe once all its variables are bound), and among positives the
    most-bound, most-restricted one goes first.
    """

    def key(i: int) -> tuple[int, tuple[int, int], int]:
        spec = specs[i]
        unsafe = int(spec.negated and not spec.variables() <= bound)
        return (unsafe, _boundness(spec, bound), i)

    return min(remaining, key=key)


def evaluate(
    specs: list[ConjunctSpec],
    catalog: Catalog,
    counters: Counters | None = None,
    seed_index: int | None = None,
    seed_row: StoredTuple | None = None,
    seed_bindings: Bindings | None = None,
) -> Iterator[QueryResult]:
    """Enumerate all satisfying combinations of *specs*.

    When *seed_index*/*seed_row* are given, the conjunct at that index is
    pinned to the seed row — the §4.1.2 pattern of evaluating a rule LHS
    "against" a newly inserted tuple.  *seed_bindings* pre-binds variables.

    Negated conjuncts never contribute a row; they must find no match once
    their variables are bound (NOT EXISTS).
    """
    counters = counters if counters is not None else Counters()
    rows: list[StoredTuple | None] = [None] * len(specs)
    bindings: Bindings = dict(seed_bindings or {})
    remaining = list(range(len(specs)))
    pending: list[_Deferred] = []

    if seed_index is not None:
        if seed_row is None:
            raise QueryError("seed_index given without seed_row")
        spec = specs[seed_index]
        if spec.negated:
            raise QueryError("cannot seed a negated conjunct with a row")
        seeded = _match_conjunct(spec, seed_row, bindings, catalog, counters)
        if seeded is None:
            return
        bindings, pending = seeded
        rows[seed_index] = seed_row
        remaining.remove(seed_index)

    yield from _evaluate_rest(
        specs, remaining, rows, bindings, pending, catalog, counters
    )


def _evaluate_rest(
    specs: list[ConjunctSpec],
    remaining: list[int],
    rows: list[StoredTuple | None],
    bindings: Bindings,
    pending: list[_Deferred],
    catalog: Catalog,
    counters: Counters,
) -> Iterator[QueryResult]:
    if not remaining:
        if pending:
            unbound = sorted({variable for _, _, variable in pending})
            raise QueryError(
                f"residual tests on variables {unbound} that no conjunct "
                "binds with '='"
            )
        yield QueryResult(
            rows=tuple(rows), bindings=tuple(sorted(bindings.items()))
        )
        return
    bound = set(bindings)
    index = _order_remaining(remaining, specs, bound)
    spec = specs[index]
    rest = [i for i in remaining if i != index]
    if spec.negated:
        if not spec.variables() <= bound:
            raise QueryError(
                f"negated conjunct on {spec.relation!r} has variables not "
                "bound by any positive conjunct"
            )
        counters.joins_computed += 1
        for row in _candidate_rows(spec, bindings, catalog):
            if _match_conjunct(spec, row, bindings, catalog, counters) is not None:
                return  # a witness exists; NOT EXISTS fails
        yield from _evaluate_rest(
            specs, rest, rows, bindings, pending, catalog, counters
        )
        return
    counters.joins_computed += 1
    for row in _candidate_rows(spec, bindings, catalog):
        matched = _match_conjunct(spec, row, bindings, catalog, counters)
        if matched is None:
            continue
        extended, deferred = matched
        still_pending = _settle_deferred(pending + deferred, extended, counters)
        if still_pending is None:
            continue
        rows[index] = row
        yield from _evaluate_rest(
            specs, rest, rows, extended, still_pending, catalog, counters
        )
        rows[index] = None
