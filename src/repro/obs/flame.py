"""Collapsed-stack (flamegraph) folding of span streams.

Spans are emitted on exit, post-order, each carrying the nesting
``depth`` it was opened at (:mod:`repro.obs.tracing`).  That is exactly
enough to rebuild the call tree without timestamps: when a span at depth
*d* completes, every not-yet-claimed completed span at depth *d+1* is one
of its children.

:func:`fold_spans` turns a record stream into the collapsed-stack format
Brendan Gregg's ``flamegraph.pl`` (and every compatible viewer — speedscope,
inferno) consumes: one line per unique stack, ``root;child;leaf <weight>``,
where the weight is the stack's *self* time in integer microseconds — its
own duration minus its children's.  Folding ``repro run --wal x.wal
--trace-out t.jsonl`` output makes the durability tax visible as the
``cycle;act;recovery.fsync`` stacks sitting alongside the match work.
"""

from __future__ import annotations

import json
from collections import defaultdict


def fold_spans(records) -> dict[str, int]:
    """Fold span *records* (dicts, post-order) into collapsed stacks.

    Returns ``{"a;b;c": self_us}`` aggregated over every occurrence of the
    stack.  Non-span records (events, metrics) are ignored, as are
    malformed spans without a depth.  Self time is clamped at zero —
    clock jitter can make a parent measure marginally less than the sum
    of its children.
    """
    #: Completed spans waiting to be claimed by a parent, by depth.
    pending: defaultdict[int, list] = defaultdict(list)
    totals: defaultdict[str, int] = defaultdict(int)

    def close(span: dict) -> None:
        depth = span["depth"]
        children = pending.pop(depth + 1, [])
        child_us = sum(child["dur_us"] for child in children)
        span["_children"] = children
        span["_self_us"] = max(span["dur_us"] - child_us, 0.0)
        pending[depth].append(span)

    for record in records:
        if (
            record.get("type") != "span"
            or not isinstance(record.get("depth"), int)
            or not isinstance(record.get("dur_us"), (int, float))
            or not isinstance(record.get("name"), str)
        ):
            continue  # skip-unknown: events and newer-schema records
        close(record)

    def walk(span: dict, prefix: str) -> None:
        path = f"{prefix};{span['name']}" if prefix else span["name"]
        totals[path] += int(span["_self_us"])
        for child in span["_children"]:
            walk(child, path)

    # Roots are whatever was never claimed; tolerate truncated streams
    # where inner depths were orphaned by a missing ancestor.
    for depth in sorted(pending):
        for span in pending[depth]:
            walk(span, "")
    return dict(totals)


def render_folded(stacks: dict[str, int]) -> str:
    """The collapsed-stack text: one ``path weight`` line, sorted by path."""
    return "".join(
        f"{path} {weight}\n" for path, weight in sorted(stacks.items())
    )


def fold_trace_file(path: str) -> dict[str, int]:
    """Fold a ``--trace-out`` JSONL file into collapsed stacks.

    Unparseable lines (a torn tail from a crashed run, records from a
    newer schema serialized oddly) are skipped, not fatal.
    """

    def parse(lines):
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                yield record

    with open(path, encoding="utf-8") as handle:
        return fold_spans(parse(handle))
