"""Pluggable destinations for spans and events.

A sink is anything with ``emit(record: dict)`` (and optionally
``close()``).  Records are either spans (``{"type": "span", ...}``, see
:mod:`repro.obs.tracing`) or point events (``{"type": "event", "kind":
..., "cycle": ..., "detail": ...}``).  ``detail`` may be a live object
(a :class:`~repro.storage.tuples.StoredTuple`, a ``FiredRule``); sinks
that serialize must stringify it.
"""

from __future__ import annotations

import json
import os
import sys
from collections import deque
from typing import IO, Protocol


class Sink(Protocol):
    """Destination for observability records."""

    def emit(self, record: dict) -> None:
        """Receive one span or event record."""


class CallbackSink:
    """Adapts a plain callable into a sink."""

    def __init__(self, callback) -> None:
        self.callback = callback

    def emit(self, record: dict) -> None:
        self.callback(record)


class RingBufferSink:
    """Keeps the last *capacity* records in memory (flight recorder)."""

    def __init__(self, capacity: int = 10_000) -> None:
        self._buffer: deque[dict] = deque(maxlen=capacity)

    def emit(self, record: dict) -> None:
        self._buffer.append(record)

    def records(self) -> list[dict]:
        """All buffered records, oldest first."""
        return list(self._buffer)

    def spans(self, name: str | None = None) -> list[dict]:
        """Buffered spans, optionally filtered by span name."""
        return [
            r
            for r in self._buffer
            if r.get("type") == "span" and (name is None or r["name"] == name)
        ]

    def events(self, kind: str | None = None) -> list[dict]:
        """Buffered point events, optionally filtered by kind."""
        return [
            r
            for r in self._buffer
            if r.get("type") == "event"
            and (kind is None or r.get("kind") == kind)
        ]

    def __len__(self) -> int:
        return len(self._buffer)

    def clear(self) -> None:
        """Drop all buffered records."""
        self._buffer.clear()


class ConsoleSink:
    """Human-readable rendering, one line per record, indented by depth."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self.stream = stream or sys.stderr

    def emit(self, record: dict) -> None:
        if record.get("type") == "span":
            indent = "  " * record.get("depth", 0)
            attrs = " ".join(
                f"{k}={v}" for k, v in record.get("attrs", {}).items()
            )
            line = (
                f"{indent}{record['name']} {record['dur_us']:.1f}us"
                + (f" [{attrs}]" if attrs else "")
            )
        else:
            detail = record.get("detail")
            line = f"* {record.get('kind')} cycle={record.get('cycle')}" + (
                f" {detail}" if detail is not None else ""
            )
        print(line, file=self.stream)


class JsonlFileSink:
    """Appends records as JSON lines; non-JSON values are stringified.

    With ``rotate_bytes`` > 0 the file is size-rotated logrotate-style:
    when the next record would push the current file past the limit, it
    is renamed to ``path.1`` (existing rotations shift to ``path.2``,
    ``path.3``, ...) and a fresh file is started.  At most *keep* rotated
    files are retained — the oldest is deleted — so a long ``--follow``ed
    run occupies at most ``(keep + 1) * rotate_bytes`` bytes on disk.
    A record is never split across files.
    """

    def __init__(
        self, path: str, rotate_bytes: int = 0, keep: int = 3
    ) -> None:
        self.path = path
        self.rotate_bytes = rotate_bytes
        self.keep = keep
        self._handle: IO[str] | None = None
        self._written = 0

    def emit(self, record: dict) -> None:
        if self._handle is None:
            self._open()
        line = json.dumps(record, default=str) + "\n"
        if (
            self.rotate_bytes > 0
            and self._written > 0
            and self._written + len(line) > self.rotate_bytes
        ):
            self._rotate()
        self._handle.write(line)
        self._written += len(line)

    def _open(self) -> None:
        self._handle = open(self.path, "a", encoding="utf-8")
        self._written = self._handle.tell()

    def _rotate(self) -> None:
        """Shift ``path.i`` → ``path.i+1`` and restart ``path`` empty."""
        self._handle.close()
        self._handle = None
        if self.keep > 0:
            oldest = f"{self.path}.{self.keep}"
            if os.path.exists(oldest):
                os.remove(oldest)
            for index in range(self.keep - 1, 0, -1):
                source = f"{self.path}.{index}"
                if os.path.exists(source):
                    os.replace(source, f"{self.path}.{index + 1}")
            os.replace(self.path, f"{self.path}.1")
        else:
            os.remove(self.path)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._written = 0

    def close(self) -> None:
        """Flush and close the output file."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def close_sink(sink: object) -> None:
    """Call ``close()`` on sinks that have one."""
    close = getattr(sink, "close", None)
    if callable(close):
        close()
