"""Pluggable destinations for spans and events.

A sink is anything with ``emit(record: dict)`` (and optionally
``close()``).  Records are either spans (``{"type": "span", ...}``, see
:mod:`repro.obs.tracing`) or point events (``{"type": "event", "kind":
..., "cycle": ..., "detail": ...}``).  ``detail`` may be a live object
(a :class:`~repro.storage.tuples.StoredTuple`, a ``FiredRule``); sinks
that serialize must stringify it.
"""

from __future__ import annotations

import json
import sys
from collections import deque
from typing import IO, Protocol


class Sink(Protocol):
    """Destination for observability records."""

    def emit(self, record: dict) -> None:
        """Receive one span or event record."""


class CallbackSink:
    """Adapts a plain callable into a sink."""

    def __init__(self, callback) -> None:
        self.callback = callback

    def emit(self, record: dict) -> None:
        self.callback(record)


class RingBufferSink:
    """Keeps the last *capacity* records in memory (flight recorder)."""

    def __init__(self, capacity: int = 10_000) -> None:
        self._buffer: deque[dict] = deque(maxlen=capacity)

    def emit(self, record: dict) -> None:
        self._buffer.append(record)

    def records(self) -> list[dict]:
        """All buffered records, oldest first."""
        return list(self._buffer)

    def spans(self, name: str | None = None) -> list[dict]:
        """Buffered spans, optionally filtered by span name."""
        return [
            r
            for r in self._buffer
            if r.get("type") == "span" and (name is None or r["name"] == name)
        ]

    def events(self, kind: str | None = None) -> list[dict]:
        """Buffered point events, optionally filtered by kind."""
        return [
            r
            for r in self._buffer
            if r.get("type") == "event"
            and (kind is None or r.get("kind") == kind)
        ]

    def __len__(self) -> int:
        return len(self._buffer)

    def clear(self) -> None:
        """Drop all buffered records."""
        self._buffer.clear()


class ConsoleSink:
    """Human-readable rendering, one line per record, indented by depth."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self.stream = stream or sys.stderr

    def emit(self, record: dict) -> None:
        if record.get("type") == "span":
            indent = "  " * record.get("depth", 0)
            attrs = " ".join(
                f"{k}={v}" for k, v in record.get("attrs", {}).items()
            )
            line = (
                f"{indent}{record['name']} {record['dur_us']:.1f}us"
                + (f" [{attrs}]" if attrs else "")
            )
        else:
            detail = record.get("detail")
            line = f"* {record.get('kind')} cycle={record.get('cycle')}" + (
                f" {detail}" if detail is not None else ""
            )
        print(line, file=self.stream)


class JsonlFileSink:
    """Appends records as JSON lines; non-JSON values are stringified."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: IO[str] | None = None

    def emit(self, record: dict) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, default=str) + "\n")

    def close(self) -> None:
        """Flush and close the output file."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def close_sink(sink: object) -> None:
    """Call ``close()`` on sinks that have one."""
    close = getattr(sink, "close", None)
    if callable(close):
        close()
