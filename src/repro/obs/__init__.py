"""repro.obs — structured tracing, metrics and run manifests.

A zero-dependency observability layer shared by the engine, the match
strategies, the transaction scheduler, the storage backends and the
benchmarks:

* :mod:`repro.obs.tracing` — nested timed spans (Match/Select/Act, match
  maintenance, lock/commit, SQL statements);
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms, absorbing :class:`repro.instrument.Counters`;
* :mod:`repro.obs.hist` — power-of-two latency histograms with
  percentile estimation (cycle, batch-flush, fsync latency);
* :mod:`repro.obs.sinks` — ring buffer, console, JSON-lines file (with
  size rotation);
* :mod:`repro.obs.otel` — gated OpenTelemetry bridge (``--otel``);
* :mod:`repro.obs.manifest` — ``runs/<run_id>/manifest.json`` records;
* :mod:`repro.obs.flame` — collapsed-stack (flamegraph) folding of span
  streams, for ``repro stats --flamegraph``;
* :mod:`repro.obs.stats` — per-rule per-phase cost aggregation;
* :mod:`repro.obs.xray` — token provenance (``repro explain``), why-not
  analysis and the ``repro top`` dashboard aggregator.

The facade is :class:`Observability`: one object bundling a tracer, a
metrics registry and a sink list.  It is **disabled by default** — with
no sink attached and metrics collection off, every instrumentation point
reduces to a single predicate check, so the un-observed hot paths cost
what they did before this layer existed.
"""

from __future__ import annotations

import time

from repro.obs.flame import fold_spans, fold_trace_file, render_folded
from repro.obs.hist import (
    LOG2_BUCKET_COUNT,
    SNAPSHOT_PERCENTILES,
    Log2Histogram,
    log2_buckets,
    percentile_from_buckets,
)
from repro.obs.manifest import (
    RunManifest,
    git_sha,
    latency_summary,
    new_run_id,
    program_hash,
    repro_footer,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_US,
    SIZE_BUCKETS,
    CounterMetric,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.otel import OtelBridgeSink, make_otel_sink
from repro.obs.sinks import (
    CallbackSink,
    ConsoleSink,
    JsonlFileSink,
    RingBufferSink,
    Sink,
    close_sink,
)
from repro.obs.stats import PhaseStatsSink
from repro.obs.tracing import NULL_SPAN, NullSpan, Span, Tracer
from repro.obs.xray import (
    Lineage,
    LineageRecorder,
    TopAggregator,
    WhyNot,
    render_support,
    render_top,
    why_not,
)


class Observability:
    """Tracer + metrics + sinks behind one enable check.

    ``enabled`` is the master predicate hot paths test before doing any
    instrumentation work; it is true when a sink is attached or metrics
    collection was requested.  Spans additionally require a sink (they
    have nowhere else to go), so :meth:`span` hands out a no-op span in
    metrics-only mode.
    """

    def __init__(
        self,
        sinks: tuple | list = (),
        metrics: MetricsRegistry | None = None,
        collect_metrics: bool = False,
    ) -> None:
        self.metrics = metrics or MetricsRegistry()
        self._collect_metrics = collect_metrics
        self._sinks: list = []
        self.tracer = Tracer(self._sinks)
        for sink in sinks:
            self.add_sink(sink)

    # -- enablement -----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when any instrumentation should run at all."""
        return self._collect_metrics or bool(self._sinks)

    def enable_metrics(self) -> None:
        """Turn on metric collection without attaching a sink."""
        self._collect_metrics = True

    # -- sinks ----------------------------------------------------------------

    def add_sink(self, sink) -> None:
        """Attach *sink*; this also enables tracing."""
        self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        """Detach *sink* (ValueError when not attached)."""
        self._sinks.remove(sink)

    @property
    def sinks(self) -> list:
        """The attached sinks (live list — do not mutate directly)."""
        return self._sinks

    # -- spans and events -----------------------------------------------------

    def span(self, name: str, **attrs):
        """Open a span; a shared no-op when no sink is attached."""
        return self.tracer.span(name, **attrs)

    def event(self, kind: str, cycle: int = 0, detail=None, **fields) -> None:
        """Emit a point event to every sink."""
        if not self._sinks:
            return
        record = {
            "type": "event",
            "kind": kind,
            "cycle": cycle,
            "detail": detail,
            "ts": time.time(),
        }
        if fields:
            record.update(fields)
        for sink in self._sinks:
            sink.emit(record)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Close every sink that supports closing."""
        for sink in self._sinks:
            close_sink(sink)


__all__ = [
    "CallbackSink",
    "ConsoleSink",
    "CounterMetric",
    "Gauge",
    "Histogram",
    "JsonlFileSink",
    "LATENCY_BUCKETS_US",
    "LOG2_BUCKET_COUNT",
    "Lineage",
    "LineageRecorder",
    "Log2Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "Observability",
    "OtelBridgeSink",
    "PhaseStatsSink",
    "RingBufferSink",
    "RunManifest",
    "SIZE_BUCKETS",
    "SNAPSHOT_PERCENTILES",
    "Sink",
    "Span",
    "TopAggregator",
    "Tracer",
    "WhyNot",
    "close_sink",
    "fold_spans",
    "fold_trace_file",
    "git_sha",
    "latency_summary",
    "log2_buckets",
    "make_otel_sink",
    "new_run_id",
    "percentile_from_buckets",
    "program_hash",
    "render_folded",
    "render_support",
    "render_top",
    "repro_footer",
    "why_not",
]
