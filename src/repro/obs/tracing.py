"""Nested timed spans for the Match/Select/Act phases and below.

The paper costs its algorithms in *operations*; wall-clock attribution is
the missing half — "where did cycle 37 spend its time?".  A
:class:`Tracer` produces nested spans (``cycle`` → ``select``/``act`` →
``match.*`` → ``storage.sql``) that are fanned out to the sinks of the
owning :class:`~repro.obs.Observability`.

Spans are emitted on *exit* (post-order), so a child appears before its
parent in the stream; each carries the nesting ``depth`` at entry so
consumers can rebuild the tree.  When no sink is attached,
:meth:`Tracer.span` returns a shared no-op span, keeping the disabled
path allocation-free.
"""

from __future__ import annotations

import time


class NullSpan:
    """Shared no-op span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, key: str, value: object) -> None:
        """Discard an attribute (tracing is off)."""

    def add(self, key: str, delta: int = 1) -> None:
        """Discard an increment (tracing is off)."""


#: The singleton handed out by a disabled tracer.
NULL_SPAN = NullSpan()


class Span:
    """One timed region; use as a context manager via :meth:`Tracer.span`.

    Attributes set with :meth:`set`/:meth:`add` are merged over the
    tracer's ambient context (explicit attributes win), so match work
    triggered while a rule fires is attributed to that rule without the
    strategies knowing about the engine.
    """

    __slots__ = ("_tracer", "name", "attrs", "_start", "_wall", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        self._wall = 0.0
        self._depth = 0

    def __enter__(self) -> "Span":
        self._depth = self._tracer._depth
        self._tracer._depth += 1
        self._wall = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        duration_us = (time.perf_counter() - self._start) * 1e6
        tracer = self._tracer
        tracer._depth -= 1
        merged = dict(tracer.context)
        merged.update(self.attrs)
        tracer._emit(
            {
                "type": "span",
                "name": self.name,
                "ts": self._wall,
                "dur_us": duration_us,
                "depth": self._depth,
                "attrs": merged,
            }
        )
        return False

    def set(self, key: str, value: object) -> None:
        """Attach/overwrite one attribute."""
        self.attrs[key] = value

    def add(self, key: str, delta: int = 1) -> None:
        """Increment a numeric attribute (default 0)."""
        self.attrs[key] = self.attrs.get(key, 0) + delta


class Tracer:
    """Produces spans and fans the finished records out to sinks.

    The sink list is shared by reference with the owning
    :class:`~repro.obs.Observability`, so attaching a sink there enables
    tracing here.
    """

    def __init__(self, sinks: list | None = None) -> None:
        self._sinks = sinks if sinks is not None else []
        #: Ambient attributes merged into every span (e.g. the firing rule).
        self.context: dict[str, object] = {}
        self._depth = 0

    @property
    def enabled(self) -> bool:
        """True when at least one sink will receive spans."""
        return bool(self._sinks)

    def span(self, name: str, **attrs: object) -> Span | NullSpan:
        """Open a span named *name*; returns :data:`NULL_SPAN` if disabled."""
        if not self._sinks:
            return NULL_SPAN
        return Span(self, name, attrs)

    def set_context(self, **attrs: object) -> None:
        """Set ambient attributes inherited by subsequent spans."""
        self.context.update(attrs)

    def clear_context(self, *keys: str) -> None:
        """Drop ambient attributes (all of them when no keys given)."""
        if not keys:
            self.context.clear()
            return
        for key in keys:
            self.context.pop(key, None)

    def _emit(self, record: dict) -> None:
        for sink in self._sinks:
            sink.emit(record)
