"""OpenTelemetry bridge: forward the span stream to an OTel tracer.

The repo's observability layer is deliberately zero-dependency, so the
bridge is *gated*: :func:`make_otel_sink` imports ``opentelemetry`` only
when called and returns ``None`` when the distribution is absent —
``repro run --otel`` warns and continues without it.  Nothing in this
module imports the SDK at module load time, so merely having the file on
the path costs nothing.

Because repro spans are emitted on *exit* (post-order, see
:mod:`repro.obs.tracing`), the bridge cannot use the SDK's
context-manager API; instead each record becomes an OTel span with
explicit start/end timestamps reconstructed from ``ts`` (wall-clock
start, seconds) and ``dur_us``.  Point events become zero-duration spans
named ``event.<kind>``.  Parent/child links are not reconstructed — the
``depth`` attribute is forwarded so a backend can still group them.
"""

from __future__ import annotations

#: Attribute value types OTel accepts verbatim; anything else is str()ed.
_PLAIN = (bool, int, float, str)


class OtelBridgeSink:
    """A sink that replays repro span/event records into an OTel tracer.

    *tracer* is anything with OTel's ``start_span(name, start_time=...)``
    returning a span with ``set_attribute(key, value)`` and
    ``end(end_time=...)`` — the real SDK tracer, or a test double.
    Timestamps are integer nanoseconds since the epoch, per the OTel API.
    """

    def __init__(self, tracer) -> None:
        self.tracer = tracer
        self.forwarded = 0

    def emit(self, record: dict) -> None:
        kind = record.get("type")
        if kind == "span":
            name = record.get("name", "span")
            attrs = dict(record.get("attrs") or {})
            attrs["depth"] = record.get("depth", 0)
            start_s = record.get("ts", 0.0)
            duration_us = record.get("dur_us", 0.0)
        elif kind == "event":
            name = f"event.{record.get('kind', 'unknown')}"
            attrs = {
                key: value
                for key, value in record.items()
                if key not in ("type", "kind", "ts") and value is not None
            }
            start_s = record.get("ts", 0.0)
            duration_us = 0.0
        else:
            return
        start_ns = int(start_s * 1e9)
        span = self.tracer.start_span(name, start_time=start_ns)
        for key, value in attrs.items():
            span.set_attribute(
                key, value if isinstance(value, _PLAIN) else str(value)
            )
        span.end(end_time=start_ns + int(duration_us * 1_000))
        self.forwarded += 1


def make_otel_sink(tracer=None, service_name: str = "repro"):
    """An :class:`OtelBridgeSink`, or ``None`` when OTel is unavailable.

    With *tracer* given (tests, embedders) no import happens at all.
    Otherwise the ``opentelemetry`` API package is imported lazily and
    the global tracer provider supplies a tracer named *service_name*;
    a missing distribution returns ``None`` so callers can degrade with
    a warning instead of an ImportError.
    """
    if tracer is None:
        try:
            from opentelemetry import trace
        except ImportError:
            return None
        tracer = trace.get_tracer(service_name)
    return OtelBridgeSink(tracer)
