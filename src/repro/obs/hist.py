"""Fixed-bucket log2 latency histograms with percentile estimation.

Latency distributions are heavy-tailed, so the linear decades of
:data:`repro.obs.metrics.LATENCY_BUCKETS_US` lose all resolution exactly
where operators look (the p95/p99 shoulder).  A :class:`Log2Histogram`
uses power-of-two bucket bounds instead: bucket *i* covers
``(2**(i-1), 2**i]`` microseconds, so every doubling of latency gets its
own bucket, the bucket index is one ``bit_length()`` call (no scan), and
28 buckets span sub-microsecond to over two minutes.

:func:`percentile_from_buckets` estimates quantiles from any
upper-inclusive bucket layout by linear interpolation inside the bucket
holding the target rank — the classic Prometheus ``histogram_quantile``
estimate.  It works for both histogram flavours and for snapshots that
round-tripped through JSON (the drift test in ``tests/obs`` pins the
p99 round-trip through sinks and manifests).
"""

from __future__ import annotations

from repro.obs.metrics import Histogram

#: Number of power-of-two buckets; the last finite bound is 2**27 us
#: (~134 s) — anything slower lands in the overflow bucket.
LOG2_BUCKET_COUNT = 28

#: Percentiles rendered into ``as_dict`` snapshots (and manifests).
SNAPSHOT_PERCENTILES = (0.50, 0.95, 0.99)


def log2_buckets(count: int = LOG2_BUCKET_COUNT) -> tuple[float, ...]:
    """Upper-inclusive power-of-two bounds: 1, 2, 4, ... 2**(count-1)."""
    return tuple(float(1 << i) for i in range(count))


def percentile_from_buckets(
    buckets: tuple[float, ...],
    counts: list[int],
    count: int,
    q: float,
    max_value: float | None = None,
) -> float:
    """Estimate the *q*-quantile (0 < q <= 1) of a bucketed distribution.

    *counts* has one entry per bound plus the overflow bucket.  The value
    is interpolated linearly inside the bucket containing the target rank
    (lower bound = previous bucket's bound, 0 for the first).  Ranks
    landing in the overflow bucket report *max_value* when known, else
    the last finite bound — an estimate is still more useful than +Inf.
    """
    if count <= 0:
        return 0.0
    rank = q * count
    cumulative = 0.0
    for i, bound in enumerate(buckets):
        previous = cumulative
        cumulative += counts[i]
        if cumulative >= rank:
            lower = buckets[i - 1] if i > 0 else 0.0
            if counts[i] == 0:
                return bound
            fraction = (rank - previous) / counts[i]
            return lower + (bound - lower) * fraction
    if max_value is not None:
        return float(max_value)
    return float(buckets[-1]) if buckets else 0.0


class Log2Histogram(Histogram):
    """A :class:`~repro.obs.metrics.Histogram` over power-of-two buckets.

    ``observe()`` finds the bucket in O(1) via ``bit_length`` instead of
    scanning the bound list, so it is cheap enough for per-cycle and
    per-fsync latency points.  Inherits count/sum/min/max bookkeeping and
    the JSON snapshot shape (plus the percentile estimates every
    histogram snapshot now carries).
    """

    __slots__ = ()

    def __init__(self, name: str, buckets: int = LOG2_BUCKET_COUNT) -> None:
        super().__init__(name, log2_buckets(buckets))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 1.0:
            index = 0
        else:
            # Bucket i is (2**(i-1), 2**i]; ceil(log2(v)) via bit_length.
            whole = int(value)
            index = whole.bit_length() - (1 if whole == value and
                                          whole & (whole - 1) == 0 else 0)
            if index >= len(self.buckets):
                index = len(self.counts) - 1
        self.counts[index] += 1
