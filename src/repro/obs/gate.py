"""Metric-snapshot regression gate.

Runs a canned, deterministic program with metric collection enabled and
compares the resulting operation counters/gauges against a checked-in
baseline.  The gate fails when a cost counter *grows* beyond tolerance — a
silent algorithmic regression (more comparisons, more SQL statements, more
node activations for the same program) — and also when a tracked metric
disappears or the final correctness gauges (WM size, conflict-set size)
drift at all.

Timing histograms and anything measured in wall-clock units are excluded:
the gate guards *operation counts*, which are deterministic for a fixed
program, strategy and backend.

Usage:

    python -m repro.obs.gate --baseline tests/baselines/metrics_baseline.json
    python -m repro.obs.gate --update   # regenerate the baseline in place

Exit status 0 = pass, 1 = regression (CI fails the build).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

#: Default canned workload (must stay deterministic).
DEFAULT_PROGRAM = "examples/orders.ops"
DEFAULT_BASELINE = "tests/baselines/metrics_baseline.json"
DEFAULT_STRATEGY = "patterns"
DEFAULT_BACKEND = "sqlite"
DEFAULT_BATCH_SIZE = 1

#: Allowed relative growth of a cost counter before the gate fails.
DEFAULT_TOLERANCE = 0.10

#: Metric-name suffixes that measure time, not work — never gated.
_TIME_SUFFIXES = ("_us", "_seconds", "_ms")

#: Gauges that must match exactly: the run's observable outcome.
EXACT_GAUGES = ("engine.wm_size", "engine.conflict_set")


def collect_metrics(
    program_path: str = DEFAULT_PROGRAM,
    strategy: str = DEFAULT_STRATEGY,
    backend: str = DEFAULT_BACKEND,
    batch_size: int = DEFAULT_BATCH_SIZE,
    max_cycles: int = 10_000,
) -> dict:
    """Run the canned program and return its gated metric values.

    The result maps metric name to number: every counter, plus every gauge
    (including the absorbed ``ops.*`` operation counters), with wall-clock
    metrics filtered out.
    """
    from repro.engine.interpreter import ProductionSystem
    from repro.obs import Observability

    obs = Observability(collect_metrics=True)
    system = ProductionSystem(
        Path(program_path).read_text(),
        strategy=strategy,
        backend=backend,
        obs=obs,
        batch_size=batch_size,
    )
    system.run(max_cycles=max_cycles)
    snapshot = system.snapshot_metrics()
    values: dict[str, float] = {}
    for section in ("counters", "gauges"):
        for name, value in snapshot.get(section, {}).items():
            if name.endswith(_TIME_SUFFIXES):
                continue
            values[name] = value
    # Histogram *counts* are operation counts — one observation per
    # cycle, delta batch, WM flush, fsync — and thus deterministic even
    # when the observed values are wall-clock.  Gating them catches a
    # latency instrument that silently stops recording (or
    # double-records) without gating any timing value itself.
    for name, summary in snapshot.get("histograms", {}).items():
        values[f"hist.{name}.count"] = summary.get("count", 0)
    return values


@dataclass
class Violation:
    """One gate failure."""

    metric: str
    baseline: float | None
    current: float | None
    reason: str

    def __str__(self) -> str:
        return (
            f"{self.metric}: {self.reason} "
            f"(baseline={self.baseline}, current={self.current})"
        )


def compare(
    baseline: dict,
    current: dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[Violation]:
    """Gate *current* against *baseline*; returns the violations.

    * a tracked metric that vanished → violation (instrumentation broke);
    * an :data:`EXACT_GAUGES` entry that changed at all → violation
      (the program's outcome changed);
    * a cost counter that grew more than *tolerance* relative to the
      baseline → violation.  Decreases are improvements and pass — run
      ``--update`` to bank them.
    """
    violations: list[Violation] = []
    for metric, base_value in sorted(baseline.items()):
        if metric not in current:
            violations.append(
                Violation(metric, base_value, None, "metric disappeared")
            )
            continue
        value = current[metric]
        if metric in EXACT_GAUGES:
            if value != base_value:
                violations.append(
                    Violation(metric, base_value, value, "outcome drifted")
                )
            continue
        allowed = abs(base_value) * tolerance
        if value > base_value + allowed:
            grown = (
                (value - base_value) / base_value * 100.0
                if base_value
                else float("inf")
            )
            violations.append(
                Violation(
                    metric,
                    base_value,
                    value,
                    f"grew {grown:.1f}% (> {tolerance * 100:.0f}% tolerance)",
                )
            )
    return violations


def run_gate(
    baseline_path: str = DEFAULT_BASELINE,
    tolerance: float = DEFAULT_TOLERANCE,
    update: bool = False,
    **collect_kwargs,
) -> tuple[bool, list[Violation], dict]:
    """Collect, compare (or rewrite) the baseline; returns (ok, violations,
    current values)."""
    current = collect_metrics(**collect_kwargs)
    path = Path(baseline_path)
    if update:
        payload = {
            "program": collect_kwargs.get("program_path", DEFAULT_PROGRAM),
            "strategy": collect_kwargs.get("strategy", DEFAULT_STRATEGY),
            "backend": collect_kwargs.get("backend", DEFAULT_BACKEND),
            "tolerance": tolerance,
            "metrics": current,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return True, [], current
    payload = json.loads(path.read_text())
    violations = compare(
        payload["metrics"], current, payload.get("tolerance", tolerance)
    )
    return not violations, violations, current


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.gate", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--program", default=DEFAULT_PROGRAM)
    parser.add_argument("--strategy", default=DEFAULT_STRATEGY)
    parser.add_argument("--backend", default=DEFAULT_BACKEND)
    parser.add_argument("--batch-size", type=int, default=DEFAULT_BATCH_SIZE)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current run",
    )
    args = parser.parse_args(argv)
    ok, violations, current = run_gate(
        baseline_path=args.baseline,
        tolerance=args.tolerance,
        update=args.update,
        program_path=args.program,
        strategy=args.strategy,
        backend=args.backend,
        batch_size=args.batch_size,
    )
    if args.update:
        print(f"baseline updated: {args.baseline} ({len(current)} metrics)")
        return 0
    if ok:
        print(f"metrics gate passed ({len(current)} metrics checked)")
        return 0
    print("metrics gate FAILED:", file=sys.stderr)
    for violation in violations:
        print(f"  {violation}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
