"""Run manifests: everything about a run, written to ``runs/<run_id>/``.

Following the reproducibility idiom (see SNIPPETS.md), a run leaves no
hidden state behind: the manifest records the program hash, match
strategy, resolution policy, git SHA, the final metrics snapshot and the
paths of any trace/metrics artifacts, so a result in a report can be
traced back to the exact configuration that produced it.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from dataclasses import dataclass, field


def git_sha(cwd: str | None = None) -> str | None:
    """The current git commit SHA, or None outside a repository."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


def program_hash(source: str) -> str:
    """Stable short hash of an OPS program's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


def latency_summary(metrics: dict) -> dict:
    """Per-instrument latency percentiles from a metrics snapshot.

    Collects every histogram whose name marks it as a wall-clock
    instrument (``*_us``) and reports its count, mean and the
    p50/p95/p99 estimates the snapshot carries — the at-a-glance
    latency record a manifest reader wants without digging through
    bucket arrays.  Tolerates snapshots from older runs whose
    histograms predate the ``percentiles`` key.
    """
    summary: dict[str, dict] = {}
    for name, data in metrics.get("histograms", {}).items():
        if not name.endswith("_us") or not isinstance(data, dict):
            continue
        entry = {
            "count": data.get("count", 0),
            "mean_us": data.get("mean", 0.0),
        }
        for label, value in (data.get("percentiles") or {}).items():
            entry[f"{label}_us"] = value
        summary[name] = entry
    return summary


def new_run_id(clock: float | None = None) -> str:
    """A sortable, collision-resistant run identifier."""
    now = time.time() if clock is None else clock
    stamp = time.strftime("%Y%m%d-%H%M%S", time.localtime(now))
    suffix = hashlib.sha256(
        f"{now!r}-{os.getpid()}".encode()
    ).hexdigest()[:6]
    return f"{stamp}-{suffix}"


@dataclass
class RunManifest:
    """The reproducibility record of one run."""

    run_id: str = field(default_factory=new_run_id)
    program_hash: str = ""
    program_path: str | None = None
    strategy: str = ""
    resolution: str = ""
    backend: str = ""
    firing: str = ""
    batch_size: int = 1
    compile: str = "auto"
    workers: int = 1
    seed: int = 0
    command: list[str] = field(default_factory=list)
    git_sha: str | None = None
    created_at: str = field(
        default_factory=lambda: time.strftime("%Y-%m-%dT%H:%M:%S%z")
    )
    metrics: dict = field(default_factory=dict)
    trace_path: str | None = None
    metrics_path: str | None = None
    result: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready view of the manifest."""
        return {
            "run_id": self.run_id,
            "created_at": self.created_at,
            "git_sha": self.git_sha,
            "program": {
                "path": self.program_path,
                "hash": self.program_hash,
            },
            "config": {
                "strategy": self.strategy,
                "resolution": self.resolution,
                "backend": self.backend,
                "firing": self.firing,
                "batch_size": self.batch_size,
                "compile": self.compile,
                "workers": self.workers,
                "seed": self.seed,
            },
            "command": self.command,
            "artifacts": {
                "trace": self.trace_path,
                "metrics": self.metrics_path,
            },
            "result": self.result,
            "latency": latency_summary(self.metrics),
            "metrics": self.metrics,
            "extra": self.extra,
        }

    def write(self, base_dir: str = "runs") -> str:
        """Write ``<base_dir>/<run_id>/manifest.json``; returns its path.

        The final metrics snapshot is also written beside it as
        ``metrics.json`` when present, and ``metrics_path`` is filled in.
        """
        run_dir = os.path.join(base_dir, self.run_id)
        os.makedirs(run_dir, exist_ok=True)
        if self.metrics and self.metrics_path is None:
            self.metrics_path = os.path.join(run_dir, "metrics.json")
            with open(self.metrics_path, "w", encoding="utf-8") as handle:
                json.dump(self.metrics, handle, indent=2, default=str)
        path = os.path.join(run_dir, "manifest.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, default=str)
        return path


def repro_footer(strategies: list[str] | None = None) -> str:
    """One-line repro footer for report tables: git SHA, timestamp, set."""
    import platform

    parts = [
        f"git {git_sha() or 'unknown'}",
        time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        f"python {platform.python_version()}",
    ]
    if strategies:
        parts.append("strategies: " + ", ".join(strategies))
    return "repro: " + " | ".join(parts)
