"""Engine X-ray: token provenance, why-not analysis and the live top view.

The paper's §1 frames matching as trigger support and materialized-view
maintenance inside a DBMS.  For views, operators get lineage ("why is
this row here?") and EXPLAIN plans; this module gives the production
system the same affordances:

* :class:`LineageRecorder` — attached to the conflict set when a run is
  created with ``lineage=True``, it records for every instantiation a
  compact :class:`Lineage`: the supporting WM tuples (relation, tid,
  timetag, values), the static join-node path that derived it, the cycle
  it appeared in, and the WAL sequence number current at that moment (so
  a provenance question can be answered against the durable log).  The
  join path costs nothing per token: this network compiles one *static*
  linear chain per rule (LHS order), recorded at build time in
  :attr:`repro.match.rete.builder.ReteNetwork.rule_chains`, so the path
  is a per-rule constant, not a per-token capture.  With ``lineage``
  off, no listener is registered and the hot paths are untouched.
* :func:`why_not` — the negative EXPLAIN: for a rule with no
  instantiation, walk its join chain and name the first failing alpha
  test, the first empty join, or the negated condition whose witnesses
  block it (non-Rete strategies fall back to the per-condition
  check-bit diagnosis of :meth:`repro.match.base.MatchStrategy.explain`).
* :class:`TopAggregator` / :func:`render_top` — fold a trace stream
  (live or replayed) into a refreshing console dashboard: cycles/sec,
  p50/p95/p99 cycle latency, hottest join nodes, conflict-set size and
  WAL lag — the numbers the serve/parallel-match roadmap items will
  watch under load.

Surfaced on the command line as ``repro explain`` (``--instantiation``,
``--why-not``, ``--network``, ``--dot``) and ``repro top``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.obs.hist import Log2Histogram

#: One support slot: (relation, tid, timetag, values) or None (negated CE).
SupportSlot = tuple[str, int, int, tuple] | None


@dataclass
class Lineage:
    """Provenance of one conflict-set instantiation."""

    rule: str
    key: tuple
    slots: tuple
    bindings: tuple
    #: Engine cycle current when the instantiation entered the conflict set
    #: (0 = during setup / initial WM load).
    cycle: int
    #: Last WAL sequence number durably *appended* when the instantiation
    #: appeared; ``None`` when the run has no WAL attached.
    wal_seq: int | None
    #: Static join-node path (two-input node names, LHS order); empty for
    #: non-Rete strategies.
    path: tuple[str, ...]
    fired_cycles: list[int] = field(default_factory=list)
    removed_cycle: int | None = None

    @property
    def live(self) -> bool:
        return self.removed_cycle is None

    def display(self) -> str:
        slots = ", ".join(
            "-" if slot is None else f"{slot[0]}#{slot[1]}"
            for slot in self.slots
        )
        return f"{self.rule}[{slots}]"


class LineageRecorder:
    """Conflict-set listener capturing :class:`Lineage` per instantiation.

    Construction registers the listener; creation order matters — the
    engine attaches it *before* loading initial WM elements so even
    setup-time instantiations carry provenance.  The recorder never
    mutates engine state, so conflict sets with and without a recorder
    are bit-identical (pinned by the differential fuzz matrix).
    """

    def __init__(self, system) -> None:
        self._system = system
        #: Latest lineage per instantiation identity key.  Entries survive
        #: retraction (``removed_cycle`` set) so `explain` can show the
        #: history of a rule whose support came and went.
        self.entries: dict[tuple, Lineage] = {}
        self._paths: dict[str, tuple[str, ...]] = {}
        system.conflict_set.add_listener(self._on_added, self._on_removed)

    # -- conflict-set callbacks ---------------------------------------------

    def _on_added(self, instantiation) -> None:
        wal = getattr(self._system.wm, "wal", None)
        self.entries[instantiation.key] = Lineage(
            rule=instantiation.rule_name,
            key=instantiation.key,
            slots=tuple(
                None
                if wme is None
                else (wme.relation, wme.tid, wme.timetag, tuple(wme.values))
                for wme in instantiation.wmes
            ),
            bindings=instantiation.bindings,
            cycle=self._system._current_cycle,
            wal_seq=getattr(wal, "last_seq", None),
            path=self.path_of(instantiation.rule_name),
        )

    def _on_removed(self, instantiation) -> None:
        entry = self.entries.get(instantiation.key)
        if entry is not None:
            entry.removed_cycle = self._system._current_cycle

    def note_fired(self, key: tuple, cycle: int) -> None:
        """Record that the instantiation identified by *key* fired."""
        entry = self.entries.get(key)
        if entry is not None:
            entry.fired_cycles.append(cycle)

    # -- queries -------------------------------------------------------------

    def path_of(self, rule: str) -> tuple[str, ...]:
        """The rule's static join-node path (empty for non-Rete)."""
        cached = self._paths.get(rule)
        if cached is None:
            network = getattr(self._system.strategy, "network", None)
            chains = getattr(network, "rule_chains", None) or {}
            chain = chains.get(rule)
            cached = (
                tuple(node.name for _, _, node in chain) if chain else ()
            )
            self._paths[rule] = cached
        return cached

    def for_rule(self, rule: str) -> list[Lineage]:
        """All recorded lineages of *rule*, in first-seen order."""
        return [e for e in self.entries.values() if e.rule == rule]

    def backfill_wal_seq(self) -> None:
        """Stamp WAL-less entries with the log's current sequence number.

        The durability layer attaches the WAL *after* the system loads its
        initial elements, so setup-time instantiations are recorded before
        a sequence number exists.  :meth:`repro.recovery.session.DurableRun.start`
        calls this once the initial WM batch is durable: every entry still
        holding ``None`` predates (or is covered by) the setup boundary.
        """
        wal = getattr(self._system.wm, "wal", None)
        seq = getattr(wal, "last_seq", None)
        if seq is None:
            return
        for entry in self.entries.values():
            if entry.wal_seq is None:
                entry.wal_seq = seq


def render_support(lineage: Lineage, conditions=None) -> str:
    """Render one lineage as a human-readable support chain.

    *conditions* (the rule's analyzed conditions, optional) adds each
    slot's class and polarity; without it the WM facts alone are shown.
    """
    header = f"{lineage.display()}  cycle={lineage.cycle}"
    if lineage.wal_seq is not None:
        header += f" wal_seq={lineage.wal_seq}"
    if not lineage.live:
        header += f"  (retracted at cycle {lineage.removed_cycle})"
    lines = [header]
    for index, slot in enumerate(lineage.slots):
        step = (
            f" via {lineage.path[index]}" if index < len(lineage.path) else ""
        )
        label = f"  CE{index + 1}"
        if conditions is not None and index < len(conditions):
            condition = conditions[index]
            polarity = "-" if condition.negated else " "
            label += f" {polarity}({condition.class_name})"
        if slot is None:
            lines.append(f"{label}: (no element — negated CE holds){step}")
        else:
            relation, tid, timetag, values = slot
            lines.append(
                f"{label}: {relation}#{tid} t={timetag} "
                f"values={values}{step}"
            )
    if lineage.bindings:
        bound = ", ".join(f"<{n}>={v}" for n, v in lineage.bindings)
        lines.append(f"  bindings: {bound}")
    if lineage.fired_cycles:
        fired = ", ".join(str(c) for c in lineage.fired_cycles)
        lines.append(f"  fired at cycle(s): {fired}")
    return "\n".join(lines)


@dataclass
class WhyNot:
    """Result of :func:`why_not`: what blocks a rule from matching."""

    rule: str
    satisfied: bool
    #: ``"alpha"`` (no WM element passes the CE's alpha tests), ``"join"``
    #: (both inputs non-empty, no pair passes the join tests),
    #: ``"negation"`` (every partial match is blocked by witnesses),
    #: ``"join-combination"`` (non-Rete: each CE satisfiable in isolation
    #: but no consistent combination), or ``None`` when satisfied.
    kind: str | None = None
    cond_number: int | None = None
    class_name: str | None = None
    negated: bool = False
    message: str = ""
    #: An example blocking witness (``"relation#tid"``) for negation.
    witness: str | None = None

    def __str__(self) -> str:
        if self.satisfied:
            return f"{self.rule}: satisfied — no blocking condition"
        lines = [f"{self.rule}: not satisfied"]
        lines.append(f"  blocked at CE{self.cond_number}: {self.message}")
        if self.witness is not None:
            lines.append(f"  example blocking witness: {self.witness}")
        return "\n".join(lines)


def why_not(system, rule_name: str) -> WhyNot:
    """Name the first condition element blocking *rule_name*.

    On a Rete-family strategy this walks the rule's compiled join chain
    through the *live* memories — the answer points at an actual network
    node, not a re-derivation.  Other strategies fall back to the
    per-condition diagnosis (necessary-condition check bits).
    """
    if system.conflict_set.for_rule(rule_name):
        return WhyNot(rule=rule_name, satisfied=True)
    network = getattr(system.strategy, "network", None)
    chain = (getattr(network, "rule_chains", None) or {}).get(rule_name)
    if chain:
        return _why_not_rete(system, rule_name, chain)
    return _why_not_diagnosis(system, rule_name)


def _why_not_rete(system, rule_name: str, chain) -> WhyNot:
    def blocked(condition, kind, message, witness=None):
        return WhyNot(
            rule=rule_name,
            satisfied=False,
            kind=kind,
            cond_number=condition.cond_number,
            class_name=condition.class_name,
            negated=condition.negated,
            message=message,
            witness=witness,
        )

    for index, (condition, amem, node) in enumerate(chain):
        if index + 1 < len(chain):
            out_count = len(chain[index + 1][2].bmem)
        else:
            out_count = len(system.conflict_set.for_rule(rule_name))
        if out_count:
            continue
        display = str(condition.ce).strip("()-")
        if condition.negated:
            witness = None
            results = getattr(node, "results", {})
            for matches in results.values():
                if matches:
                    relation, tid = next(iter(matches))
                    witness = f"{relation}#{tid}"
                    break
            if len(node.bmem) == 0:
                # Nothing even reaches the negation: blame upstream.
                return blocked(
                    condition, "join",
                    f"no partial match reaches the negated CE "
                    f"({display}) — upstream join {node.bmem.name} is empty",
                )
            return blocked(
                condition, "negation",
                f"negated CE ({display}) is blocked: every partial match "
                f"at {node.name} has live witnesses in {amem.name} "
                f"({len(amem)} element(s))",
                witness=witness,
            )
        if len(amem) == 0:
            return blocked(
                condition, "alpha",
                f"no WM element of class {condition.class_name!r} passes "
                f"the alpha tests of CE{condition.cond_number} "
                f"({display}) — alpha memory {amem.name} is empty",
            )
        return blocked(
            condition, "join",
            f"join {node.name} produces nothing: {len(node.bmem)} partial "
            f"match(es) LEFT x {len(amem)} element(s) RIGHT, but no pair "
            f"passes its {len(node.tests)} join test(s)",
        )
    return WhyNot(
        rule=rule_name,
        satisfied=False,
        kind="join-combination",
        message="all network levels are populated yet no instantiation "
        "exists (refraction or a race retracted it)",
    )


def _why_not_diagnosis(system, rule_name: str) -> WhyNot:
    diagnosis = system.explain(rule_name)
    blocking = diagnosis.blocking_conditions()
    if blocking:
        first = blocking[0]
        polarity = "negated " if first.negated else ""
        kind = "negation" if first.negated else "alpha"
        count = first.matching_elements
        message = (
            f"{polarity}CE{first.cond_number} ({first.display}): "
            + (
                f"{count} blocking element(s) present"
                if first.negated
                else "no WM element satisfies it in isolation"
            )
        )
        return WhyNot(
            rule=rule_name,
            satisfied=False,
            kind=kind,
            cond_number=first.cond_number,
            class_name=first.class_name,
            negated=first.negated,
            message=message,
        )
    return WhyNot(
        rule=rule_name,
        satisfied=False,
        kind="join-combination",
        message="every condition element is satisfiable in isolation, but "
        "no binding-consistent combination exists (a join blocks it)",
    )


# -- the live dashboard -------------------------------------------------------


class TopAggregator:
    """Folds a trace stream into the ``repro top`` dashboard state.

    Consumes the record dicts the observability sinks carry: ``cycle``
    events (emitted once per engine cycle when any sink is attached),
    ``rete.batch_join`` spans (per-node probe heat) and
    ``recovery.fsync`` spans (WAL latency).  Unknown record shapes are
    skipped, so the aggregator tolerates traces from newer schemas.
    """

    def __init__(self, window: int = 64) -> None:
        self.window = window
        self._recent: deque[dict] = deque(maxlen=window)
        self.cycle_hist = Log2Histogram("engine.cycle_us")
        self.fsync_hist = Log2Histogram("recovery.sync_us")
        self.node_heat: dict[str, dict] = {}
        self.total_cycles = 0
        self.total_fires = 0
        self.last_cycle: dict = {}

    def feed(self, record) -> None:
        """Consume one trace record (anything unrecognized is ignored)."""
        if not isinstance(record, dict):
            return
        rtype = record.get("type")
        if rtype == "event" and record.get("kind") == "cycle":
            self.total_cycles += 1
            fires = record.get("fires")
            if isinstance(fires, int):
                self.total_fires += fires
            dur = record.get("dur_us")
            if isinstance(dur, (int, float)):
                self.cycle_hist.observe(dur)
            self._recent.append(record)
            self.last_cycle = record
        elif rtype == "span":
            name = record.get("name")
            dur = record.get("dur_us")
            if name == "rete.batch_join":
                attrs = record.get("attrs") or {}
                node = attrs.get("node")
                if node:
                    heat = self.node_heat.setdefault(
                        str(node), {"probes": 0, "pairs": 0, "us": 0.0}
                    )
                    heat["probes"] += 1
                    pairs = attrs.get("pairs")
                    if isinstance(pairs, int):
                        heat["pairs"] += pairs
                    if isinstance(dur, (int, float)):
                        heat["us"] += dur
            elif name == "recovery.fsync" and isinstance(dur, (int, float)):
                self.fsync_hist.observe(dur)

    def feed_line(self, line: str) -> None:
        """Consume one JSONL trace line (bad lines are skipped)."""
        import json

        line = line.strip()
        if not line:
            return
        try:
            self.feed(json.loads(line))
        except ValueError:
            pass

    # -- derived figures ------------------------------------------------------

    def cycles_per_second(self) -> float:
        """Throughput over the sliding window (wall-clock timestamps)."""
        if len(self._recent) < 2:
            return 0.0
        first, last = self._recent[0], self._recent[-1]
        t0, t1 = first.get("ts"), last.get("ts")
        if isinstance(t0, (int, float)) and isinstance(t1, (int, float)):
            elapsed = t1 - t0
            if elapsed > 0:
                return (len(self._recent) - 1) / elapsed
        total_us = sum(
            r.get("dur_us", 0)
            for r in self._recent
            if isinstance(r.get("dur_us"), (int, float))
        )
        return len(self._recent) / (total_us / 1e6) if total_us else 0.0

    def hottest_nodes(self, count: int = 5) -> list[tuple[str, dict]]:
        """Join nodes by accumulated probe time (then probe count)."""
        return sorted(
            self.node_heat.items(),
            key=lambda item: (item[1]["us"], item[1]["probes"]),
            reverse=True,
        )[:count]

    def wal_lag(self) -> int | None:
        """Records appended but not yet durable, from the last cycle."""
        pending = self.last_cycle.get("wal_pending")
        return pending if isinstance(pending, int) else None

    def snapshot(self) -> dict:
        """JSON-ready dashboard state."""
        return {
            "cycles": self.total_cycles,
            "fires": self.total_fires,
            "cycles_per_sec": self.cycles_per_second(),
            "cycle_us": {
                "p50": self.cycle_hist.percentile(0.50),
                "p95": self.cycle_hist.percentile(0.95),
                "p99": self.cycle_hist.percentile(0.99),
            },
            "fsync_us": {
                "count": self.fsync_hist.count,
                "p99": self.fsync_hist.percentile(0.99),
            },
            "conflict_set": self.last_cycle.get("conflict_set"),
            "wal_seq": self.last_cycle.get("wal_seq"),
            "wal_pending": self.wal_lag(),
            "hot_nodes": [
                {"node": node, **heat}
                for node, heat in self.hottest_nodes()
            ],
        }


def render_top(aggregator: TopAggregator) -> str:
    """One dashboard frame as text (``repro top`` redraws it in place)."""
    snap = aggregator.snapshot()
    cycle = snap["cycle_us"]
    lines = [
        "repro top — engine dashboard",
        f"  cycles {snap['cycles']}   fires {snap['fires']}   "
        f"{snap['cycles_per_sec']:.1f} cycles/sec",
        f"  cycle latency  p50 {cycle['p50']:.0f}us   "
        f"p95 {cycle['p95']:.0f}us   p99 {cycle['p99']:.0f}us",
    ]
    conflict = snap["conflict_set"]
    if conflict is not None:
        lines.append(f"  conflict set   {conflict} instantiation(s)")
    if snap["wal_seq"] is not None:
        lag = snap["wal_pending"]
        lines.append(
            f"  wal            seq {snap['wal_seq']}   "
            f"lag {lag if lag is not None else '?'} record(s)   "
            f"fsync p99 {snap['fsync_us']['p99']:.0f}us "
            f"({snap['fsync_us']['count']} syncs)"
        )
    if snap["hot_nodes"]:
        lines.append("  hottest join nodes:")
        for entry in snap["hot_nodes"]:
            lines.append(
                f"    {entry['node']:<8} {entry['probes']:>6} probes  "
                f"{entry['pairs']:>8} pairs  {entry['us']:>10.0f}us"
            )
    return "\n".join(lines)
