"""Per-rule, per-phase cost aggregation over the span stream.

:class:`PhaseStatsSink` is a sink that folds spans into a
rule × {match, select, act} cost table — the answer to "where did the
run spend its time, and which rule caused it?".  Attribution rules:

* ``select`` and ``act`` spans carry the chosen rule as an attribute;
* ``match.*`` spans inherit the firing rule from the tracer context, so
  maintenance triggered by a rule's RHS is charged to that rule;
* match work caused by initial WM loading (no rule firing) lands in the
  synthetic ``(init)`` row, and idle select probes in ``(quiescent)``.

Because ``match.*`` spans nest inside the ``act`` span that triggered
them, the reported ``act_us`` is the act time *minus* the nested match
time (never below zero); ``total_us`` sums the three phases.
"""

from __future__ import annotations

RULE_INIT = "(init)"
RULE_QUIESCENT = "(quiescent)"


class PhaseStatsSink:
    """Aggregates spans into per-rule Match/Select/Act microsecond costs."""

    def __init__(self) -> None:
        self._rows: dict[str, dict[str, float]] = {}

    def emit(self, record: dict) -> None:
        # Skip-unknown: traces written by newer engine versions may carry
        # record shapes this sink predates (new event kinds, span records
        # with extra or missing fields).  Anything without the fields the
        # aggregation needs is ignored rather than raising.
        if record.get("type") != "span":
            return
        name = record.get("name")
        duration = record.get("dur_us")
        if not isinstance(name, str) or not isinstance(duration, (int, float)):
            return
        attrs = record.get("attrs") or {}
        if name.startswith("match."):
            phase = "match"
        elif name == "select":
            phase = "select"
        elif name == "act":
            phase = "act"
        else:
            return
        rule = attrs.get("rule")
        if rule is None:
            rule = RULE_INIT
        elif rule == "(none)":
            rule = RULE_QUIESCENT
        row = self._rows.setdefault(
            str(rule),
            {"match_us": 0.0, "select_us": 0.0, "act_us": 0.0, "fires": 0},
        )
        row[f"{phase}_us"] += duration
        if phase == "act":
            row["fires"] += int(attrs.get("fires", 1))

    def table_rows(self) -> list[dict]:
        """Table rows (dicts) sorted by total cost, most expensive first.

        ``act_us`` excludes nested match time; ``total_us`` is the sum of
        the three exclusive phases.
        """
        rows: list[dict] = []
        for rule, row in self._rows.items():
            act_exclusive = max(row["act_us"] - row["match_us"], 0.0)
            rows.append(
                {
                    "rule": rule,
                    "fires": int(row["fires"]),
                    "match_us": row["match_us"],
                    "select_us": row["select_us"],
                    "act_us": act_exclusive,
                    "total_us": row["match_us"]
                    + row["select_us"]
                    + act_exclusive,
                }
            )
        rows.sort(key=lambda r: r["total_us"], reverse=True)
        return rows

    def totals(self) -> dict:
        """Grand totals across every rule row."""
        totals = {
            "fires": 0,
            "match_us": 0.0,
            "select_us": 0.0,
            "act_us": 0.0,
            "total_us": 0.0,
        }
        for row in self.table_rows():
            totals["fires"] += row["fires"]
            totals["match_us"] += row["match_us"]
            totals["select_us"] += row["select_us"]
            totals["act_us"] += row["act_us"]
            totals["total_us"] += row["total_us"]
        return totals
