"""Counters, gauges and fixed-bucket histograms.

The registry absorbs the flat operation bag of
:class:`repro.instrument.Counters` (the paper's analytic unit) and extends
it with the dimensions the paper only argues about qualitatively: cycle
latency, conflict-set size, pattern-table cardinality, lock-wait time.

Everything is plain Python and snapshot-able to JSON; no third-party
dependency, no background thread.
"""

from __future__ import annotations

import json

from repro.instrument import Counters

#: Default bucket bounds for microsecond latencies (upper-inclusive).
LATENCY_BUCKETS_US = (1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0)

#: Default bucket bounds for small cardinalities (conflict-set size, ticks).
SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class CounterMetric:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, delta: int = 1) -> None:
        """Add *delta* (must be non-negative)."""
        self.value += delta


class Gauge:
    """A point-in-time value (pattern-table cardinality, WM size, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``buckets`` are upper-inclusive bounds; observations above the last
    bound land in the implicit overflow bucket (rendered ``+Inf``).
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, buckets: tuple[float, ...]) -> None:
        if list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted ascending")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated *q*-quantile (0 < q <= 1), interpolated from buckets."""
        from repro.obs.hist import percentile_from_buckets

        return percentile_from_buckets(
            self.buckets, self.counts, self.count, q, max_value=self.max
        )

    def as_dict(self) -> dict:
        """JSON-ready summary of this histogram."""
        from repro.obs.hist import SNAPSHOT_PERCENTILES

        labels = [str(b) for b in self.buckets] + ["+Inf"]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "percentiles": {
                f"p{int(q * 100)}": self.percentile(q)
                for q in SNAPSHOT_PERCENTILES
            },
            "buckets": dict(zip(labels, self.counts)),
        }


class MetricsRegistry:
    """Name-keyed store of counters, gauges and histograms.

    Instruments are created on first use, so call sites never need to
    declare them up front::

        registry.counter("engine.fires").inc()
        registry.histogram("engine.cycle_us").observe(42.0)
    """

    def __init__(self) -> None:
        self._counters: dict[str, CounterMetric] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> CounterMetric:
        """The counter named *name*, created on first use."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = CounterMetric(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge named *name*, created on first use."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, buckets: tuple[float, ...] = LATENCY_BUCKETS_US
    ) -> Histogram:
        """The histogram named *name*, created on first use with *buckets*."""
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, buckets)
        return metric

    def log2_histogram(self, name: str) -> Histogram:
        """The histogram named *name* with power-of-two buckets.

        Created on first use as a :class:`repro.obs.hist.Log2Histogram`;
        like :meth:`histogram`, an existing instrument wins, so all call
        sites for one name must agree on the flavour.
        """
        metric = self._histograms.get(name)
        if metric is None:
            from repro.obs.hist import Log2Histogram

            metric = self._histograms[name] = Log2Histogram(name)
        return metric

    def absorb_counters(self, counters: Counters, prefix: str = "ops.") -> None:
        """Mirror an :class:`~repro.instrument.Counters` bag as gauges.

        The operation counts stay authoritative in ``instrument`` (tests
        assert on them); this copies the current values under
        ``<prefix><name>`` so one snapshot carries both worlds.
        """
        for name, value in counters.as_dict().items():
            self.gauge(prefix + name).set(value)

    def snapshot(self) -> dict:
        """A JSON-ready snapshot of every instrument."""
        return {
            "counters": {n: m.value for n, m in sorted(self._counters.items())},
            "gauges": {n: m.value for n, m in sorted(self._gauges.items())},
            "histograms": {
                n: m.as_dict() for n, m in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """The snapshot serialized as JSON text."""
        return json.dumps(self.snapshot(), indent=indent, default=str)
