"""Incrementally maintained materialized views (§2.2–2.3 of the paper).

Buneman & Clemons "put the problem in the context of supporting
materialized views in a relational DBMS.  The qualifications of the view
definitions are used to make up the collection of conditions that must be
monitored" — exactly what our match strategies do.  A
:class:`MaterializedView` is defined by a rule LHS (the view qualification)
plus a projection of rule variables; the match strategy maintains the set
of satisfying combinations, and this class folds instantiation add/remove
events into a stored result table with multiplicity counts (bag
semantics), so duplicate-producing joins delete correctly.

Unlike Blakeley et al.'s screening (which re-checks all views per update),
the Rete/pattern strategies discard irrelevant updates structurally — the
paper's stated advantage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.conflict import Instantiation
from repro.engine.wm import WorkingMemory
from repro.errors import RuleError
from repro.instrument import Counters
from repro.lang.analysis import analyze_rule
from repro.lang.ast import ConditionElement, Rule
from repro.lang.parser import parse_program
from repro.match import STRATEGIES, MatchStrategy
from repro.storage.schema import RelationSchema, Value
from repro.storage.table import MemoryTable


@dataclass
class ViewStats:
    """Maintenance statistics for one view."""

    inserts: int = 0
    deletes: int = 0
    refreshes: int = 0


class MaterializedView:
    """One view: qualification (rule LHS) + projected variables."""

    def __init__(
        self,
        name: str,
        wm: WorkingMemory,
        qualification: str | list[ConditionElement],
        select: list[str],
        strategy: str | type[MatchStrategy] = "patterns",
        counters: Counters | None = None,
    ) -> None:
        self.name = name
        self.wm = wm
        self.select = list(select)
        self.stats = ViewStats()
        counters = counters or wm.counters
        ces = (
            self._parse(name, qualification)
            if isinstance(qualification, str)
            else tuple(qualification)
        )
        rule = Rule(name=f"__view_{name}", condition_elements=ces)
        self.analysis = analyze_rule(rule, wm.schemas)
        bound = set(self.analysis.variable_classes)
        missing = [v for v in select if v not in bound]
        if missing:
            raise RuleError(
                f"view {name!r} selects variables {missing} that the "
                "qualification never binds"
            )
        strategy_cls = (
            STRATEGIES[strategy] if isinstance(strategy, str) else strategy
        )
        self.table = MemoryTable(
            RelationSchema(f"__view_{name}", tuple(select) or ("dummy",)),
            counters=counters,
        )
        self._multiplicity: dict[tuple[Value, ...], int] = {}
        self._row_tids: dict[tuple[Value, ...], int] = {}
        self._strategy = strategy_cls(
            wm, {rule.name: self.analysis}, counters=counters
        )
        self._strategy.conflict_set.add_listener(
            self._on_match_added, self._on_match_removed
        )
        for instantiation in self._strategy.conflict_set:
            self._on_match_added(instantiation)

    @staticmethod
    def _parse(name: str, text: str) -> tuple[ConditionElement, ...]:
        program = parse_program(f"(p __view_{name} {text} --> (halt))")
        return program.rules[0].condition_elements

    # -- incremental maintenance ------------------------------------------------

    def _project(self, instantiation: Instantiation) -> tuple[Value, ...]:
        bindings = instantiation.binding_map()
        return tuple(bindings[variable] for variable in self.select)

    def _on_match_added(self, instantiation: Instantiation) -> None:
        row = self._project(instantiation)
        count = self._multiplicity.get(row, 0)
        self._multiplicity[row] = count + 1
        if count == 0:
            stored = self.table.insert(row)
            self._row_tids[row] = stored.tid
            self.stats.inserts += 1

    def _on_match_removed(self, instantiation: Instantiation) -> None:
        row = self._project(instantiation)
        count = self._multiplicity.get(row, 0)
        if count <= 1:
            self._multiplicity.pop(row, None)
            tid = self._row_tids.pop(row, None)
            if tid is not None:
                self.table.delete(tid)
                self.stats.deletes += 1
        else:
            self._multiplicity[row] = count - 1

    # -- access ---------------------------------------------------------------------

    def rows(self) -> set[tuple[Value, ...]]:
        """The view's current (distinct) rows."""
        return set(self._multiplicity)

    def multiplicity(self, row: tuple[Value, ...]) -> int:
        """How many qualification matches produce *row*."""
        return self._multiplicity.get(row, 0)

    def __len__(self) -> int:
        return len(self._multiplicity)

    def refresh_from_scratch(self) -> set[tuple[Value, ...]]:
        """Recompute the view by full evaluation (validation/benchmarks).

        This is the expensive path Buneman & Clemons tried to avoid; it is
        exposed so tests can assert incremental == recomputed.
        """
        from repro.storage.query import evaluate

        self.stats.refreshes += 1
        rows: set[tuple[Value, ...]] = set()
        for result in evaluate(self.analysis.to_conjuncts(), self.wm.catalog):
            bindings = result.binding_map()
            rows.add(tuple(bindings[v] for v in self.select))
        return rows

    def detach(self) -> None:
        """Stop maintaining the view."""
        self._strategy.detach()


class ViewManager:
    """Registry of materialized views over one working memory."""

    def __init__(
        self,
        wm: WorkingMemory,
        strategy: str | type[MatchStrategy] = "patterns",
    ) -> None:
        self.wm = wm
        self._strategy = strategy
        self._views: dict[str, MaterializedView] = {}

    def create(
        self, name: str, qualification: str | list[ConditionElement],
        select: list[str],
    ) -> MaterializedView:
        """CREATE MATERIALIZED VIEW name AS SELECT select WHERE ..."""
        if name in self._views:
            raise RuleError(f"view {name!r} already exists")
        view = MaterializedView(
            name, self.wm, qualification, select, strategy=self._strategy
        )
        self._views[name] = view
        return view

    def drop(self, name: str) -> None:
        """Drop a view and stop its maintenance."""
        view = self._views.pop(name, None)
        if view is None:
            raise RuleError(f"no view named {name!r}")
        view.detach()

    def get(self, name: str) -> MaterializedView:
        try:
            return self._views[name]
        except KeyError:
            raise RuleError(f"no view named {name!r}") from None

    def names(self) -> list[str]:
        return list(self._views)
