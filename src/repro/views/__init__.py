"""Triggers, alerters, and materialized views built on the match layer."""

from repro.views.matview import MaterializedView, ViewManager, ViewStats
from repro.views.triggers import Alert, Trigger, TriggerCallback, TriggerManager

__all__ = [
    "Alert",
    "MaterializedView",
    "Trigger",
    "TriggerCallback",
    "TriggerManager",
    "ViewManager",
    "ViewStats",
]
