"""Triggers and alerters over working memory (§2.3 of the paper).

"A trigger is a condition and an associated action to be executed if the
database comes to a state that makes the condition true.  An alerter is a
trigger that sends a message to a user or an application program if its
condition is met."

A :class:`TriggerManager` compiles trigger conditions (ordinary rule LHSs)
with any match strategy and invokes Python callbacks when a condition
becomes satisfied (an ``add`` trigger) or stops being satisfied (a
``delete`` trigger) — Buneman & Clemons' two trigger classes.  Because the
condition machinery is the production-system matcher, this demonstrates the
paper's point that "the problem of identifying applicable rules is the same
as the problems of supporting triggers and materialized views".
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.engine.conflict import Instantiation
from repro.engine.wm import WorkingMemory
from repro.errors import RuleError
from repro.instrument import Counters
from repro.lang.analysis import analyze_rule
from repro.lang.ast import ConditionElement, Rule
from repro.lang.parser import parse_program
from repro.match import STRATEGIES, MatchStrategy

#: Callback invoked with the satisfying (or no-longer-satisfying) match.
TriggerCallback = Callable[[Instantiation], None]


@dataclass
class Trigger:
    """One registered trigger."""

    name: str
    rule: Rule
    on_satisfied: TriggerCallback | None = None
    on_violated: TriggerCallback | None = None
    fired: int = 0
    cleared: int = 0


@dataclass
class Alert:
    """A message produced by an alerter."""

    trigger: str
    kind: str  # "satisfied" or "violated"
    instantiation: Instantiation

    def __str__(self) -> str:
        return f"[{self.trigger}] {self.kind}: {self.instantiation}"


class TriggerManager:
    """Monitors trigger conditions against a WorkingMemory."""

    def __init__(
        self,
        wm: WorkingMemory,
        strategy: str | type[MatchStrategy] = "patterns",
        counters: Counters | None = None,
    ) -> None:
        self.wm = wm
        self.counters = counters or wm.counters
        self._strategy_cls = (
            STRATEGIES[strategy] if isinstance(strategy, str) else strategy
        )
        self._triggers: dict[str, Trigger] = {}
        self._strategies: dict[str, MatchStrategy] = {}
        self.alerts: list[Alert] = []

    # -- registration --------------------------------------------------------

    def define(
        self,
        name: str,
        condition: str | list[ConditionElement],
        on_satisfied: TriggerCallback | None = None,
        on_violated: TriggerCallback | None = None,
    ) -> Trigger:
        """Register a trigger.

        *condition* is OPS5 LHS text (one or more condition elements, e.g.
        ``"(Emp ^salary > 1000) -(Audit ^dno <D>)"`` — note any variables
        must obey rule scoping) or a list of pre-built condition elements.
        """
        if name in self._triggers:
            raise RuleError(f"trigger {name!r} already defined")
        ces = (
            self._parse_condition(name, condition)
            if isinstance(condition, str)
            else tuple(condition)
        )
        rule = Rule(name=f"__trigger_{name}", condition_elements=ces)
        trigger = Trigger(
            name=name,
            rule=rule,
            on_satisfied=on_satisfied,
            on_violated=on_violated,
        )
        analysis = analyze_rule(rule, self.wm.schemas)
        strategy = self._strategy_cls(
            self.wm, {rule.name: analysis}, counters=self.counters
        )
        strategy.conflict_set.add_listener(
            lambda inst, t=trigger: self._satisfied(t, inst),
            lambda inst, t=trigger: self._violated(t, inst),
        )
        # Replay of pre-existing WM content happened inside the strategy
        # constructor, before the listener attached; fire for those now.
        for instantiation in strategy.conflict_set:
            self._satisfied(trigger, instantiation)
        self._triggers[name] = trigger
        self._strategies[name] = strategy
        return trigger

    def define_alerter(
        self, name: str, condition: str | list[ConditionElement]
    ) -> Trigger:
        """A trigger whose action is appending to :attr:`alerts`."""
        return self.define(
            name,
            condition,
            on_satisfied=lambda inst: self.alerts.append(
                Alert(name, "satisfied", inst)
            ),
            on_violated=lambda inst: self.alerts.append(
                Alert(name, "violated", inst)
            ),
        )

    def drop(self, name: str) -> None:
        """Unregister a trigger and stop monitoring its condition."""
        trigger = self._triggers.pop(name, None)
        if trigger is None:
            raise RuleError(f"no trigger named {name!r}")
        self._strategies.pop(name).detach()

    def _parse_condition(
        self, name: str, text: str
    ) -> tuple[ConditionElement, ...]:
        program = parse_program(f"(p __trigger_{name} {text} --> (halt))")
        return program.rules[0].condition_elements

    # -- callbacks --------------------------------------------------------------

    def _satisfied(self, trigger: Trigger, instantiation: Instantiation) -> None:
        trigger.fired += 1
        if trigger.on_satisfied is not None:
            trigger.on_satisfied(instantiation)

    def _violated(self, trigger: Trigger, instantiation: Instantiation) -> None:
        trigger.cleared += 1
        if trigger.on_violated is not None:
            trigger.on_violated(instantiation)

    # -- introspection --------------------------------------------------------------

    def triggers(self) -> list[str]:
        """Names of registered triggers."""
        return list(self._triggers)

    def trigger(self, name: str) -> Trigger:
        """Look up one trigger."""
        try:
            return self._triggers[name]
        except KeyError:
            raise RuleError(f"no trigger named {name!r}") from None

    def satisfied_matches(self, name: str) -> list[Instantiation]:
        """Current matches of a trigger's condition."""
        return self._strategies[self.trigger(name).name].instantiations()
