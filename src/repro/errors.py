"""Exception hierarchy shared by every subsystem.

Keeping all exceptions in one module lets callers catch ``ReproError`` to
handle any library failure, or a specific subclass for finer control, without
importing the subsystem that raised it.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """A relation schema was malformed or violated (bad arity, dup names)."""


class CatalogError(ReproError):
    """A relation name was missing from, or duplicated in, a catalog."""


class StorageError(ReproError):
    """A low-level storage operation failed (unknown tuple id, bad index)."""


class QueryError(ReproError):
    """A query referenced unknown attributes or produced an invalid plan."""


class ParseError(ReproError):
    """OPS5 source text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class RuleError(ReproError):
    """A rule definition is semantically invalid (e.g. unbound RHS var)."""


class MatchError(ReproError):
    """A match strategy was driven incorrectly (unknown class, bad token)."""


class ExecutionError(ReproError):
    """The recognize-act interpreter hit an invalid action at run time."""


class TransactionError(ReproError):
    """A transaction was used after commit/abort or violated 2PL."""


class DeadlockError(TransactionError):
    """The transaction was chosen as a deadlock victim and must abort."""


class IndexError_(ReproError):
    """An R-tree/predicate-index operation failed (name avoids builtin)."""


class RecoveryError(ReproError):
    """Durability machinery misuse or an unrecoverable log/checkpoint."""


class WalCorruptError(RecoveryError):
    """A WAL record failed its checksum or sequence check *before* the
    torn tail — the log is damaged, not merely truncated, and recovery
    refuses to guess."""
