"""Typed intervals and boxes for indexing condition predicates.

A variable-free condition element is a conjunction of per-attribute
restrictions, i.e. a hyper-rectangle over the class's attribute space —
which is why the paper proposes R-trees/R+-trees over COND relations
(§2.3, §4.2.3).  Attribute values are dynamically typed, so interval
endpoints are *sortable keys* ``(type rank, value)`` with rank
None < numbers < strings; ``KEY_MIN``/``KEY_MAX`` are the open ends.

R-tree heuristics (area enlargement) need numbers, not keys, so each key
also has an order-consistent float approximation: numbers map to
themselves, strings to a base-256 fraction of their first characters.
Approximations steer the tree shape only; containment checks are exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IndexError_
from repro.storage.schema import Value

#: Sortable key: (rank, payload).  Ranks: 0 None, 1 numbers, 2 strings.
Key = tuple

KEY_MIN: Key = (-1, 0)
KEY_MAX: Key = (3, 0)

_FLOAT_MIN = -1e18
_FLOAT_MAX = 1e18


def key_of(value: Value) -> Key:
    """The sortable key of one attribute value."""
    if value is None:
        return (0, 0)
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    raise IndexError_(f"cannot index value {value!r}")


def approx(key: Key) -> float:
    """Order-consistent float approximation of a key (for heuristics)."""
    rank, payload = key
    if rank == -1:
        return _FLOAT_MIN
    if rank == 3:
        return _FLOAT_MAX
    if rank == 0:
        return _FLOAT_MIN / 2
    if rank == 1:
        return float(max(min(payload, _FLOAT_MAX / 4), _FLOAT_MIN / 4))
    # Strings: base-256 fraction of the first 8 characters, offset into a
    # band above all numbers.
    fraction = 0.0
    scale = 1.0
    for char in str(payload)[:8]:
        scale /= 256.0
        fraction += min(ord(char), 255) * scale
    return _FLOAT_MAX / 2 + fraction * (_FLOAT_MAX / 4)


@dataclass(frozen=True)
class Interval:
    """A closed interval of keys, ``[low, high]``; KEY_MIN/KEY_MAX ends."""

    low: Key = KEY_MIN
    high: Key = KEY_MAX

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise IndexError_(f"empty interval {self.low!r}..{self.high!r}")

    def contains_key(self, key: Key) -> bool:
        return self.low <= key <= self.high

    def contains(self, other: "Interval") -> bool:
        return self.low <= other.low and other.high <= self.high

    def intersects(self, other: "Interval") -> bool:
        return self.low <= other.high and other.low <= self.high

    def union(self, other: "Interval") -> "Interval":
        return Interval(min(self.low, other.low), max(self.high, other.high))

    def span(self) -> float:
        """Approximate length (heuristics only)."""
        return max(approx(self.high) - approx(self.low), 0.0)


FULL_INTERVAL = Interval()


def interval_for(op: str, value: Value) -> Interval:
    """The interval of values satisfying ``attribute op value``.

    ``<>`` cannot be represented as one interval; it maps to the full
    interval (the residual test still applies at match time — the index is
    allowed to over-approximate, never to under-approximate).
    """
    key = key_of(value)
    if op == "=":
        return Interval(key, key)
    if op == "<>":
        return FULL_INTERVAL
    if op in ("<", "<="):
        return Interval(KEY_MIN, key)
    if op in (">", ">="):
        return Interval(key, KEY_MAX)
    raise IndexError_(f"unknown operator {op!r}")


#: A hyper-rectangle: one interval per attribute.
Box = tuple[Interval, ...]


def full_box(dimensions: int) -> Box:
    """The box covering everything."""
    return tuple(FULL_INTERVAL for _ in range(dimensions))


def box_contains_point(box: Box, point: tuple[Key, ...]) -> bool:
    """Exact point-in-box test."""
    return all(
        interval.contains_key(key) for interval, key in zip(box, point)
    )


def boxes_intersect(left: Box, right: Box) -> bool:
    """Exact box-overlap test."""
    return all(a.intersects(b) for a, b in zip(left, right))


def box_union(left: Box, right: Box) -> Box:
    """Smallest box covering both."""
    return tuple(a.union(b) for a, b in zip(left, right))


def box_area(box: Box) -> float:
    """Approximate volume (heuristics only)."""
    area = 1.0
    for interval in box:
        area *= 1.0 + interval.span()
    return area


def enlargement(box: Box, addition: Box) -> float:
    """Area growth if *addition* were merged into *box*."""
    return box_area(box_union(box, addition)) - box_area(box)
