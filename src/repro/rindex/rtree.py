"""An N-dimensional R-tree with quadratic split (Guttman 1984).

The paper suggests R-trees (and their R+-tree variant) as "fast matching
devices on COND relations" (§4.2.3, [GUTT84], [SELL87], [LIN87]).  This is
a from-scratch implementation: insert with least-enlargement descent,
quadratic node split, delete with re-insertion of orphans, point and box
queries.  It is generic over payloads; :mod:`repro.rindex.condition_index`
instantiates it with condition ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import IndexError_
from repro.rindex.interval import (
    Box,
    Key,
    box_area,
    box_contains_point,
    box_union,
    boxes_intersect,
    enlargement,
)


@dataclass
class _Entry:
    box: Box
    child: "_Node | None" = None
    payload: Any = None


@dataclass
class _Node:
    leaf: bool
    entries: list[_Entry] = field(default_factory=list)
    parent: "_Node | None" = None

    def box(self) -> Box:
        covering = self.entries[0].box
        for entry in self.entries[1:]:
            covering = box_union(covering, entry.box)
        return covering


class RTree:
    """R-tree over *dimensions*-dimensional boxes."""

    def __init__(
        self, dimensions: int, max_entries: int = 8, min_entries: int | None = None
    ) -> None:
        if dimensions < 1:
            raise IndexError_("R-tree needs >= 1 dimension")
        if max_entries < 4:
            raise IndexError_("max_entries must be >= 4")
        self.dimensions = dimensions
        self.max_entries = max_entries
        self.min_entries = min_entries or max(2, max_entries // 2)
        self._root = _Node(leaf=True)
        self._payload_entries: dict[Any, _Entry] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a leaf-only tree)."""
        height = 1
        node = self._root
        while not node.leaf:
            node = node.entries[0].child  # type: ignore[assignment]
            height += 1
        return height

    # -- insertion -----------------------------------------------------------

    def insert(self, box: Box, payload: Any) -> None:
        """Insert *payload* with bounding *box*; payloads must be unique."""
        if len(box) != self.dimensions:
            raise IndexError_(
                f"box has {len(box)} dimensions, tree has {self.dimensions}"
            )
        if payload in self._payload_entries:
            raise IndexError_(f"payload {payload!r} already indexed")
        entry = _Entry(box=box, payload=payload)
        self._payload_entries[payload] = entry
        self._insert_entry(entry, into_leaves=True)
        self._size += 1

    def _insert_entry(self, entry: _Entry, into_leaves: bool) -> None:
        node = self._choose_node(entry.box, into_leaves)
        node.entries.append(entry)
        if entry.child is not None:
            entry.child.parent = node
        if len(node.entries) > self.max_entries:
            self._split(node)

    def _choose_node(self, box: Box, into_leaves: bool) -> _Node:
        node = self._root
        while not node.leaf:
            if not into_leaves and all(
                e.child is not None and e.child.leaf for e in node.entries
            ):
                break
            best = min(
                node.entries,
                key=lambda e: (enlargement(e.box, box), box_area(e.box)),
            )
            best.box = box_union(best.box, box)
            node = best.child  # type: ignore[assignment]
        return node

    def _split(self, node: _Node) -> None:
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a, group_b = [seed_a], [seed_b]
        box_a, box_b = seed_a.box, seed_b.box
        rest = [e for e in entries if e is not seed_a and e is not seed_b]
        while rest:
            if len(group_a) + len(rest) == self.min_entries:
                group_a.extend(rest)
                box_a = box_union(box_a, _cover(rest))
                break
            if len(group_b) + len(rest) == self.min_entries:
                group_b.extend(rest)
                box_b = box_union(box_b, _cover(rest))
                break
            entry = max(
                rest,
                key=lambda e: abs(
                    enlargement(box_a, e.box) - enlargement(box_b, e.box)
                ),
            )
            rest.remove(entry)
            if enlargement(box_a, entry.box) <= enlargement(box_b, entry.box):
                group_a.append(entry)
                box_a = box_union(box_a, entry.box)
            else:
                group_b.append(entry)
                box_b = box_union(box_b, entry.box)
        sibling = _Node(leaf=node.leaf, entries=group_b)
        node.entries = group_a
        for entry in sibling.entries:
            if entry.child is not None:
                entry.child.parent = sibling
        self._replace_in_parent(node, box_a, sibling, box_b)

    def _pick_seeds(self, entries: list[_Entry]) -> tuple[_Entry, _Entry]:
        worst: tuple[float, _Entry, _Entry] | None = None
        for i, a in enumerate(entries):
            for b in entries[i + 1:]:
                waste = (
                    box_area(box_union(a.box, b.box))
                    - box_area(a.box)
                    - box_area(b.box)
                )
                if worst is None or waste > worst[0]:
                    worst = (waste, a, b)
        assert worst is not None
        return worst[1], worst[2]

    def _replace_in_parent(
        self, node: _Node, node_box: Box, sibling: _Node, sibling_box: Box
    ) -> None:
        parent = node.parent
        if parent is None:
            new_root = _Node(leaf=False)
            new_root.entries = [
                _Entry(box=node_box, child=node),
                _Entry(box=sibling_box, child=sibling),
            ]
            node.parent = new_root
            sibling.parent = new_root
            self._root = new_root
            return
        for entry in parent.entries:
            if entry.child is node:
                entry.box = node_box
                break
        parent.entries.append(_Entry(box=sibling_box, child=sibling))
        sibling.parent = parent
        if len(parent.entries) > self.max_entries:
            self._split(parent)

    # -- bulk loading (STR packing) --------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        dimensions: int,
        items: list[tuple[Box, Any]],
        max_entries: int = 8,
    ) -> "RTree":
        """Build a packed tree with Sort-Tile-Recursive loading.

        When the whole condition set is known up front (a compiled rule
        base), STR packing yields near-full nodes and far less overlap
        than repeated insertion, so point queries visit fewer nodes.
        """
        tree = cls(dimensions, max_entries=max_entries)
        if not items:
            return tree
        entries = []
        for box, payload in items:
            if len(box) != dimensions:
                raise IndexError_("box dimensionality mismatch in bulk_load")
            if payload in tree._payload_entries:
                raise IndexError_(f"payload {payload!r} duplicated")
            entry = _Entry(box=box, payload=payload)
            tree._payload_entries[payload] = entry
            entries.append(entry)
        tree._size = len(entries)
        leaves = tree._str_pack(entries, leaf=True)
        level = leaves
        while len(level) > 1:
            parents = tree._str_pack(
                [_Entry(box=node.box(), child=node) for node in level],
                leaf=False,
            )
            level = parents
        tree._root = level[0]
        tree._root.parent = None
        return tree

    def _str_pack(self, entries: list[_Entry], leaf: bool) -> list[_Node]:
        """Pack *entries* into nodes by sort-tile-recursive slicing."""
        import math

        from repro.rindex.interval import approx

        def center(entry: _Entry, dim: int) -> float:
            interval = entry.box[dim]
            return (approx(interval.low) + approx(interval.high)) / 2.0

        def tile(block: list[_Entry], dim: int) -> list[list[_Entry]]:
            if dim >= self.dimensions - 1 or len(block) <= self.max_entries:
                block.sort(key=lambda e: center(e, dim))
                return [
                    block[i:i + self.max_entries]
                    for i in range(0, len(block), self.max_entries)
                ]
            block.sort(key=lambda e: center(e, dim))
            node_estimate = math.ceil(len(block) / self.max_entries)
            slices = max(
                1,
                math.ceil(node_estimate ** (1.0 / (self.dimensions - dim))),
            )
            slice_size = math.ceil(len(block) / slices)
            groups: list[list[_Entry]] = []
            for i in range(0, len(block), slice_size):
                groups.extend(tile(block[i:i + slice_size], dim + 1))
            return groups

        nodes: list[_Node] = []
        for group in tile(list(entries), 0):
            node = _Node(leaf=leaf, entries=group)
            for entry in group:
                if entry.child is not None:
                    entry.child.parent = node
            nodes.append(node)
        return nodes

    # -- deletion ------------------------------------------------------------------

    def remove(self, payload: Any) -> None:
        """Remove the entry carrying *payload*."""
        entry = self._payload_entries.pop(payload, None)
        if entry is None:
            raise IndexError_(f"payload {payload!r} not indexed")
        leaf = self._find_leaf(self._root, entry)
        if leaf is None:
            raise IndexError_(f"payload {payload!r} lost from the tree")
        leaf.entries.remove(entry)
        self._size -= 1
        self._condense(leaf)

    def _find_leaf(self, node: _Node, entry: _Entry) -> _Node | None:
        if node.leaf:
            return node if entry in node.entries else None
        for child_entry in node.entries:
            if boxes_intersect(child_entry.box, entry.box):
                found = self._find_leaf(child_entry.child, entry)
                if found is not None:
                    return found
        return None

    def _condense(self, node: _Node) -> None:
        orphans: list[_Entry] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self.min_entries:
                parent.entries = [
                    e for e in parent.entries if e.child is not node
                ]
                orphans.extend(self._all_leaf_entries(node))
            else:
                for entry in parent.entries:
                    if entry.child is node:
                        entry.box = node.box()
            node = parent
        if not self._root.leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0].child  # type: ignore[assignment]
            self._root.parent = None
        if not self._root.entries and not self._root.leaf:
            self._root = _Node(leaf=True)
        for orphan in orphans:
            self._insert_entry(orphan, into_leaves=True)

    def _all_leaf_entries(self, node: _Node) -> list[_Entry]:
        if node.leaf:
            return list(node.entries)
        collected: list[_Entry] = []
        for entry in node.entries:
            collected.extend(self._all_leaf_entries(entry.child))
        return collected

    # -- queries ---------------------------------------------------------------------

    def search_point(self, point: tuple[Key, ...]) -> Iterator[Any]:
        """Payloads whose box contains *point*."""
        if len(point) != self.dimensions:
            raise IndexError_("point dimensionality mismatch")
        yield from self._search_point(self._root, point)

    def _search_point(self, node: _Node, point: tuple[Key, ...]) -> Iterator[Any]:
        for entry in node.entries:
            if box_contains_point(entry.box, point):
                if node.leaf:
                    yield entry.payload
                else:
                    yield from self._search_point(entry.child, point)

    def search_box(self, box: Box) -> Iterator[Any]:
        """Payloads whose box intersects *box*."""
        if len(box) != self.dimensions:
            raise IndexError_("box dimensionality mismatch")
        yield from self._search_box(self._root, box)

    def _search_box(self, node: _Node, box: Box) -> Iterator[Any]:
        for entry in node.entries:
            if boxes_intersect(entry.box, box):
                if node.leaf:
                    yield entry.payload
                else:
                    yield from self._search_box(entry.child, box)

    def payloads(self) -> set[Any]:
        """Every indexed payload."""
        return set(self._payload_entries)


def _cover(entries: list[_Entry]) -> Box:
    covering = entries[0].box
    for entry in entries[1:]:
        covering = box_union(covering, entry.box)
    return covering
