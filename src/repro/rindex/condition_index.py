"""Indexing rule conditions with R-trees (§4.2.3, [LIN87]).

Each class gets an R-tree over its attribute space; every condition element
on that class contributes the hyper-rectangle of its variable-free
restrictions (variable and don't-care slots span the full axis).  Two uses,
both from the paper:

* ``conditions_matching(tuple)`` — "efficient implementation of selection,
  i.e. variable-free condition checking" during matching;
* ``rules_in_region(...)`` — rule-base queries such as "Give me all the
  rules that apply on employees older than 55", which tuple-marker schemes
  like POSTGRES cannot answer because "rule information is stored together
  with the actual data".
"""

from __future__ import annotations

from repro.lang.analysis import AnalyzedCondition, RuleAnalysis
from repro.rindex.interval import (
    Box,
    FULL_INTERVAL,
    Interval,
    interval_for,
    key_of,
)
from repro.rindex.rtree import RTree
from repro.storage.predicate import And, Comparison, Predicate, TruePredicate
from repro.storage.schema import RelationSchema, Value
from repro.storage.tuples import StoredTuple

#: A condition's identity in query results: (rule name, condition number).
ConditionId = tuple[str, int]


def condition_box(
    condition: AnalyzedCondition, schema: RelationSchema
) -> Box:
    """The hyper-rectangle of a condition's variable-free restrictions."""
    intervals: list[Interval] = [FULL_INTERVAL] * schema.arity

    def narrow(position: int, interval: Interval) -> None:
        current = intervals[position]
        low = max(current.low, interval.low)
        high = min(current.high, interval.high)
        intervals[position] = Interval(low, high)

    def visit(predicate: Predicate) -> None:
        if isinstance(predicate, Comparison):
            narrow(
                schema.position(predicate.attribute),
                interval_for(predicate.op, predicate.value),
            )
        elif isinstance(predicate, And):
            for part in predicate.parts:
                visit(part)

    visit(condition.constant_predicate)
    return tuple(intervals)


class ConditionIndex:
    """Per-class R-trees over every condition element of a rule set."""

    def __init__(
        self,
        analyses: dict[str, RuleAnalysis],
        schemas: dict[str, RelationSchema],
        max_entries: int = 8,
        bulk: bool = True,
    ) -> None:
        self.schemas = schemas
        self._trees: dict[str, RTree] = {}
        self._count = 0
        if bulk:
            # The whole rule base is known: STR-pack one tree per class.
            per_class: dict[str, list] = {}
            for analysis in analyses.values():
                for condition in analysis.conditions:
                    schema = schemas[condition.class_name]
                    per_class.setdefault(condition.class_name, []).append(
                        (
                            condition_box(condition, schema),
                            (analysis.name, condition.cond_number),
                        )
                    )
            for class_name, items in per_class.items():
                self._trees[class_name] = RTree.bulk_load(
                    schemas[class_name].arity, items, max_entries=max_entries
                )
                self._count += len(items)
        else:
            for analysis in analyses.values():
                for condition in analysis.conditions:
                    self.add_condition(analysis.name, condition, max_entries)

    def add_condition(
        self,
        rule_name: str,
        condition: AnalyzedCondition,
        max_entries: int = 8,
    ) -> None:
        """Index one condition element."""
        schema = self.schemas[condition.class_name]
        tree = self._trees.get(condition.class_name)
        if tree is None:
            tree = RTree(schema.arity, max_entries=max_entries)
            self._trees[condition.class_name] = tree
        tree.insert(
            condition_box(condition, schema),
            (rule_name, condition.cond_number),
        )
        self._count += 1

    def remove_condition(self, class_name: str, condition_id: ConditionId) -> None:
        """Drop one condition element from the index."""
        self._trees[class_name].remove(condition_id)
        self._count -= 1

    def __len__(self) -> int:
        return self._count

    def tree(self, class_name: str) -> RTree | None:
        """The R-tree for one class (None when no condition mentions it)."""
        return self._trees.get(class_name)

    # -- queries ----------------------------------------------------------------

    def conditions_matching(self, wme: StoredTuple) -> list[ConditionId]:
        """Condition ids whose variable-free box contains *wme*.

        An over-approximation by construction (boxes ignore ``<>`` tests
        and variable constraints); exact matching happens downstream.
        """
        tree = self._trees.get(wme.relation)
        if tree is None:
            return []
        point = tuple(key_of(value) for value in wme.values)
        return sorted(tree.search_point(point))

    def rules_in_region(
        self,
        class_name: str,
        restrictions: dict[str, tuple[str, Value]],
    ) -> set[str]:
        """Rule-base query: rules with a condition intersecting the region.

        *restrictions* maps attribute name to ``(op, value)``, e.g.
        ``{"age": (">", 55)}`` for "rules that apply on employees older
        than 55".
        """
        tree = self._trees.get(class_name)
        if tree is None:
            return set()
        schema = self.schemas[class_name]
        box: list[Interval] = [FULL_INTERVAL] * schema.arity
        for attribute, (op, value) in restrictions.items():
            box[schema.position(attribute)] = interval_for(op, value)
        return {rule for rule, _cen in tree.search_box(tuple(box))}
