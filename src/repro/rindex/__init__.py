"""R-tree predicate indexing over condition relations (§4.2.3, [LIN87])."""

from repro.rindex.condition_index import (
    ConditionId,
    ConditionIndex,
    condition_box,
)
from repro.rindex.interval import (
    Box,
    FULL_INTERVAL,
    Interval,
    KEY_MAX,
    KEY_MIN,
    Key,
    approx,
    box_area,
    box_contains_point,
    box_union,
    boxes_intersect,
    enlargement,
    full_box,
    interval_for,
    key_of,
)
from repro.rindex.rtree import RTree

__all__ = [
    "Box",
    "ConditionId",
    "ConditionIndex",
    "FULL_INTERVAL",
    "Interval",
    "KEY_MAX",
    "KEY_MIN",
    "Key",
    "RTree",
    "approx",
    "box_area",
    "box_contains_point",
    "box_union",
    "boxes_intersect",
    "condition_box",
    "enlargement",
    "full_box",
    "interval_for",
    "key_of",
]
