"""Rule packs and the tenant-session registry.

Many tenants of one server typically run the *same* program (the k8s
auto-fix pack, say) against their own working memories.  Parsing and
rule analysis are pure functions of the program text, so the registry
interns them: one :class:`RulePack` per distinct text (keyed by the same
CRC that binds checkpoints to their log), shared by every session built
from it.  Working memory, match network state, conflict set and WAL stay
strictly per tenant — sharing stops at the immutable compile artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.analysis import RuleAnalysis, analyze_program
from repro.lang.ast import Program
from repro.lang.parser import parse_program
from repro.recovery.session import program_crc


@dataclass
class RulePack:
    """The shared, immutable compile artifacts of one program text."""

    text: str
    crc: int
    program: Program
    analyses: dict[str, RuleAnalysis]
    #: Tenants currently built on this pack (bookkeeping for ``status``).
    tenants: set[str] = field(default_factory=set)

    @classmethod
    def build(cls, text: str) -> "RulePack":
        program = parse_program(text)
        return cls(
            text=text,
            crc=program_crc(text),
            program=program,
            analyses=analyze_program(program.rules, program.schemas),
        )


class SessionRegistry:
    """Tenant sessions plus the rule packs they share."""

    def __init__(self) -> None:
        self.sessions: dict = {}
        self._packs: dict[int, RulePack] = {}

    # -- rule packs -----------------------------------------------------------

    def pack_for(self, text: str) -> RulePack:
        """The interned pack for *text*, building it on first sight."""
        crc = program_crc(text)
        pack = self._packs.get(crc)
        if pack is None or pack.text != text:  # CRC collision: rebuild
            pack = RulePack.build(text)
            self._packs[pack.crc] = pack
        return pack

    @property
    def packs(self) -> list[RulePack]:
        return [self._packs[crc] for crc in sorted(self._packs)]

    # -- sessions -------------------------------------------------------------

    def add(self, session) -> None:
        self.sessions[session.name] = session
        session.pack.tenants.add(session.name)

    def get(self, name: str):
        return self.sessions.get(name)

    def names(self) -> list[str]:
        """Tenant names in the deterministic drain order."""
        return sorted(self.sessions)

    def remove(self, name: str) -> None:
        session = self.sessions.pop(name, None)
        if session is not None:
            session.pack.tenants.discard(name)
