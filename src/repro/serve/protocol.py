"""The serve wire protocol: newline-delimited JSON, one object per line.

Requests are JSON objects with an ``op`` field::

    {"op": "attach", "tenant": "t1", "program": "(literalize ...)"}
    {"op": "insert", "tenant": "t1", "seq": 1,
     "relation": "event", "values": {"kind": "oom", "pod": "web-1"}}
    {"op": "delete", "tenant": "t1", "seq": 2, "relation": "event", "tid": 3}
    {"op": "modify", "tenant": "t1", "seq": 3,
     "relation": "event", "tid": 4, "changes": {"count": 2}}
    {"op": "query", "tenant": "t1", "relation": "event"}
    {"op": "stats", "tenant": "t1"}     {"op": "status"}
    {"op": "ping"}                      {"op": "shutdown"}
    {"op": "follow", "epoch": 0, "have": {"t1": 12}}
    {"op": "promote"}

Replies mirror the request's ``op`` (and ``seq`` when it carried one) and
always carry ``ok``.  Mutations are *exactly-once*: each tenant's stream
numbers them with a strictly increasing client ``seq``; the session
persists the highest applied seq in every WAL boundary, so a retried or
replayed op at or below it is acknowledged as ``{"ok": true, "dup":
true}`` without touching working memory.  A mutation ack is sent only
after the group-commit flush that made its boundary durable — an acked op
survives ``kill -9``.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

#: Ops that mutate a tenant's working memory (require ``seq``; durable
#: and exactly-once).
MUTATION_OPS = ("insert", "delete", "modify")

#: Every verb the server understands.  ``follow`` is the replication
#: handshake (the connection becomes the shipping channel); ``promote``
#: turns a warm standby into the primary, bumping the fencing epoch.
OPS = MUTATION_OPS + (
    "attach", "query", "stats", "status", "ping", "shutdown",
    "follow", "promote",
)

#: Tenant names become WAL filenames; keep them path-safe.
TENANT_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


class ProtocolError(Exception):
    """A malformed or invalid request; ``reply`` is what to send back."""

    def __init__(self, detail: str, op: str | None = None,
                 seq: int | None = None) -> None:
        super().__init__(detail)
        self.reply = {"ok": False, "error": detail}
        if op is not None:
            self.reply["op"] = op
        if seq is not None:
            self.reply["seq"] = seq


@dataclass(frozen=True)
class Request:
    """One parsed, validated request line."""

    op: str
    tenant: str | None = None
    seq: int | None = None
    relation: str | None = None
    tid: int | None = None
    values: dict | list | None = None
    changes: dict | None = None
    program: str | None = None
    config: dict = field(default_factory=dict)
    #: Replication: the peer's fencing epoch (``follow``) and its last
    #: locally-durable seq per tenant (the catch-up handshake).
    epoch: int | None = None
    have: dict = field(default_factory=dict)


def _require(condition: bool, detail: str, op: str | None = None,
             seq: int | None = None) -> None:
    if not condition:
        raise ProtocolError(detail, op=op, seq=seq)


def parse_request(line: str | bytes) -> Request:
    """Parse and validate one request line; raises :class:`ProtocolError`."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        data = json.loads(line)
    except ValueError:
        raise ProtocolError("request is not valid JSON") from None
    _require(isinstance(data, dict), "request must be a JSON object")
    op = data.get("op")
    _require(isinstance(op, str) and op in OPS,
             f"unknown op {op!r}; choose from {sorted(OPS)}")
    seq = data.get("seq")
    tenant = data.get("tenant")
    if tenant is not None:
        _require(
            isinstance(tenant, str) and TENANT_RE.match(tenant) is not None,
            "tenant must match [A-Za-z0-9_-]{1,64}", op=op,
        )
    needs_tenant = op in MUTATION_OPS + ("attach", "query", "stats")
    if needs_tenant:
        _require(tenant is not None, f"op {op!r} requires a tenant", op=op)
    relation = data.get("relation")
    tid = data.get("tid")
    if op in MUTATION_OPS:
        _require(isinstance(seq, int) and seq >= 1,
                 f"op {op!r} requires an integer seq >= 1", op=op)
        _require(isinstance(relation, str) and bool(relation),
                 f"op {op!r} requires a relation", op=op, seq=seq)
    if op == "insert":
        values = data.get("values")
        _require(isinstance(values, (dict, list)),
                 "insert requires values (a mapping or a row list)",
                 op=op, seq=seq)
    if op in ("delete", "modify"):
        _require(isinstance(tid, int),
                 f"op {op!r} requires an integer tid", op=op, seq=seq)
    if op == "modify":
        changes = data.get("changes")
        _require(isinstance(changes, dict) and bool(changes),
                 "modify requires a non-empty changes mapping", op=op, seq=seq)
    if op == "query":
        _require(isinstance(relation, str) and bool(relation),
                 "query requires a relation", op=op)
    program = data.get("program")
    if program is not None:
        _require(isinstance(program, str), "program must be a string", op=op)
    config = data.get("config") or {}
    _require(isinstance(config, dict), "config must be a mapping", op=op)
    epoch = data.get("epoch")
    have = data.get("have") or {}
    if op == "follow":
        _require(isinstance(epoch, int) and epoch >= 0,
                 "follow requires an integer epoch >= 0", op=op)
        _require(
            isinstance(have, dict)
            and all(
                isinstance(k, str) and isinstance(v, int)
                for k, v in have.items()
            ),
            "follow's have must map tenant names to integer seqs", op=op,
        )
    return Request(
        op=op,
        tenant=tenant,
        seq=seq if isinstance(seq, int) else None,
        relation=relation if isinstance(relation, str) else None,
        tid=tid if isinstance(tid, int) else None,
        values=data.get("values"),
        changes=data.get("changes"),
        program=program,
        config=config,
        epoch=epoch if isinstance(epoch, int) else None,
        have=have if isinstance(have, dict) else {},
    )


def encode_reply(body: dict) -> bytes:
    """One reply line, newline-terminated."""
    return (json.dumps(body, sort_keys=True, separators=(",", ":")) +
            "\n").encode("utf-8")
