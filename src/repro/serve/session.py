"""One tenant = one production system + one write-ahead log.

A :class:`TenantSession` owns everything tenant-scoped: the
:class:`~repro.engine.interpreter.ProductionSystem` (working memory,
match network, conflict set), the
:class:`~repro.recovery.session.DurableRun` driving its WAL, the queue
of admitted-but-unapplied ops, and the exactly-once high-water mark
(``applied_seq``).  The only shared pieces are the immutable
:class:`~repro.serve.registry.RulePack` and the server's
:class:`~repro.recovery.wal.GroupCommit` barrier.

The engine task calls :meth:`drain`: it applies every queued mutation,
commits one ``"ops"`` boundary carrying ``applied_seq``, runs engine
cycles to quiescence (each cycle commits its own boundary), and hands
back the acks to release *after the group flush*.  Auto-checkpointing is
suppressed (``checkpoint_every=0`` on the run) because a checkpoint must
never reference a boundary the group hasn't flushed yet; the server
calls :meth:`maybe_checkpoint` after the flush instead.
"""

from __future__ import annotations

import os
import time

from repro.engine.interpreter import ProductionSystem
from repro.errors import ReproError
from repro.lang.ast import Program
from repro.recovery import DurableRun, recover
from repro.serve.registry import RulePack

#: Run configuration a fresh tenant gets unless attach overrides it.
DEFAULT_CONFIG = {
    "strategy": "rete",
    "resolution": "lex",
    "backend": "memory",
    "seed": 0,
    "batch_size": 1,
    "firing": "instance",
}

#: Keys an attach request's ``config`` may override.
CONFIG_KEYS = tuple(DEFAULT_CONFIG) + ("workers", "compile")

#: Rotate tenant logs at this segment size unless configured otherwise.
DEFAULT_ROTATE_BYTES = 256 * 1024

#: Safety valve on cycles per drain (a runaway rule pack cannot wedge
#: the engine task forever; leftover work continues next drain).
CYCLE_BUDGET = 10_000


def wal_path(data_dir: str, tenant: str) -> str:
    return os.path.join(data_dir, f"{tenant}.wal")


def checkpoint_path(data_dir: str, tenant: str) -> str:
    return os.path.join(data_dir, f"{tenant}.ckpt")


class TenantSession:
    """A live tenant: durable run, op queue, exactly-once bookkeeping."""

    def __init__(
        self,
        name: str,
        pack: RulePack,
        run: DurableRun,
        *,
        applied_seq: int = 0,
        position: int = 0,
        recovered: bool = False,
        checkpoint_rounds: int = 8,
        obs=None,
    ) -> None:
        self.name = name
        self.pack = pack
        self.run = run
        self.system: ProductionSystem = run.system
        self.applied_seq = applied_seq
        self.position = position
        self.recovered = recovered
        self.checkpoint_rounds = checkpoint_rounds
        self.obs = obs
        #: Admitted ops waiting for the engine task: ``(request, future)``
        #: in arrival order.  Futures may be None (driverless tests).
        self.queue: list = []
        self.rounds = 0
        self._rounds_since_checkpoint = 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def start(
        cls,
        name: str,
        pack: RulePack,
        data_dir: str,
        *,
        group=None,
        obs=None,
        config: dict | None = None,
        wal_rotate_bytes: int = DEFAULT_ROTATE_BYTES,
        checkpoint_rounds: int = 8,
        meta_extra: dict | None = None,
        wal_tap=None,
    ) -> "TenantSession":
        """A fresh tenant: new system on the shared pack, new log.

        *meta_extra* stamps extra keys (the serving epoch) into the WAL
        meta record; *wal_tap* installs the replication shipper's tap so
        even the setup records ship to an attached follower.
        """
        cfg = dict(DEFAULT_CONFIG)
        for key, value in (config or {}).items():
            if key in CONFIG_KEYS:
                cfg[key] = value
        system = ProductionSystem(
            pack.program,
            analyses=pack.analyses,
            obs=obs,
            **cfg,
        )
        run = DurableRun.start(
            system,
            wal_path(data_dir, name),
            pack.text,
            cfg,
            checkpoint_path=checkpoint_path(data_dir, name),
            checkpoint_every=0,  # server checkpoints after group flush
            group=group,
            wal_rotate_bytes=wal_rotate_bytes,
            extra={"applied_seq": 0, "serve_position": 0},
            meta_extra=meta_extra,
            wal_tap=wal_tap,
        )
        return cls(
            name, pack, run,
            checkpoint_rounds=checkpoint_rounds, obs=obs,
        )

    @classmethod
    def recover_from_disk(
        cls,
        name: str,
        data_dir: str,
        registry,
        *,
        group=None,
        obs=None,
        wal_rotate_bytes: int = DEFAULT_ROTATE_BYTES,
        checkpoint_rounds: int = 8,
    ) -> "TenantSession":
        """Rebuild a tenant from its log (the crash-restart path).

        The recovered system re-registers with the registry's rule pack
        for its program text, so restarted tenants share packs exactly
        like freshly attached ones.
        """
        ckpt = checkpoint_path(data_dir, name)
        state = recover(
            wal_path(data_dir, name),
            ckpt if os.path.exists(ckpt) else None,
            obs=obs,
        )
        return cls.from_recovered(
            name,
            state,
            registry,
            checkpoint_file=ckpt,
            group=group,
            obs=obs,
            wal_rotate_bytes=wal_rotate_bytes,
            checkpoint_rounds=checkpoint_rounds,
        )

    @classmethod
    def from_recovered(
        cls,
        name: str,
        state,
        registry,
        *,
        checkpoint_file: str | None = None,
        group=None,
        obs=None,
        wal_rotate_bytes: int = DEFAULT_ROTATE_BYTES,
        checkpoint_rounds: int = 8,
    ) -> "TenantSession":
        """A live session over an already-recovered state.

        Shared by the crash-restart path above and replica promotion
        (where the state comes from the follower's local materialization
        rather than a :func:`~repro.recovery.recover.recover` call).
        """
        pack = registry.pack_for(state.meta["program"])
        run = DurableRun.resume(
            state,
            checkpoint_path=checkpoint_file,
            checkpoint_every=0,
            group=group,
            wal_rotate_bytes=wal_rotate_bytes,
        )
        extra = state.extra or {}
        return cls(
            name, pack, run,
            applied_seq=int(extra.get("applied_seq", 0)),
            position=int(extra.get("serve_position", state.position)),
            recovered=True,
            checkpoint_rounds=checkpoint_rounds,
            obs=obs,
        )

    # -- queue ----------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Queued ops not yet applied (the admission signal)."""
        return len(self.queue)

    def enqueue(self, request, future=None) -> None:
        self.queue.append((request, future, time.perf_counter()))
        if self.obs is not None and self.obs.enabled:
            self.obs.metrics.gauge(
                f"serve.queue_depth[{self.name}]"
            ).set(len(self.queue))

    # -- applying ops ----------------------------------------------------------

    def _apply_one(self, request) -> dict:
        """Apply one mutation; returns the ack body (sans transport keys).

        A deterministic failure (unknown relation, missing tid) consumes
        the seq like a success: replaying the same stream against the
        same state fails the same way, so the op is exactly-once either
        way and the client sees the error in its ack.
        """
        wm = self.system.wm
        body: dict = {"op": request.op, "seq": request.seq, "ok": True}
        try:
            if request.op == "insert":
                wme = wm.insert(request.relation, request.values)
                body["tid"] = wme.tid
            elif request.op == "delete":
                wm.remove(wm.get(request.relation, request.tid))
                body["tid"] = request.tid
            elif request.op == "modify":
                wme = wm.get(request.relation, request.tid)
                changes = {
                    k: v
                    for k, v in request.changes.items()
                    if k in wm.schema(request.relation).attributes
                }
                if not changes:
                    raise ReproError(
                        "no applicable attributes in changes"
                    )
                wme = wm.modify(wme, changes)
                body["tid"] = wme.tid
        except ReproError as exc:
            body = {
                "op": request.op, "seq": request.seq,
                "ok": False, "error": str(exc),
            }
        self.applied_seq = request.seq
        self.position += 1
        return body

    def drain(self) -> list:
        """Apply every queued op, commit, run cycles; return the acks.

        Returns ``[(future_or_None, body)]``; the caller must resolve
        the futures only after the group-commit flush (the bodies carry
        ``"durable": true`` on that promise).
        """
        queued, self.queue = self.queue, []
        if not queued:
            return []
        acks = []
        started = time.perf_counter()
        for request, future, enqueued_at in queued:
            body = self._apply_one(request)
            body["tenant"] = self.name
            acks.append((future, body, enqueued_at))
        self.run.ops_boundary(
            self.position,
            extra={
                "applied_seq": self.applied_seq,
                "serve_position": self.position,
            },
        )
        result = self.run.run(max_cycles=CYCLE_BUDGET)
        self.rounds += 1
        self._rounds_since_checkpoint += 1
        obs = self.obs
        if obs is not None and obs.enabled:
            metrics = obs.metrics
            metrics.counter("serve.ops_applied").inc(len(queued))
            metrics.counter(f"serve.ops_applied[{self.name}]").inc(
                len(queued)
            )
            metrics.counter("serve.cycles").inc(result.cycles)
            metrics.gauge(f"serve.queue_depth[{self.name}]").set(0)
            metrics.log2_histogram("serve.drain_us").observe(
                (time.perf_counter() - started) * 1e6
            )
        return acks

    def run_to_quiescence(self) -> int:
        """Finish any interrupted recognize-act work (used on restart)."""
        result = self.run.run(max_cycles=CYCLE_BUDGET)
        return result.cycles

    # -- checkpoints and stats -------------------------------------------------

    def maybe_checkpoint(self, force: bool = False) -> bool:
        """Cut a checkpoint if due.  Call only after a group flush — the
        checkpoint names the last committed boundary, which must be
        durable before the checkpoint can supersede the log prefix."""
        if not force and self._rounds_since_checkpoint < self.checkpoint_rounds:
            return False
        body = self.run.checkpoint_now()
        if body is not None:
            self._rounds_since_checkpoint = 0
        return body is not None

    def stats(self) -> dict:
        system = self.system
        return {
            "tenant": self.name,
            "applied_seq": self.applied_seq,
            "position": self.position,
            "cycles": self.run.next_cycle - 1,
            "fired": len(self.run._fired),
            "wm_size": system.wm.size(),
            "output": [list(row) for row in system.output],
            "queue_depth": self.depth,
            "recovered": self.recovered,
            "pack_crc": self.pack.crc,
            "wal_last_seq": self.run.writer.last_seq,
            "wal_rotations": self.run.writer.rotations,
            "halted": self.run.halted,
        }

    def query(self, relation: str) -> list:
        wm = self.system.wm
        wm.schema(relation)  # raises for unknown relations
        return [
            [wme.tid, wme.timetag, list(wme.values)]
            for wme in sorted(wm.tuples(relation), key=lambda w: w.tid)
        ]

    def close(self) -> None:
        self.run.close()
