"""Admission control: deterministic accept / defer / shed on queue depth.

The server cannot let one tenant's burst grow an unbounded queue (the
engine task drains tenants at group-commit cadence, so queued ops are
exactly the ops whose acks are owed).  Admission is a pure function of
the observed depth against two thresholds:

* depth < ``defer_depth`` — **accept**: enqueue immediately;
* depth < ``shed_depth`` — **defer**: the reader awaits the next drain
  before enqueueing (TCP backpressure propagates to the client);
* otherwise — **shed**: refuse with ``{"ok": false, "shed": true}``;
  the client retries with the same seq (exactly-once makes retry safe).

Determinism matters because the shed counters and queue-depth gauges are
gated against a metrics baseline: the same op stream against the same
thresholds must shed the same ops.
"""

from __future__ import annotations

from dataclasses import dataclass

ACCEPT = "accept"
DEFER = "defer"
SHED = "shed"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Thresholds, in queued-ops per tenant."""

    defer_depth: int = 64
    shed_depth: int = 256

    def __post_init__(self) -> None:
        if not 0 < self.defer_depth <= self.shed_depth:
            raise ValueError(
                "need 0 < defer_depth <= shed_depth, got "
                f"{self.defer_depth} / {self.shed_depth}"
            )


class AdmissionController:
    """Applies an :class:`AdmissionPolicy` and keeps score.

    ``admit(depth)`` is pure in the depth argument; the controller only
    accumulates counters (mirrored into the ``serve.admission_*``
    metrics when observability is on) so tests can assert shed behaviour
    without a metrics registry.

    *tenant_policies* maps tenant names to per-tenant quota overrides
    (``repro serve --tenant-defer-depth t1=8``): a noisy tenant can be
    shed early, or a critical one given headroom, without moving the
    global thresholds.  Decisions stay a pure function of
    ``(tenant, depth)``, so the per-tenant ``serve.admission_*[tenant]``
    counters are as deterministic as the global ones.
    """

    def __init__(self, policy: AdmissionPolicy | None = None,
                 obs=None,
                 tenant_policies: dict[str, AdmissionPolicy] | None = None,
                 ) -> None:
        self.policy = policy or AdmissionPolicy()
        self.tenant_policies = dict(tenant_policies or {})
        self.obs = obs
        self.accepted = 0
        self.deferred = 0
        self.shed = 0

    def policy_for(self, tenant: str | None) -> AdmissionPolicy:
        """The effective thresholds for *tenant* (global when no
        override is registered, or no tenant is named)."""
        if tenant is None:
            return self.policy
        return self.tenant_policies.get(tenant, self.policy)

    def admit(self, depth: int, tenant: str | None = None) -> str:
        """Decide for one op observing *depth* queued ops."""
        policy = self.policy_for(tenant)
        if depth >= policy.shed_depth:
            decision = SHED
            self.shed += 1
        elif depth >= policy.defer_depth:
            decision = DEFER
            self.deferred += 1
        else:
            decision = ACCEPT
            self.accepted += 1
        if self.obs is not None and self.obs.enabled:
            metrics = self.obs.metrics
            metrics.counter(f"serve.admission_{decision}").inc()
            if tenant is not None:
                metrics.counter(
                    f"serve.admission_{decision}[{tenant}]"
                ).inc()
        return decision
