"""Admission control: deterministic accept / defer / shed on queue depth.

The server cannot let one tenant's burst grow an unbounded queue (the
engine task drains tenants at group-commit cadence, so queued ops are
exactly the ops whose acks are owed).  Admission is a pure function of
the observed depth against two thresholds:

* depth < ``defer_depth`` — **accept**: enqueue immediately;
* depth < ``shed_depth`` — **defer**: the reader awaits the next drain
  before enqueueing (TCP backpressure propagates to the client);
* otherwise — **shed**: refuse with ``{"ok": false, "shed": true}``;
  the client retries with the same seq (exactly-once makes retry safe).

Determinism matters because the shed counters and queue-depth gauges are
gated against a metrics baseline: the same op stream against the same
thresholds must shed the same ops.
"""

from __future__ import annotations

from dataclasses import dataclass

ACCEPT = "accept"
DEFER = "defer"
SHED = "shed"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Thresholds, in queued-ops per tenant."""

    defer_depth: int = 64
    shed_depth: int = 256

    def __post_init__(self) -> None:
        if not 0 < self.defer_depth <= self.shed_depth:
            raise ValueError(
                "need 0 < defer_depth <= shed_depth, got "
                f"{self.defer_depth} / {self.shed_depth}"
            )


class AdmissionController:
    """Applies an :class:`AdmissionPolicy` and keeps score.

    ``admit(depth)`` is pure in the depth argument; the controller only
    accumulates counters (mirrored into the ``serve.admission_*``
    metrics when observability is on) so tests can assert shed behaviour
    without a metrics registry.
    """

    def __init__(self, policy: AdmissionPolicy | None = None,
                 obs=None) -> None:
        self.policy = policy or AdmissionPolicy()
        self.obs = obs
        self.accepted = 0
        self.deferred = 0
        self.shed = 0

    def admit(self, depth: int) -> str:
        """Decide for one op observing *depth* queued ops."""
        if depth >= self.policy.shed_depth:
            decision = SHED
            self.shed += 1
        elif depth >= self.policy.defer_depth:
            decision = DEFER
            self.deferred += 1
        else:
            decision = ACCEPT
            self.accepted += 1
        if self.obs is not None and self.obs.enabled:
            self.obs.metrics.counter(f"serve.admission_{decision}").inc()
        return decision
