"""repro.serve — a long-lived, multi-tenant rule service.

The paper's premise is a *production system hosted in a DBMS*: a shared,
durable engine that many applications talk to, not a batch process that
owns its working memory for one run.  This package supplies that shape:

* :mod:`repro.serve.protocol` — newline-delimited JSON over TCP: WM ops
  (``insert`` / ``delete`` / ``modify``), queries and admin verbs, each
  routed to a named tenant and acknowledged exactly once;
* :mod:`repro.serve.registry` — tenant sessions plus shared *rule
  packs*: tenants running the same program text share one parsed
  :class:`~repro.lang.ast.Program` and one analysis table, so N tenants
  cost one compilation;
* :mod:`repro.serve.session` — one
  :class:`~repro.recovery.session.DurableRun` per tenant: every applied
  op batch ends in a WAL boundary, engine cycles run to quiescence after
  each batch, and a crash replays from the tenant's own log;
* :mod:`repro.serve.backpressure` — deterministic admission control
  (accept / defer / shed) on per-tenant queue depth, feeding the
  ``serve.*`` metrics ``repro top`` renders;
* :mod:`repro.serve.server` — the asyncio front end: per-connection
  readers, one engine task draining tenants in sorted order, a
  cross-tenant :class:`~repro.recovery.wal.GroupCommit` fsync barrier
  (no ack leaves before the flush covering it), and crash-restart
  recovery of every tenant log found on disk before the socket opens.

``repro serve --data-dir DIR`` is the CLI entry point;
``docs/SERVING.md`` walks the protocol and the durability contract.
"""

from repro.serve.backpressure import (
    ACCEPT,
    DEFER,
    SHED,
    AdmissionController,
)
from repro.serve.protocol import (
    MUTATION_OPS,
    ProtocolError,
    Request,
    encode_reply,
    parse_request,
)
from repro.serve.registry import RulePack, SessionRegistry
from repro.serve.server import RuleServer
from repro.serve.session import TenantSession

__all__ = [
    "ACCEPT",
    "AdmissionController",
    "DEFER",
    "MUTATION_OPS",
    "ProtocolError",
    "Request",
    "RulePack",
    "RuleServer",
    "SHED",
    "SessionRegistry",
    "TenantSession",
    "encode_reply",
    "parse_request",
]
