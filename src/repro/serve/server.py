"""The asyncio front end: many tenants, one engine, one fsync barrier.

Concurrency model — deliberately simple and deterministic:

* one reader coroutine per connection parses requests and routes them;
  mutations pass admission control and join their tenant's queue with a
  future for the eventual ack;
* one *engine task* owns every production system.  Each round it drains
  the tenants with queued work **in sorted tenant order** (apply ops,
  commit the ops boundary, run cycles to quiescence), then flushes the
  shared :class:`~repro.recovery.wal.GroupCommit` — one fsync barrier
  covering every tenant's boundaries — and only then resolves the acks.
  An acknowledged op is therefore durable by construction: ``kill -9``
  after the ack replays it from the tenant's log.
* checkpoints are cut after the flush (never inside a round), so a
  checkpoint can never name a boundary that isn't durable yet.

On start the server scans its data directory and recovers **every**
tenant log it finds — including logs whose active file is missing
(the torn-rotation window) — before the listening socket opens, so
``repro serve`` *is* ``repro resume`` for the whole fleet.

Replication (:mod:`repro.replica`) rides the same round structure.  A
primary accepts one ``follow`` handshake; the connection then becomes
the shipping channel: after each group flush the engine task sends the
round's freshly-durable records plus a ``commit`` frame and waits for
the follower's ack **before releasing client acks** (semi-synchronous —
every acked op is durable on both sides).  A slow or dead follower
degrades the pair to async instead of wedging the primary.  A server
started with ``follow=HOST:PORT`` runs read-only: it tails the primary
into a :class:`~repro.replica.follower.FollowerState` and can be
promoted (``promote`` op, or automatically once the primary has been
unreachable past the takeover deadline), bumping the fencing epoch so
the old primary's shipments are refused everywhere.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import time

from repro.errors import ReproError
from repro.obs import Observability
from repro.recovery import recover
from repro.recovery.wal import GroupCommit
from repro.replica import (
    FollowerState,
    FollowerTenant,
    LogShipper,
    bump_epoch,
    read_epoch,
    write_epoch,
)
from repro.serve.backpressure import (
    ACCEPT,
    DEFER,
    AdmissionController,
    AdmissionPolicy,
)
from repro.serve.protocol import (
    MUTATION_OPS,
    ProtocolError,
    Request,
    encode_reply,
    parse_request,
)
from repro.serve.registry import SessionRegistry
from repro.serve.session import (
    DEFAULT_ROTATE_BYTES,
    TenantSession,
    checkpoint_path,
    wal_path,
)

#: Anything that is (or once was) a tenant WAL: ``<tenant>.wal``, an
#: archived segment, or the meta sidecar left by rotation.
_TENANT_FILE_RE = re.compile(r"^([A-Za-z0-9_-]+)\.wal(?:$|\.)")


def scan_tenants(data_dir: str) -> list[str]:
    """Tenant names with durable state under *data_dir*, sorted."""
    names = set()
    for entry in os.listdir(data_dir):
        match = _TENANT_FILE_RE.match(entry)
        if match is not None:
            names.add(match.group(1))
    return sorted(names)


class ShipLink:
    """The primary's half of an attached follower connection.

    The reader coroutine that accepted the ``follow`` handshake parks on
    :attr:`closed`; the engine task owns all traffic on the socket while
    the link is attached (frames out, acks in) so there is never a
    second reader racing it.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.closed = asyncio.Event()


class RuleServer:
    """One engine process hosting many tenant sessions over TCP."""

    def __init__(
        self,
        data_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        obs: Observability | None = None,
        admission: AdmissionController | None = None,
        checkpoint_rounds: int = 8,
        wal_rotate_bytes: int = DEFAULT_ROTATE_BYTES,
        follow: str | None = None,
        takeover_deadline: float = 10.0,
        ack_timeout: float = 5.0,
    ) -> None:
        self.data_dir = data_dir
        self.host = host
        self.port = port
        self.obs = obs or Observability()
        self.group = GroupCommit(self.obs)
        self.registry = SessionRegistry()
        self.admission = admission or AdmissionController(
            AdmissionPolicy(), obs=self.obs
        )
        self.checkpoint_rounds = checkpoint_rounds
        self.wal_rotate_bytes = wal_rotate_bytes
        self.recovered_tenants: list[str] = []
        self.rounds = 0
        #: ``"primary"`` or ``"follower"`` — promotion flips it exactly
        #: once, for the life of the process.
        self.role = "primary" if follow is None else "follower"
        self.follow = follow
        self.takeover_deadline = takeover_deadline
        self.ack_timeout = ack_timeout
        self.epoch = 0
        self.shipper: LogShipper | None = None
        self.follower: FollowerState | None = None
        self.promotions = 0
        self._server: asyncio.AbstractServer | None = None
        self._engine_task: asyncio.Task | None = None
        self._follow_task: asyncio.Task | None = None
        self._work = asyncio.Event()
        self._drained = asyncio.Event()
        self._stopping = asyncio.Event()
        self._closed = False

    # -- recovery on start ------------------------------------------------------

    def recover_all(self) -> list[str]:
        """Recover every tenant log under the data dir; returns names.

        Each recovered session immediately finishes any interrupted
        recognize-act work (determinism makes the re-execution identical
        to the run that died), and the resulting boundaries are flushed
        before the server accepts traffic.
        """
        os.makedirs(self.data_dir, exist_ok=True)
        started = time.perf_counter()
        recovered = []
        for name in scan_tenants(self.data_dir):
            session = TenantSession.recover_from_disk(
                name,
                self.data_dir,
                self.registry,
                group=self.group,
                obs=self.obs,
                wal_rotate_bytes=self.wal_rotate_bytes,
                checkpoint_rounds=self.checkpoint_rounds,
            )
            self.registry.add(session)
            session.run_to_quiescence()
            if self.shipper is not None:
                session.run.writer.tap = self.shipper.tap_for(name)
            recovered.append(name)
        self.group.flush()
        self.recovered_tenants = recovered
        if self.obs.enabled and recovered:
            metrics = self.obs.metrics
            metrics.counter("serve.tenants_recovered").inc(len(recovered))
            metrics.log2_histogram("serve.recovery_us").observe(
                (time.perf_counter() - started) * 1e6
            )
        return recovered

    # -- lifecycle --------------------------------------------------------------

    def _recover_follower_local(self) -> None:
        """Resume standby tenants from the follower's own local files.

        A materialization recovery cannot read (torn beyond repair, or
        emptied by compaction races) is discarded; the tenant simply
        re-bootstraps from the primary's snapshot frame on handshake.
        """
        for name in scan_tenants(self.data_dir):
            ckpt = checkpoint_path(self.data_dir, name)
            try:
                state = recover(
                    wal_path(self.data_dir, name),
                    ckpt if os.path.exists(ckpt) else None,
                    obs=self.obs,
                )
            except ReproError:
                FollowerTenant(name, self.data_dir, obs=self.obs).discard()
                continue
            self.follower.tenants[name] = FollowerTenant.from_state(
                name, self.data_dir, state, obs=self.obs
            )

    async def start(self) -> None:
        """Recover, bind, announce, and start the engine task."""
        os.makedirs(self.data_dir, exist_ok=True)
        if self.role == "primary":
            self.epoch = max(read_epoch(self.data_dir), 1)
            write_epoch(self.data_dir, self.epoch)
            self.shipper = LogShipper(obs=self.obs, epoch=self.epoch)
            self.recover_all()
        else:
            self.epoch = read_epoch(self.data_dir)
            self.follower = FollowerState(
                self.data_dir, obs=self.obs, epoch=self.epoch
            )
            self._recover_follower_local()
        if self.obs.enabled:
            self.obs.metrics.gauge("replica.epoch").set(self.epoch)
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._engine_task = asyncio.ensure_future(self._engine_loop())
        print(f"serving on {self.host}:{self.port}", flush=True)
        if self.role == "follower":
            self._follow_task = asyncio.ensure_future(self._follow_loop())
            print(
                f"following {self.follow} (epoch {self.epoch})", flush=True
            )

    async def serve_forever(self) -> None:
        await self._stopping.wait()

    async def shutdown(self) -> None:
        """Graceful stop: drain queues, flush, checkpoint, close logs."""
        if self._closed:
            return
        self._closed = True
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._engine_task is not None:
            self._work.set()  # wake it so it can observe _stopping
            await self._engine_task
        if self._follow_task is not None:
            self._follow_task.cancel()
            try:
                await self._follow_task
            except (asyncio.CancelledError, Exception):
                pass
            self._follow_task = None
        # Anything admitted after the last round.
        per_session = self._drain_round()
        if self.shipper is not None and self.shipper.link is not None:
            await self._ship_round()
            if self.shipper.link is not None:
                self.shipper.link.closed.set()
                self.shipper.detach()
        self._release_acks(per_session)
        for name in self.registry.names():
            session = self.registry.get(name)
            session.maybe_checkpoint(force=True)
            session.close()
        if self.follower is not None:
            self.follower.close()

    # -- the engine task --------------------------------------------------------

    async def _engine_loop(self) -> None:
        while not self._stopping.is_set():
            await self._work.wait()
            self._work.clear()
            if self._stopping.is_set():
                break
            per_session = self._drain_round()
            # Semi-synchronous replication: the round's records (already
            # locally durable — the group flushed) go to the follower,
            # and its ack gates the client acks below.
            if self.shipper is not None and self.shipper.link is not None:
                await self._ship_round()
            self._release_acks(per_session)
            # Release readers deferred by admission control, then hand
            # them a fresh event for the next round.
            self._drained.set()
            self._drained = asyncio.Event()
            await asyncio.sleep(0)

    def _drain_round(self) -> list:
        """One group-commit round over every tenant with queued work.

        Returns ``[(session, acks)]`` for :meth:`_release_acks`; the
        split lets the engine task await the follower's round ack between
        the flush and the client-visible acks.
        """
        busy = [
            self.registry.get(name)
            for name in self.registry.names()
            if self.registry.get(name).depth
        ]
        if not busy:
            return []
        per_session = [(session, session.drain()) for session in busy]
        self.group.flush()
        self.rounds += 1
        return per_session

    def _release_acks(self, per_session: list) -> None:
        now = time.perf_counter()
        observing = self.obs.enabled
        for session, acks in per_session:
            for future, body, enqueued_at in acks:
                body["durable"] = True
                body["epoch"] = self.epoch
                if future is not None and not future.done():
                    future.set_result(body)
                if observing:
                    micros = (now - enqueued_at) * 1e6
                    metrics = self.obs.metrics
                    metrics.log2_histogram("serve.latency_us").observe(
                        micros
                    )
                    metrics.log2_histogram(
                        f"serve.latency_us[{session.name}]"
                    ).observe(micros)
            session.maybe_checkpoint()

    async def _ship_round(self) -> None:
        """Send this round's frames; await the follower's ack.

        Any failure (timeout, hangup, garbage) degrades the pair to
        async — the link detaches and the primary carries on alone
        rather than wedging every client behind a dead standby.
        """
        link = self.shipper.link
        if link is None:
            return
        try:
            for frame in self.shipper.round_frames():
                link.writer.write(encode_reply(frame))
            await link.writer.drain()
            line = await asyncio.wait_for(
                link.reader.readline(), timeout=self.ack_timeout
            )
            if not line:
                raise ConnectionError("follower hung up")
            ack = json.loads(line)
            if ack.get("frame") != "ack":
                raise ValueError(f"expected an ack frame, got {ack!r}")
            self.shipper.handle_ack(ack)
        except (OSError, asyncio.TimeoutError, ValueError, ConnectionError):
            self.shipper.mark_degraded()
            link.closed.set()

    # -- request handling -------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._stopping.is_set():
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = parse_request(line)
                except ProtocolError as exc:
                    writer.write(encode_reply(exc.reply))
                    await writer.drain()
                    continue
                if request.op == "follow":
                    # The handshake hands the whole connection to the
                    # shipping channel; it never comes back to this loop.
                    await self._handle_follow(request, reader, writer)
                    break
                reply = await self._dispatch(request)
                writer.write(encode_reply(reply))
                await writer.drain()
                if request.op == "shutdown":
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # The listener was closed with this reader in flight (server
            # shutdown); finish quietly rather than exploding the task.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: Request) -> dict:
        if self.obs.enabled:
            self.obs.metrics.counter("serve.requests").inc()
        op = request.op
        if op == "ping":
            return {"ok": True, "op": "ping", "pong": True}
        if op == "status":
            return self._status()
        if op == "shutdown":
            asyncio.get_running_loop().call_soon(self._stopping.set)
            self._work.set()
            return {"ok": True, "op": "shutdown"}
        if op == "promote":
            return self._handle_promote()
        if self.role == "follower":
            return self._dispatch_follower(request)
        if op == "attach":
            return self._attach(request)
        session = self.registry.get(request.tenant)
        if session is None:
            return {
                "ok": False, "op": op, "seq": request.seq,
                "error": f"unknown tenant {request.tenant!r}; attach first",
            }
        if op == "stats":
            return {"ok": True, "op": "stats", **session.stats()}
        if op == "query":
            try:
                rows = session.query(request.relation)
            except Exception as exc:
                return {"ok": False, "op": op, "error": str(exc)}
            return {
                "ok": True, "op": "query", "tenant": session.name,
                "relation": request.relation, "rows": rows,
            }
        # -- mutations --
        if request.seq <= session.applied_seq:
            if self.obs.enabled:
                self.obs.metrics.counter("serve.dup_acks").inc()
            return {
                "ok": True, "op": op, "seq": request.seq,
                "tenant": session.name, "dup": True, "durable": True,
                "epoch": self.epoch,
            }
        decision = self.admission.admit(session.depth, tenant=session.name)
        if decision == DEFER:
            await self._drained.wait()
        elif decision != ACCEPT:  # SHED
            return {
                "ok": False, "op": op, "seq": request.seq,
                "tenant": session.name, "shed": True,
                "error": "queue full; retry with the same seq",
            }
        future = asyncio.get_running_loop().create_future()
        session.enqueue(request, future)
        self._work.set()
        return await future

    def _dispatch_follower(self, request: Request) -> dict:
        """Reads work against the standby; writes are refused."""
        op = request.op
        tenant = self.follower.tenants.get(request.tenant or "")
        if op in ("stats", "query") and tenant is None:
            return {
                "ok": False, "op": op,
                "error": f"unknown tenant {request.tenant!r} on this "
                         "follower",
            }
        if op == "stats":
            return {"ok": True, "op": "stats", **tenant.stats()}
        if op == "query":
            wm = tenant.system.wm
            try:
                wm.schema(request.relation)
                rows = [
                    [wme.tid, wme.timetag, list(wme.values)]
                    for wme in sorted(
                        wm.tuples(request.relation), key=lambda w: w.tid
                    )
                ]
            except Exception as exc:
                return {"ok": False, "op": op, "error": str(exc)}
            return {
                "ok": True, "op": "query", "tenant": request.tenant,
                "relation": request.relation, "rows": rows,
            }
        reply = {
            "ok": False, "op": op, "follower": True, "epoch": self.epoch,
            "error": "this server is a read-only follower; promote it or "
                     "write to the primary",
        }
        if request.seq is not None:
            reply["seq"] = request.seq
        return reply

    # -- promotion ---------------------------------------------------------------

    def _handle_promote(self) -> dict:
        if self.role == "primary":
            return {
                "ok": True, "op": "promote", "epoch": self.epoch,
                "already_primary": True, "tenants": self.registry.names(),
            }
        tenants = self._promote()
        return {
            "ok": True, "op": "promote", "epoch": self.epoch,
            "already_primary": False, "tenants": tenants,
        }

    def _promote(self) -> list[str]:
        """Warm standby → primary, fencing the old epoch.

        The new epoch is persisted *before* the first write the promoted
        tenants make (the quiescence catch-up below), so a crash during
        promotion still comes back fenced-forward.  Each follower tenant
        finalizes into a RecoveredState — dropping only the staged
        records past the last shipped boundary, the same debris recovery
        would discard — and resumes its own local log in place.
        """
        started = time.perf_counter()
        states = self.follower.pop_states()
        self.epoch = bump_epoch(self.data_dir)
        self.role = "follower->primary"  # writes open only when done
        self.shipper = LogShipper(obs=self.obs, epoch=self.epoch)
        if (
            self._follow_task is not None
            and self._follow_task is not asyncio.current_task()
        ):
            self._follow_task.cancel()
        promoted = []
        for name in sorted(states):
            session = TenantSession.from_recovered(
                name,
                states[name],
                self.registry,
                checkpoint_file=checkpoint_path(self.data_dir, name),
                group=self.group,
                obs=self.obs,
                wal_rotate_bytes=self.wal_rotate_bytes,
                checkpoint_rounds=self.checkpoint_rounds,
            )
            self.registry.add(session)
            session.run_to_quiescence()
            session.run.writer.tap = self.shipper.tap_for(name)
            promoted.append(name)
        self.group.flush()
        self.recovered_tenants = promoted
        self.role = "primary"
        self.promotions += 1
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.counter("replica.promotions").inc()
            metrics.gauge("replica.epoch").set(self.epoch)
            metrics.log2_histogram("replica.promotion_us").observe(
                (time.perf_counter() - started) * 1e6
            )
        return promoted

    # -- the primary's shipping channel ------------------------------------------

    async def _handle_follow(
        self,
        request: Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Accept (or refuse) a follower; then own the connection until
        the link dies or the server stops."""
        if self.role != "primary":
            writer.write(encode_reply({
                "ok": False, "op": "follow", "epoch": self.epoch,
                "error": "cannot follow a follower",
            }))
            await writer.drain()
            return
        peer_epoch = request.epoch or 0
        if peer_epoch > self.epoch:
            # The peer outlived a promotion we never saw: *we* are the
            # stale primary.  Refuse, naming our fenced epoch.
            writer.write(encode_reply({
                "ok": False, "op": "follow", "fenced": True,
                "epoch": self.epoch,
                "error": f"this primary is at stale epoch {self.epoch}; "
                         f"the pair was promoted to epoch {peer_epoch} — "
                         "shipments refused",
            }))
            await writer.drain()
            if self.obs.enabled:
                self.obs.metrics.counter("replica.fenced_handshakes").inc()
            return
        if self.shipper.link is not None:
            writer.write(encode_reply({
                "ok": False, "op": "follow", "epoch": self.epoch,
                "error": "a follower is already attached",
            }))
            await writer.drain()
            return
        # Atomic under the event loop (no awaits): make everything
        # durable, snapshot each tenant past the follower's have-seq,
        # and attach the tap — no record can fall between the chain
        # read and the live tail.
        self.group.flush()
        frames = []
        for name in self.registry.names():
            session = self.registry.get(name)
            session.run.writer.sync()
            frames.append(self.shipper.snapshot_frame(
                name,
                wal_path(self.data_dir, name),
                checkpoint_path(self.data_dir, name),
                have_seq=int(request.have.get(name, 0)),
            ))
        link = ShipLink(reader, writer)
        self.shipper.attach(link)
        writer.write(encode_reply({
            "ok": True, "op": "follow", "epoch": self.epoch,
            "tenants": self.registry.names(),
        }))
        for frame in frames:
            writer.write(encode_reply(frame))
        try:
            await writer.drain()
        except (OSError, ConnectionError):
            self.shipper.mark_degraded()
            return
        # Wake the engine for an immediate (possibly empty) round so the
        # bootstrap gets its commit frame and the follower fsyncs it.
        self._work.set()
        stopping = asyncio.ensure_future(self._stopping.wait())
        closed = asyncio.ensure_future(link.closed.wait())
        try:
            await asyncio.wait(
                (stopping, closed), return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            stopping.cancel()
            closed.cancel()
        if self.shipper.link is link:
            self.shipper.detach()

    # -- the follower's tail -----------------------------------------------------

    async def _follow_loop(self) -> None:
        """Connect to the primary, tail its frames, ack its commits.

        Reconnects with the follower's ``have`` positions after any
        drop.  Once the primary has been unreachable for longer than
        the takeover deadline, the standby promotes itself (a deadline
        of 0 disables automatic takeover)."""
        host, _, port = self.follow.rpartition(":")
        lost_at: float | None = None
        while not self._stopping.is_set() and self.role == "follower":
            try:
                reader, writer = await asyncio.open_connection(
                    host or "127.0.0.1", int(port)
                )
            except OSError:
                if lost_at is None:
                    lost_at = time.monotonic()
                if (
                    self.takeover_deadline > 0
                    and time.monotonic() - lost_at >= self.takeover_deadline
                ):
                    self._promote()
                    return
                await asyncio.sleep(0.1)
                continue
            try:
                writer.write(encode_reply({
                    "op": "follow",
                    "epoch": self.follower.epoch,
                    "have": self.follower.have(),
                }))
                await writer.drain()
                line = await reader.readline()
                reply = json.loads(line) if line else {}
                if not reply.get("ok"):
                    # Refused: fenced handshakes and already-attached
                    # races both mean "not our primary right now".
                    if lost_at is None:
                        lost_at = time.monotonic()
                    await asyncio.sleep(0.1)
                    continue
                primary_epoch = int(reply.get("epoch") or 0)
                if primary_epoch < self.follower.epoch:
                    # A stale primary came back; never adopt it.
                    if lost_at is None:
                        lost_at = time.monotonic()
                    await asyncio.sleep(0.1)
                    continue
                self.epoch = primary_epoch
                self.follower.epoch = primary_epoch
                write_epoch(self.data_dir, primary_epoch)
                if self.obs.enabled:
                    self.obs.metrics.gauge("replica.epoch").set(self.epoch)
                lost_at = None
                while not self._stopping.is_set():
                    line = await reader.readline()
                    if not line:
                        break
                    frame = json.loads(line)
                    ack = self.follower.handle_frame(frame)
                    if ack is not None:
                        writer.write(encode_reply(ack))
                        await writer.drain()
            except (OSError, ConnectionError, ValueError):
                pass
            except asyncio.CancelledError:
                raise
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (OSError, ConnectionError):
                    pass
            if self._stopping.is_set() or self.role != "follower":
                return
            lost_at = time.monotonic()
            deadline = self.takeover_deadline
            while (
                not self._stopping.is_set()
                and (deadline <= 0 or time.monotonic() - lost_at < deadline)
            ):
                # Probe for a restarted primary between deadline checks.
                try:
                    probe = await asyncio.open_connection(
                        host or "127.0.0.1", int(port)
                    )
                    probe[1].close()
                    break
                except OSError:
                    await asyncio.sleep(0.1)
            else:
                if not self._stopping.is_set() and deadline > 0:
                    self._promote()
                    return

    def _attach(self, request: Request) -> dict:
        session = self.registry.get(request.tenant)
        if session is not None:
            if (
                request.program is not None
                and request.program != session.pack.text
            ):
                return {
                    "ok": False, "op": "attach", "tenant": request.tenant,
                    "error": "tenant already attached with a different "
                             "program",
                }
            return {
                "ok": True, "op": "attach", "tenant": request.tenant,
                "recovered": session.recovered, "existing": True,
                "applied_seq": session.applied_seq,
                "pack_crc": session.pack.crc,
            }
        if request.program is None:
            return {
                "ok": False, "op": "attach", "tenant": request.tenant,
                "error": "new tenant needs a program",
            }
        try:
            pack = self.registry.pack_for(request.program)
            session = TenantSession.start(
                request.tenant,
                pack,
                self.data_dir,
                group=self.group,
                obs=self.obs,
                config=request.config,
                wal_rotate_bytes=self.wal_rotate_bytes,
                checkpoint_rounds=self.checkpoint_rounds,
                meta_extra={"epoch": self.epoch},
                wal_tap=(
                    self.shipper.tap_for(request.tenant)
                    if self.shipper is not None
                    else None
                ),
            )
        except Exception as exc:
            return {
                "ok": False, "op": "attach", "tenant": request.tenant,
                "error": str(exc),
            }
        self.registry.add(session)
        # The setup boundary enlisted with the group; make it durable
        # before acknowledging the tenant exists.
        self.group.flush()
        if self.obs.enabled:
            self.obs.metrics.counter("serve.attaches").inc()
            self.obs.metrics.gauge("serve.tenants").set(
                len(self.registry.sessions)
            )
        return {
            "ok": True, "op": "attach", "tenant": request.tenant,
            "recovered": False, "existing": False, "applied_seq": 0,
            "pack_crc": pack.crc,
        }

    def _status(self) -> dict:
        body = {
            "ok": True,
            "op": "status",
            "role": self.role,
            "epoch": self.epoch,
            "tenants": {
                name: self.registry.get(name).stats()
                for name in self.registry.names()
            },
            "packs": [
                {"crc": pack.crc, "tenants": sorted(pack.tenants)}
                for pack in self.registry.packs
            ],
            "recovered_tenants": self.recovered_tenants,
            "rounds": self.rounds,
            "group_commits": self.group.flushes,
            "admission": {
                "accepted": self.admission.accepted,
                "deferred": self.admission.deferred,
                "shed": self.admission.shed,
            },
        }
        if self.shipper is not None:
            body["replication"] = {
                "follower_attached": self.shipper.link is not None,
                "ship_rounds": self.shipper.ship_rounds,
                "shipped_records": self.shipper.shipped_records,
                "shipped_bytes": self.shipper.shipped_bytes,
                "round_acks": self.shipper.round_acks,
                "degraded": self.shipper.degraded,
                "tips": dict(self.shipper.tips),
                "follower_acked": dict(self.shipper.follower_acked),
            }
        if self.role == "follower" and self.follower is not None:
            body["replication"] = self.follower.lag()
            body["tenants"] = {
                name: self.follower.tenants[name].stats()
                for name in self.follower.names()
            }
        return body


async def serve(
    data_dir: str,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs,
) -> RuleServer:
    """Build, start and run a server until shutdown; returns it."""
    server = RuleServer(data_dir, host, port, **kwargs)
    await server.start()
    try:
        await server.serve_forever()
    finally:
        await server.shutdown()
    return server
