"""The asyncio front end: many tenants, one engine, one fsync barrier.

Concurrency model — deliberately simple and deterministic:

* one reader coroutine per connection parses requests and routes them;
  mutations pass admission control and join their tenant's queue with a
  future for the eventual ack;
* one *engine task* owns every production system.  Each round it drains
  the tenants with queued work **in sorted tenant order** (apply ops,
  commit the ops boundary, run cycles to quiescence), then flushes the
  shared :class:`~repro.recovery.wal.GroupCommit` — one fsync barrier
  covering every tenant's boundaries — and only then resolves the acks.
  An acknowledged op is therefore durable by construction: ``kill -9``
  after the ack replays it from the tenant's log.
* checkpoints are cut after the flush (never inside a round), so a
  checkpoint can never name a boundary that isn't durable yet.

On start the server scans its data directory and recovers **every**
tenant log it finds — including logs whose active file is missing
(the torn-rotation window) — before the listening socket opens, so
``repro serve`` *is* ``repro resume`` for the whole fleet.
"""

from __future__ import annotations

import asyncio
import os
import re
import time

from repro.obs import Observability
from repro.recovery.wal import GroupCommit
from repro.serve.backpressure import (
    ACCEPT,
    DEFER,
    AdmissionController,
    AdmissionPolicy,
)
from repro.serve.protocol import (
    MUTATION_OPS,
    ProtocolError,
    Request,
    encode_reply,
    parse_request,
)
from repro.serve.registry import SessionRegistry
from repro.serve.session import DEFAULT_ROTATE_BYTES, TenantSession

#: Anything that is (or once was) a tenant WAL: ``<tenant>.wal``, an
#: archived segment, or the meta sidecar left by rotation.
_TENANT_FILE_RE = re.compile(r"^([A-Za-z0-9_-]+)\.wal(?:$|\.)")


def scan_tenants(data_dir: str) -> list[str]:
    """Tenant names with durable state under *data_dir*, sorted."""
    names = set()
    for entry in os.listdir(data_dir):
        match = _TENANT_FILE_RE.match(entry)
        if match is not None:
            names.add(match.group(1))
    return sorted(names)


class RuleServer:
    """One engine process hosting many tenant sessions over TCP."""

    def __init__(
        self,
        data_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        obs: Observability | None = None,
        admission: AdmissionController | None = None,
        checkpoint_rounds: int = 8,
        wal_rotate_bytes: int = DEFAULT_ROTATE_BYTES,
    ) -> None:
        self.data_dir = data_dir
        self.host = host
        self.port = port
        self.obs = obs or Observability()
        self.group = GroupCommit(self.obs)
        self.registry = SessionRegistry()
        self.admission = admission or AdmissionController(
            AdmissionPolicy(), obs=self.obs
        )
        self.checkpoint_rounds = checkpoint_rounds
        self.wal_rotate_bytes = wal_rotate_bytes
        self.recovered_tenants: list[str] = []
        self.rounds = 0
        self._server: asyncio.AbstractServer | None = None
        self._engine_task: asyncio.Task | None = None
        self._work = asyncio.Event()
        self._drained = asyncio.Event()
        self._stopping = asyncio.Event()
        self._closed = False

    # -- recovery on start ------------------------------------------------------

    def recover_all(self) -> list[str]:
        """Recover every tenant log under the data dir; returns names.

        Each recovered session immediately finishes any interrupted
        recognize-act work (determinism makes the re-execution identical
        to the run that died), and the resulting boundaries are flushed
        before the server accepts traffic.
        """
        os.makedirs(self.data_dir, exist_ok=True)
        started = time.perf_counter()
        recovered = []
        for name in scan_tenants(self.data_dir):
            session = TenantSession.recover_from_disk(
                name,
                self.data_dir,
                self.registry,
                group=self.group,
                obs=self.obs,
                wal_rotate_bytes=self.wal_rotate_bytes,
                checkpoint_rounds=self.checkpoint_rounds,
            )
            self.registry.add(session)
            session.run_to_quiescence()
            recovered.append(name)
        self.group.flush()
        self.recovered_tenants = recovered
        if self.obs.enabled and recovered:
            metrics = self.obs.metrics
            metrics.counter("serve.tenants_recovered").inc(len(recovered))
            metrics.log2_histogram("serve.recovery_us").observe(
                (time.perf_counter() - started) * 1e6
            )
        return recovered

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> None:
        """Recover, bind, announce, and start the engine task."""
        self.recover_all()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._engine_task = asyncio.ensure_future(self._engine_loop())
        print(f"serving on {self.host}:{self.port}", flush=True)

    async def serve_forever(self) -> None:
        await self._stopping.wait()

    async def shutdown(self) -> None:
        """Graceful stop: drain queues, flush, checkpoint, close logs."""
        if self._closed:
            return
        self._closed = True
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._engine_task is not None:
            self._work.set()  # wake it so it can observe _stopping
            await self._engine_task
        self._drain_round()  # anything admitted after the last round
        for name in self.registry.names():
            session = self.registry.get(name)
            session.maybe_checkpoint(force=True)
            session.close()

    # -- the engine task --------------------------------------------------------

    async def _engine_loop(self) -> None:
        while not self._stopping.is_set():
            await self._work.wait()
            self._work.clear()
            if self._stopping.is_set():
                break
            self._drain_round()
            # Release readers deferred by admission control, then hand
            # them a fresh event for the next round.
            self._drained.set()
            self._drained = asyncio.Event()
            await asyncio.sleep(0)

    def _drain_round(self) -> None:
        """One group-commit round over every tenant with queued work."""
        busy = [
            self.registry.get(name)
            for name in self.registry.names()
            if self.registry.get(name).depth
        ]
        if not busy:
            return
        per_session = [(session, session.drain()) for session in busy]
        self.group.flush()
        self.rounds += 1
        now = time.perf_counter()
        observing = self.obs.enabled
        for session, acks in per_session:
            for future, body, enqueued_at in acks:
                body["durable"] = True
                if future is not None and not future.done():
                    future.set_result(body)
                if observing:
                    micros = (now - enqueued_at) * 1e6
                    metrics = self.obs.metrics
                    metrics.log2_histogram("serve.latency_us").observe(
                        micros
                    )
                    metrics.log2_histogram(
                        f"serve.latency_us[{session.name}]"
                    ).observe(micros)
            session.maybe_checkpoint()

    # -- request handling -------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._stopping.is_set():
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = parse_request(line)
                except ProtocolError as exc:
                    writer.write(encode_reply(exc.reply))
                    await writer.drain()
                    continue
                reply = await self._dispatch(request)
                writer.write(encode_reply(reply))
                await writer.drain()
                if request.op == "shutdown":
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # The listener was closed with this reader in flight (server
            # shutdown); finish quietly rather than exploding the task.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: Request) -> dict:
        if self.obs.enabled:
            self.obs.metrics.counter("serve.requests").inc()
        op = request.op
        if op == "ping":
            return {"ok": True, "op": "ping", "pong": True}
        if op == "status":
            return self._status()
        if op == "shutdown":
            asyncio.get_running_loop().call_soon(self._stopping.set)
            self._work.set()
            return {"ok": True, "op": "shutdown"}
        if op == "attach":
            return self._attach(request)
        session = self.registry.get(request.tenant)
        if session is None:
            return {
                "ok": False, "op": op, "seq": request.seq,
                "error": f"unknown tenant {request.tenant!r}; attach first",
            }
        if op == "stats":
            return {"ok": True, "op": "stats", **session.stats()}
        if op == "query":
            try:
                rows = session.query(request.relation)
            except Exception as exc:
                return {"ok": False, "op": op, "error": str(exc)}
            return {
                "ok": True, "op": "query", "tenant": session.name,
                "relation": request.relation, "rows": rows,
            }
        # -- mutations --
        if request.seq <= session.applied_seq:
            if self.obs.enabled:
                self.obs.metrics.counter("serve.dup_acks").inc()
            return {
                "ok": True, "op": op, "seq": request.seq,
                "tenant": session.name, "dup": True, "durable": True,
            }
        decision = self.admission.admit(session.depth)
        if decision == DEFER:
            await self._drained.wait()
        elif decision != ACCEPT:  # SHED
            return {
                "ok": False, "op": op, "seq": request.seq,
                "tenant": session.name, "shed": True,
                "error": "queue full; retry with the same seq",
            }
        future = asyncio.get_running_loop().create_future()
        session.enqueue(request, future)
        self._work.set()
        return await future

    def _attach(self, request: Request) -> dict:
        session = self.registry.get(request.tenant)
        if session is not None:
            if (
                request.program is not None
                and request.program != session.pack.text
            ):
                return {
                    "ok": False, "op": "attach", "tenant": request.tenant,
                    "error": "tenant already attached with a different "
                             "program",
                }
            return {
                "ok": True, "op": "attach", "tenant": request.tenant,
                "recovered": session.recovered, "existing": True,
                "applied_seq": session.applied_seq,
                "pack_crc": session.pack.crc,
            }
        if request.program is None:
            return {
                "ok": False, "op": "attach", "tenant": request.tenant,
                "error": "new tenant needs a program",
            }
        try:
            pack = self.registry.pack_for(request.program)
            session = TenantSession.start(
                request.tenant,
                pack,
                self.data_dir,
                group=self.group,
                obs=self.obs,
                config=request.config,
                wal_rotate_bytes=self.wal_rotate_bytes,
                checkpoint_rounds=self.checkpoint_rounds,
            )
        except Exception as exc:
            return {
                "ok": False, "op": "attach", "tenant": request.tenant,
                "error": str(exc),
            }
        self.registry.add(session)
        # The setup boundary enlisted with the group; make it durable
        # before acknowledging the tenant exists.
        self.group.flush()
        if self.obs.enabled:
            self.obs.metrics.counter("serve.attaches").inc()
            self.obs.metrics.gauge("serve.tenants").set(
                len(self.registry.sessions)
            )
        return {
            "ok": True, "op": "attach", "tenant": request.tenant,
            "recovered": False, "existing": False, "applied_seq": 0,
            "pack_crc": pack.crc,
        }

    def _status(self) -> dict:
        return {
            "ok": True,
            "op": "status",
            "tenants": {
                name: self.registry.get(name).stats()
                for name in self.registry.names()
            },
            "packs": [
                {"crc": pack.crc, "tenants": sorted(pack.tenants)}
                for pack in self.registry.packs
            ],
            "recovered_tenants": self.recovered_tenants,
            "rounds": self.rounds,
            "group_commits": self.group.flushes,
            "admission": {
                "accepted": self.admission.accepted,
                "deferred": self.admission.deferred,
                "shed": self.admission.shed,
            },
        }


async def serve(
    data_dir: str,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs,
) -> RuleServer:
    """Build, start and run a server until shutdown; returns it."""
    server = RuleServer(data_dir, host, port, **kwargs)
    await server.start()
    try:
        await server.serve_forever()
    finally:
        await server.shutdown()
    return server
