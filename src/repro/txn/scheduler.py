"""Concurrent execution of the conflict set (§5.2).

The scheduler realizes the paper's model: "Given an initial set Ψ1 of
transactions, each of which corresponds to an already satisfied production
in the conflict set", it interleaves their execution under 2PL and compares
with OPS5's serial strategy.

Time is *virtual*: in each tick every unfinished transaction attempts one
step (a lock acquisition, or the terminal validate/act/commit step), so the
tick count is the makespan of a synchronous parallel execution, while the
summed step count is the serial cost.  This makes §5.2's measures directly
observable:

* ``makespan_ticks`` — "the number of operations that must execute in a
  non-interleaved fashion";
* ``critical_path_bound`` — "proportional to the maximum number of updates
  to any WM relation"; and
* the history's count of equivalent serial orders (via
  :mod:`repro.txn.serializability`).

Deadlocks (mutual Δdel, §5.2) are detected on the waits-for graph and
resolved by aborting the youngest participant, which retries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.interpreter import ProductionSystem
from repro.obs.metrics import SIZE_BUCKETS
from repro.txn.locks import LockManager
from repro.txn.serializability import History
from repro.txn.transactions import (
    COMMITTED,
    SKIPPED,
    RuleTransaction,
    plan_locks,
)


@dataclass
class RoundStats:
    """Outcome of executing one conflict-set snapshot Ψi."""

    transactions: int = 0
    committed: int = 0
    skipped: int = 0
    deadlock_aborts: int = 0
    makespan_ticks: int = 0
    serial_steps: int = 0
    updates_by_relation: dict[str, int] = field(default_factory=dict)
    #: Instantiation keys in the order their transactions committed —
    #: the fired sequence the differential-fuzz oracle compares across
    #: worker counts.
    committed_seq: list = field(default_factory=list)

    @property
    def critical_path_bound(self) -> int:
        """§5.2's best case: max updates against any single relation."""
        if not self.updates_by_relation:
            return 0
        return max(self.updates_by_relation.values())

    @property
    def total_updates(self) -> int:
        return sum(self.updates_by_relation.values())

    @property
    def speedup(self) -> float:
        """Serial work over parallel makespan (>= 1 when concurrency paid)."""
        if self.makespan_ticks == 0:
            return 1.0
        return self.serial_steps / self.makespan_ticks


@dataclass
class ConcurrentRunResult:
    """Aggregate of a multi-round concurrent run."""

    rounds: list[RoundStats] = field(default_factory=list)
    history: History = field(default_factory=History)

    @property
    def committed(self) -> int:
        return sum(r.committed for r in self.rounds)

    @property
    def makespan_ticks(self) -> int:
        return sum(r.makespan_ticks for r in self.rounds)

    @property
    def serial_steps(self) -> int:
        return sum(r.serial_steps for r in self.rounds)


#: Deadlock-handling policies: detection with victim abort (the default),
#: or the classic timestamp-ordering preventions.  Transaction ids double
#: as timestamps (smaller = older).
POLICIES = ("detect", "wound-wait", "wait-die")


class ConcurrentScheduler:
    """Executes conflict-set snapshots as interleaved 2PL transactions.

    ``policy`` selects deadlock handling:

    * ``"detect"`` — let waits-for cycles form, abort the youngest member
      (§5.2's "this could lead to a deadlock" case, resolved after the
      fact);
    * ``"wound-wait"`` — an older blocked transaction *wounds* (aborts)
      younger lock holders; younger ones wait.  Deadlock-free.
    * ``"wait-die"`` — an older blocked transaction waits; a younger one
      *dies* (aborts itself) when blocked by an older holder.
      Deadlock-free.
    """

    def __init__(
        self,
        system: ProductionSystem,
        retries: int = 3,
        policy: str = "detect",
        batched_act: bool = True,
        pool=None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown deadlock policy {policy!r}; choose from {POLICIES}"
            )
        self.system = system
        self.retries = retries
        self.policy = policy
        #: §5 batched act mode: each transaction's maintenance is one
        #: delta batch per commit point (see RuleTransaction.batched_act).
        self.batched_act = batched_act
        #: Worker pool for the round's pure phases (lock planning; the
        #: match maintenance inside each commit step also fans out when
        #: the owning system runs with ``workers > 1``).  Defaults to the
        #: system's own pool.  Act execution itself stays a single-writer
        #: loop — WM mutation is serial by design (docs/PARALLELISM.md).
        self.pool = pool if pool is not None else getattr(system, "pool", None)
        self.history = History()
        self._next_txn_id = 0

    def _hit(self, site: str) -> None:
        """Cross a named crash site mid-round (``repro check --crash``).

        The :class:`~repro.recovery.crashpoints.Crashpoints` registry
        rides on the attached WAL writer, so an un-instrumented run pays
        one attribute lookup per crossing and a WAL-less run none of the
        sites at all — matching the durability path they fault.
        """
        wal = self.system.wm.wal
        crashpoints = getattr(wal, "crashpoints", None)
        if crashpoints is not None:
            crashpoints.hit(site)

    def _build_transactions(self) -> list[RuleTransaction]:
        eligible = sorted(self.system.eligible(), key=lambda i: i.key)
        analyses = self.system.analyses
        pool = self.pool
        if (
            pool is not None
            and pool.active
            and len(eligible) >= pool.min_fanout_items
        ):
            # Lock planning is a pure function of (analysis,
            # instantiation): fan it out and merge the plans back in the
            # sorted-instantiation order, so txn ids, lock order and
            # everything downstream match the serial build exactly.
            plans = pool.map_tasks(
                [
                    (lambda inst=inst: plan_locks(
                        analyses[inst.rule_name], inst
                    ))
                    for inst in eligible
                ],
                label="plan_locks",
            )
        else:
            plans = [
                plan_locks(analyses[inst.rule_name], inst)
                for inst in eligible
            ]
        transactions = []
        for instantiation, requests in zip(eligible, plans):
            self._next_txn_id += 1
            transactions.append(
                RuleTransaction.build(
                    self._next_txn_id,
                    instantiation,
                    analyses[instantiation.rule_name],
                    retries=self.retries,
                    batched_act=self.batched_act,
                    requests=requests,
                )
            )
        return transactions

    def run_round(self) -> RoundStats:
        """Execute one snapshot Ψ of the conflict set to completion."""
        transactions = self._build_transactions()
        stats = RoundStats(transactions=len(transactions))
        if not transactions:
            return stats
        # Between lock planning and execution: the plans exist only in
        # memory, so a crash here loses the whole round.
        self._hit("txn.post_plan")
        obs = self.system.obs
        commit_mark = len(self.history.commit_order)
        with obs.span(
            "txn.round", policy=self.policy, transactions=len(transactions)
        ) as round_span:
            self._drain(transactions, stats)
            by_id = {t.txn_id: t for t in transactions}
            stats.committed_seq = [
                by_id[txn_id].instantiation.key
                for txn_id in self.history.commit_order[commit_mark:]
                if txn_id in by_id
            ]
            # Group-commit barrier (§5 + PR 5's WAL): the round's commit
            # points stream into the WAL as the transactions execute;
            # one sync per round makes the whole snapshot durable at a
            # single barrier instead of per-firing.
            wal = self.system.wm.wal
            if wal is not None:
                # Between the last per-txn commit and the barrier: batch
                # records buffered since the previous sync die with the
                # process, rolling the whole round back to its boundary.
                self._hit("txn.pre_group_sync")
                wal.sync()
                round_span.set("group_commit_seq", wal.last_seq)
                if obs.enabled:
                    obs.metrics.counter("txn.group_commits").inc()
            round_span.set("committed", stats.committed)
            round_span.set("makespan_ticks", stats.makespan_ticks)
        if obs.enabled:
            metrics = obs.metrics
            metrics.counter("txn.rounds").inc()
            metrics.counter("txn.commits").inc(stats.committed)
            metrics.counter("txn.deadlock_aborts").inc(stats.deadlock_aborts)
            metrics.histogram(
                "txn.makespan_ticks", buckets=SIZE_BUCKETS
            ).observe(stats.makespan_ticks)
            wait_hist = metrics.histogram(
                "txn.lock_wait_ticks", buckets=SIZE_BUCKETS
            )
            for transaction in transactions:
                wait_hist.observe(transaction.blocked_ticks)
        return stats

    def _drain(
        self, transactions: list[RuleTransaction], stats: RoundStats
    ) -> None:
        """Tick the transactions of one snapshot until all finish."""
        locks = LockManager()
        while any(not t.finished for t in transactions):
            progressed = False
            for transaction in transactions:
                if transaction.finished:
                    continue
                was_committed = transaction.state == COMMITTED
                if transaction.step(self.system, locks, self.history):
                    progressed = True
                if transaction.state == COMMITTED and not was_committed:
                    # Between this transaction's commit and the round's
                    # group sync (a killed-mid-round window).
                    self._hit("txn.post_commit")
            stats.makespan_ticks += 1
            if self.policy == "detect":
                cycle = locks.deadlocked()
                if cycle is not None:
                    victim_id = max(cycle)
                    victim = next(
                        t for t in transactions if t.txn_id == victim_id
                    )
                    victim.abort(locks)
                    stats.deadlock_aborts += 1
                    self.system.counters.aborts += 1
                    progressed = True
            else:
                aborted = self._apply_prevention(transactions, locks)
                if aborted:
                    stats.deadlock_aborts += aborted
                    self.system.counters.aborts += aborted
                    progressed = True
            if not progressed:
                # Blocked with no cycle cannot happen under this lock
                # manager; guard against infinite loops regardless.
                stalled = [t for t in transactions if not t.finished]
                stalled[0].abort(locks)
                stats.deadlock_aborts += 1
        for transaction in transactions:
            stats.serial_steps += transaction.steps_taken
            if transaction.state == COMMITTED:
                stats.committed += 1
                assert transaction.outcome is not None
                for row in transaction.outcome.inserted:
                    stats.updates_by_relation[row.relation] = (
                        stats.updates_by_relation.get(row.relation, 0) + 1
                    )
                for row in transaction.outcome.removed:
                    stats.updates_by_relation[row.relation] = (
                        stats.updates_by_relation.get(row.relation, 0) + 1
                    )
            elif transaction.state == SKIPPED:
                stats.skipped += 1

    def _apply_prevention(
        self, transactions: list[RuleTransaction], locks: LockManager
    ) -> int:
        """Wound-wait / wait-die over the current waits-for edges."""
        by_id = {t.txn_id: t for t in transactions}
        aborted = 0
        for waiter_id, blockers in list(locks.waits_for.items()):
            waiter = by_id.get(waiter_id)
            if waiter is None or waiter.finished:
                continue
            if self.policy == "wound-wait":
                # The older waiter wounds every younger holder in its way.
                for blocker_id in sorted(blockers):
                    blocker = by_id.get(blocker_id)
                    if (
                        blocker is not None
                        and not blocker.finished
                        and blocker_id > waiter_id
                    ):
                        blocker.abort(locks, consume_retry=False)
                        aborted += 1
            else:  # wait-die
                # A younger waiter blocked by an older holder dies.
                if any(blocker_id < waiter_id for blocker_id in blockers):
                    waiter.abort(locks, consume_retry=False)
                    aborted += 1
        return aborted

    def run(self, max_rounds: int = 100) -> ConcurrentRunResult:
        """Drain the conflict set: Ψ1, then Ψ2 = Δadds, ... until empty."""
        result = ConcurrentRunResult(history=self.history)
        for _ in range(max_rounds):
            stats = self.run_round()
            if stats.transactions == 0:
                break
            result.rounds.append(stats)
        return result
