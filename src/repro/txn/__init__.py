"""Transactional concurrent execution of conflict sets (§5 of the paper)."""

from repro.txn.locks import (
    LockManager,
    LockRequest,
    relation_target,
    tuple_target,
)
from repro.txn.scheduler import (
    POLICIES,
    ConcurrentRunResult,
    ConcurrentScheduler,
    RoundStats,
)
from repro.txn.serializability import (
    History,
    Operation,
    conflict_graph,
    count_equivalent_serial_orders,
    equivalent_serial_order,
    is_serializable,
)
from repro.txn.transactions import (
    ABORTED,
    BLOCKED,
    COMMITTED,
    READY,
    SKIPPED,
    RuleTransaction,
    plan_locks,
)

__all__ = [
    "ABORTED",
    "BLOCKED",
    "COMMITTED",
    "ConcurrentRunResult",
    "ConcurrentScheduler",
    "History",
    "LockManager",
    "LockRequest",
    "Operation",
    "POLICIES",
    "READY",
    "RoundStats",
    "RuleTransaction",
    "SKIPPED",
    "conflict_graph",
    "count_equivalent_serial_orders",
    "equivalent_serial_order",
    "is_serializable",
    "plan_locks",
    "relation_target",
    "tuple_target",
]
