"""Rule firings as transactions (§5.1–5.2).

"Each production in the conflict set ... can be treated as a transaction
that is to be executed."  A :class:`RuleTransaction` plans its locks from
the instantiation and the rule's RHS:

* tuple S locks on every matched WM element (the retrieved tuples);
* relation S locks for every negated condition's class (negative
  dependency — blocks phantom inserts, §5.2);
* tuple X locks (upgrades) on elements the RHS removes or modifies;
* relation IX locks on classes the RHS inserts into.

The transaction acquires locks one per step (strict 2PL growing phase),
then executes validate + act + maintenance + commit as one atomic step.
The commit point deliberately follows the maintenance process: "a
production should not commit its RHS actions ... and release its locks ...
until the triggered maintenance process updates the affected COND
relations as well" — in this implementation the match strategies *are* the
maintenance process and run synchronously inside the WM mutation, so by
construction no lock is released before maintenance completes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.engine.actions import ActionOutcome
from repro.engine.conflict import Instantiation
from repro.engine.interpreter import ProductionSystem
from repro.lang.analysis import RuleAnalysis
from repro.lang.ast import MakeAction, ModifyAction, RemoveAction
from repro.txn.locks import (
    LockManager,
    LockRequest,
    relation_target,
    tuple_target,
)
from repro.txn.serializability import History

#: Transaction states.
READY = "ready"
BLOCKED = "blocked"
COMMITTED = "committed"
SKIPPED = "skipped"  # matching pattern deleted before execution (Δdel)
ABORTED = "aborted"  # deadlock victim awaiting retry


def plan_locks(
    analysis: RuleAnalysis, instantiation: Instantiation
) -> list[LockRequest]:
    """Derive the ordered lock requests for one instantiation."""
    requests: list[LockRequest] = []
    seen: set[tuple] = set()

    def add(target: tuple, mode: str) -> None:
        key = (target, mode)
        if key not in seen:
            seen.add(key)
            requests.append(LockRequest(target, mode))

    for wme in instantiation.wmes:
        if wme is not None:
            add(tuple_target(wme.relation, wme.tid), "S")
    for condition in analysis.negated_conditions():
        add(relation_target(condition.class_name), "S")
    for action in analysis.rule.actions:
        if isinstance(action, (RemoveAction, ModifyAction)):
            wme = instantiation.wmes[action.ce_index - 1]
            if wme is not None:
                add(tuple_target(wme.relation, wme.tid), "X")
        if isinstance(action, ModifyAction):
            wme = instantiation.wmes[action.ce_index - 1]
            if wme is not None:
                add(relation_target(wme.relation), "IX")
        if isinstance(action, MakeAction):
            add(relation_target(action.class_name), "IX")
    return requests


@dataclass
class RuleTransaction:
    """One conflict-set entry executing under 2PL.

    ``batched_act`` (the default) is §5's batched act mode: the firing's
    RHS effects are grouped into one :class:`~repro.delta.DeltaBatch` per
    commit point, so the maintenance process consumes them set-at-a-time
    — once, just before the locks are released.  ``batched_act=False``
    propagates each WM change tuple-at-a-time as the RHS executes (the
    pre-batching behaviour, kept for comparison runs).
    """

    txn_id: int
    instantiation: Instantiation
    analysis: RuleAnalysis
    requests: list[LockRequest] = field(default_factory=list)
    pc: int = 0
    state: str = READY
    steps_taken: int = 0
    blocked_ticks: int = 0
    retries_left: int = 3
    outcome: ActionOutcome | None = None
    batched_act: bool = True
    #: WM deltas this transaction's commit point delivered (batched mode).
    commit_deltas: int = 0

    @classmethod
    def build(
        cls,
        txn_id: int,
        instantiation: Instantiation,
        analysis: RuleAnalysis,
        retries: int = 3,
        batched_act: bool = True,
        requests: list[LockRequest] | None = None,
    ) -> "RuleTransaction":
        """Construct with planned locks.

        *requests* accepts a precomputed :func:`plan_locks` result — the
        planning is a pure function of (analysis, instantiation), so the
        concurrent scheduler fans it out across its worker pool and
        passes the merged plans in.
        """
        return cls(
            txn_id=txn_id,
            instantiation=instantiation,
            analysis=analysis,
            requests=(
                plan_locks(analysis, instantiation)
                if requests is None
                else requests
            ),
            retries_left=retries,
            batched_act=batched_act,
        )

    @property
    def finished(self) -> bool:
        return self.state in (COMMITTED, SKIPPED)

    def step(
        self,
        system: ProductionSystem,
        locks: LockManager,
        history: History,
    ) -> bool:
        """Advance one step: one lock acquisition, or the terminal
        validate + act + maintain + commit step.  Returns True on progress.
        """
        if self.finished:
            return False
        if self.pc < len(self.requests):
            request = self.requests[self.pc]
            if locks.try_acquire(self.txn_id, request.target, request.mode):
                self.pc += 1
                self.state = READY
                self.steps_taken += 1
                return True
            self.state = BLOCKED
            self.blocked_ticks += 1
            system.counters.lock_waits += 1
            obs = system.obs
            if obs.enabled:
                obs.metrics.counter("txn.lock_waits").inc()
                obs.event(
                    "lock_wait",
                    txn=self.txn_id,
                    rule=self.instantiation.rule_name,
                    target=list(request.target),
                    mode=request.mode,
                )
            return False
        obs = system.obs
        if obs.enabled:
            started = time.perf_counter()
            if obs.tracer.enabled:
                with obs.span(
                    "txn.commit",
                    txn=self.txn_id,
                    rule=self.instantiation.rule_name,
                ) as span:
                    self._execute(system, locks, history)
                    span.set("state", self.state)
                    span.set("deltas", self.commit_deltas)
            else:
                self._execute(system, locks, history)
            obs.metrics.log2_histogram("txn.commit_us").observe(
                (time.perf_counter() - started) * 1e6
            )
        else:
            self._execute(system, locks, history)
        self.steps_taken += 1
        return True

    def _execute(
        self,
        system: ProductionSystem,
        locks: LockManager,
        history: History,
    ) -> None:
        # Δdel check (§5.2): the conflict set is maintained synchronously,
        # so membership doubles as the NOT-EXISTS revalidation for negative
        # dependencies.
        if self.instantiation not in system.conflict_set:
            self.state = SKIPPED
            locks.release_all(self.txn_id)
            return
        for request in self.requests:
            kind = "w" if request.mode in ("X", "IX") else "r"
            history.record(self.txn_id, kind, request.target)
        system.mark_fired(self.instantiation)
        if self.batched_act:
            # One firing's WM changes are one delta batch per commit
            # point: the maintenance process consumes the RHS effects
            # set-at-a-time, and it still completes before the commit
            # point below, preserving the paper's "no lock released
            # before maintenance" discipline.
            before = system.wm.pending_deltas()
            with system.wm.batch():
                self.outcome = system.executor.execute(
                    self.analysis, self.instantiation
                )
                self.commit_deltas = system.wm.pending_deltas() - before
        else:
            self.outcome = system.executor.execute(
                self.analysis, self.instantiation
            )
        system.output.extend(self.outcome.written)
        for row in self.outcome.inserted:
            history.record(self.txn_id, "w", tuple_target(row.relation, row.tid))
            history.record(self.txn_id, "w", relation_target(row.relation))
        for row in self.outcome.removed:
            history.record(self.txn_id, "w", tuple_target(row.relation, row.tid))
            history.record(self.txn_id, "w", relation_target(row.relation))
        # Commit point: maintenance already ran inside the WM mutations.
        history.committed(self.txn_id)
        locks.release_all(self.txn_id)
        self.state = COMMITTED
        obs = system.obs
        if obs.enabled and self.batched_act:
            obs.metrics.counter("txn.commit_deltas").inc(self.commit_deltas)

    def abort(self, locks: LockManager, consume_retry: bool = True) -> None:
        """Abort: release locks, rewind for retry.

        Deadlock-*detection* victims consume a retry (a repeatedly-chosen
        victim eventually gives up); wound-wait/wait-die restarts keep
        their retries — the timestamp order guarantees progress, so the
        restart always eventually succeeds.
        """
        locks.release_all(self.txn_id)
        self.pc = 0
        if consume_retry:
            self.retries_left -= 1
        self.state = ABORTED if self.retries_left > 0 else SKIPPED
