"""Histories, conflict graphs, and schedule counting (§5.2 / [RASC87]).

A concurrent execution produces a *history* of read/write operations on
lock targets.  Two operations conflict when they touch the same target,
come from different transactions, and at least one writes.  The execution
is (conflict-)serializable iff the conflict graph is acyclic, and every
topological order of that graph is an equivalent serial schedule — the
count of those orders is the paper's second proposed benefit measure
("the number of serializable schedules equivalent to a single serial
schedule", §5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.txn.locks import Target


@dataclass(frozen=True)
class Operation:
    """One read or write in a history."""

    txn_id: int
    kind: str  # "r" or "w"
    target: Target

    def conflicts_with(self, other: "Operation") -> bool:
        return (
            self.txn_id != other.txn_id
            and self.target == other.target
            and ("w" in (self.kind, other.kind))
        )


@dataclass
class History:
    """An ordered list of operations plus commit bookkeeping."""

    operations: list[Operation] = field(default_factory=list)
    commit_order: list[int] = field(default_factory=list)

    def record(self, txn_id: int, kind: str, target: Target) -> None:
        self.operations.append(Operation(txn_id, kind, target))

    def committed(self, txn_id: int) -> None:
        self.commit_order.append(txn_id)

    def transactions(self) -> list[int]:
        seen: list[int] = []
        for operation in self.operations:
            if operation.txn_id not in seen:
                seen.append(operation.txn_id)
        return seen


def conflict_graph(history: History) -> nx.DiGraph:
    """Build the conflict graph: edge Ti -> Tj when an op of Ti precedes a
    conflicting op of Tj."""
    graph = nx.DiGraph()
    graph.add_nodes_from(history.transactions())
    ops = history.operations
    for i, earlier in enumerate(ops):
        for later in ops[i + 1:]:
            if earlier.conflicts_with(later):
                graph.add_edge(earlier.txn_id, later.txn_id)
    return graph


def is_serializable(history: History) -> bool:
    """Conflict-serializability test: acyclic conflict graph."""
    return nx.is_directed_acyclic_graph(conflict_graph(history))


def equivalent_serial_order(history: History) -> list[int]:
    """One serial order the history is equivalent to.

    Ties (unordered transactions) are broken by commit order so the result
    is the "natural" serialization witness.
    """
    graph = conflict_graph(history)
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError("history is not serializable")
    position = {t: i for i, t in enumerate(history.commit_order)}
    return list(
        nx.lexicographical_topological_sort(
            graph, key=lambda t: (position.get(t, len(position)), t)
        )
    )


def count_equivalent_serial_orders(history: History, cap: int = 12) -> int:
    """Count topological orders of the conflict graph (§5.2's measure).

    "This measure is proportional to the number of possible choices of
    actions that can be executed at any instant."  Counting is exponential,
    so histories with more than *cap* transactions raise ValueError.
    """
    graph = conflict_graph(history)
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError("history is not serializable")
    nodes = list(graph.nodes)
    if len(nodes) > cap:
        raise ValueError(
            f"too many transactions to count orders ({len(nodes)} > {cap})"
        )
    predecessors = {n: set(graph.predecessors(n)) for n in nodes}
    index = {n: i for i, n in enumerate(nodes)}
    full_mask = (1 << len(nodes)) - 1
    memo: dict[int, int] = {full_mask: 1}

    def count(mask: int) -> int:
        if mask in memo:
            return memo[mask]
        total = 0
        placed = {n for n in nodes if mask & (1 << index[n])}
        for node in nodes:
            bit = 1 << index[node]
            if mask & bit:
                continue
            if predecessors[node] <= placed:
                total += count(mask | bit)
        memo[mask] = total
        return total

    return count(0)
