"""Lock manager for concurrent rule execution (§5.2 of the paper).

Granularities and modes follow the paper's needs exactly:

* tuple-level **S** — "a read lock must be placed on those WM relation
  tuples that are retrieved";
* tuple-level **X** — deletes/updates of tuples "whose existence is tested
  on the LHS";
* relation-level **S** — "a transaction that is negatively dependent on
  R will have to obtain a read lock on the entire R relation" (blocks
  phantom inserts);
* relation-level **IX** — the insert intent: compatible with other inserts,
  conflicting with a relation-level S.

Cross-granularity rules: a relation S lock conflicts with tuple X locks and
IX locks in that relation (and vice versa); tuple locks of different tuples
never conflict.  Lock upgrades (S→X on the same tuple by the same holder)
succeed when no other transaction shares the S lock.

The waits-for graph lives here too; :meth:`LockManager.deadlocked` reports a
cycle ("this could lead to a deadlock of the two transactions", §5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TransactionError

#: Lock target: ("rel", relation) or ("tuple", relation, tid).
Target = tuple

#: Modes: "S" / "X" on tuples; "S" / "IX" on relations.
_SAME_TARGET_CONFLICTS = {
    ("S", "S"): False,
    ("S", "X"): True,
    ("X", "S"): True,
    ("X", "X"): True,
    ("S", "IX"): True,
    ("IX", "S"): True,
    ("IX", "IX"): False,
    ("IX", "X"): True,
    ("X", "IX"): True,
}


def tuple_target(relation: str, tid: int) -> Target:
    """Lock target for one stored tuple."""
    return ("tuple", relation, tid)


def relation_target(relation: str) -> Target:
    """Lock target for a whole relation."""
    return ("rel", relation)


@dataclass(frozen=True)
class LockRequest:
    """A lock a transaction plans to take."""

    target: Target
    mode: str


class LockManager:
    """Grant/queue/release locks; maintain the waits-for graph."""

    def __init__(self) -> None:
        # target -> {txn_id: mode}
        self._holders: dict[Target, dict[int, str]] = {}
        # relation -> {txn_id} holding tuple-X locks inside it
        self._tuple_x: dict[str, set[int]] = {}
        # relation -> {txn_id} holding relation-S locks
        self._rel_s: dict[str, set[int]] = {}
        # relation -> {txn_id} holding relation-IX locks
        self._rel_ix: dict[str, set[int]] = {}
        # txn -> targets held (for release_all)
        self._held: dict[int, set[Target]] = {}
        # waits-for edges: blocked txn -> {holders it waits on}
        self.waits_for: dict[int, set[int]] = {}

    # -- queries ---------------------------------------------------------------

    def holders(self, target: Target) -> dict[int, str]:
        """Current holders of *target* as ``{txn: mode}``."""
        return dict(self._holders.get(target, {}))

    def held_by(self, txn_id: int) -> set[Target]:
        """All targets *txn_id* currently holds."""
        return set(self._held.get(txn_id, set()))

    def mode_of(self, txn_id: int, target: Target) -> str | None:
        """The mode *txn_id* holds on *target*, or None."""
        return self._holders.get(target, {}).get(txn_id)

    def _conflicting_holders(
        self, txn_id: int, target: Target, mode: str
    ) -> set[int]:
        blockers: set[int] = set()
        for holder, held_mode in self._holders.get(target, {}).items():
            if holder == txn_id:
                continue
            if _SAME_TARGET_CONFLICTS[(held_mode, mode)]:
                blockers.add(holder)
        kind = target[0]
        relation = target[1]
        if kind == "tuple" and mode == "X":
            blockers |= self._rel_s.get(relation, set()) - {txn_id}
        if kind == "rel" and mode == "S":
            blockers |= self._tuple_x.get(relation, set()) - {txn_id}
            blockers |= self._rel_ix.get(relation, set()) - {txn_id}
        if kind == "rel" and mode == "IX":
            blockers |= self._rel_s.get(relation, set()) - {txn_id}
        return blockers

    # -- acquisition ---------------------------------------------------------------

    def try_acquire(self, txn_id: int, target: Target, mode: str) -> bool:
        """Attempt to take *target* in *mode*.

        Returns True and records the lock when granted; otherwise records
        the waits-for edges and returns False.  Re-acquiring an
        already-held equal-or-stronger lock is a no-op; an S→X upgrade is
        attempted in place.
        """
        if mode not in ("S", "X", "IX"):
            raise TransactionError(f"unknown lock mode {mode!r}")
        current = self.mode_of(txn_id, target)
        if current == mode or (current == "X" and mode == "S"):
            return True
        blockers = self._conflicting_holders(txn_id, target, mode)
        if blockers:
            self.waits_for.setdefault(txn_id, set()).update(blockers)
            return False
        self._holders.setdefault(target, {})[txn_id] = mode
        self._held.setdefault(txn_id, set()).add(target)
        kind, relation = target[0], target[1]
        if kind == "tuple" and mode == "X":
            self._tuple_x.setdefault(relation, set()).add(txn_id)
        if kind == "rel" and mode == "S":
            self._rel_s.setdefault(relation, set()).add(txn_id)
        if kind == "rel" and mode == "IX":
            self._rel_ix.setdefault(relation, set()).add(txn_id)
        self.waits_for.pop(txn_id, None)
        return True

    def release_all(self, txn_id: int) -> None:
        """Strict 2PL release: drop every lock at commit/abort."""
        for target in self._held.pop(txn_id, set()):
            holders = self._holders.get(target)
            if holders is not None:
                holders.pop(txn_id, None)
                if not holders:
                    del self._holders[target]
        for index in (self._tuple_x, self._rel_s, self._rel_ix):
            for bucket in index.values():
                bucket.discard(txn_id)
        self.waits_for.pop(txn_id, None)
        for waiters in self.waits_for.values():
            waiters.discard(txn_id)

    # -- deadlock detection ------------------------------------------------------------

    def deadlocked(self) -> list[int] | None:
        """Return one waits-for cycle as a list of txn ids, or None."""
        graph = {t: set(w) for t, w in self.waits_for.items()}
        visiting: set[int] = set()
        visited: set[int] = set()
        stack: list[int] = []

        def visit(node: int) -> list[int] | None:
            visiting.add(node)
            stack.append(node)
            for successor in graph.get(node, ()):
                if successor in visiting:
                    return stack[stack.index(successor):]
                if successor not in visited:
                    cycle = visit(successor)
                    if cycle is not None:
                        return cycle
            visiting.discard(node)
            visited.add(node)
            stack.pop()
            return None

        for node in list(graph):
            if node not in visited:
                cycle = visit(node)
                if cycle is not None:
                    return cycle
        return None
