"""The write-ahead log: append-only JSONL with checksums and fsync batching.

One log records one run.  Each line is a JSON object::

    {"seq": 3, "kind": "batch", "body": {...}, "crc": 2468133518}

* ``seq`` — 1-based, strictly consecutive; a gap means a damaged log.
* ``kind`` — ``"meta"`` (first record: program text + run configuration),
  ``"batch"`` (one committed, netted :class:`~repro.delta.DeltaBatch`,
  appended *after* the maintenance process consumed it), or
  ``"boundary"`` (a commit point: end of an engine cycle, an op-script
  position, or end-of-setup — the atomic units of recovery).
* ``crc`` — CRC-32 of the canonical JSON of ``[seq, kind, body]``.

Durability model: appends are buffered in the writer and reach the file
only at :meth:`WalWriter.sync` (explicit, every ``fsync_every`` records,
or at a boundary via :meth:`WalWriter.commit`, which always syncs —
boundary records *are* the commit points of §5, written after the
maintenance process).  A crash loses at most the unsynced suffix;
recovery replays batch records only up to the last durable boundary, so a
cycle is atomic: either its boundary record survived and the cycle is
replayed exactly, or the whole cycle is re-executed from the previous
boundary (determinism makes the re-execution bit-identical).

Reading classifies damage: a torn *tail* (the final record truncated
mid-write) is expected crash debris and the log is readable up to it; a
bad checksum or sequence gap *followed by further valid records* means
the log was damaged in place, and :class:`~repro.errors.WalCorruptError`
refuses it loudly.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass

from repro.delta import Delta, DeltaBatch
from repro.errors import RecoveryError, WalCorruptError
from repro.storage.tuples import StoredTuple

#: Wire form of one delta: [op, relation, tid, timetag, [values...]].
DeltaJson = list

#: Default number of buffered records between automatic fsyncs.
DEFAULT_FSYNC_EVERY = 64


def encode_delta(delta: Delta) -> DeltaJson:
    wme = delta.wme
    return [delta.op, wme.relation, wme.tid, wme.timetag, list(wme.values)]


def decode_delta(data: DeltaJson) -> Delta:
    op, relation, tid, timetag, values = data
    return Delta(
        op,
        StoredTuple(
            relation=relation,
            tid=int(tid),
            timetag=int(timetag),
            values=tuple(values),
        ),
    )


def encode_batch(batch: DeltaBatch) -> dict:
    return {"deltas": [encode_delta(delta) for delta in batch]}


def decode_batch(body: dict) -> DeltaBatch:
    return DeltaBatch(decode_delta(data) for data in body["deltas"])


def encode_key(key) -> list:
    """Wire form of an instantiation identity key:
    ``[rule, [[relation, tid] | null, ...]]``."""
    rule_name, slots = key
    return [
        rule_name,
        [list(slot) if slot is not None else None for slot in slots],
    ]


def decode_key(data) -> tuple:
    rule_name, slots = data
    return (
        rule_name,
        tuple(
            (slot[0], int(slot[1])) if slot is not None else None
            for slot in slots
        ),
    )


def encode_fired(triple) -> list:
    """Wire form of one firing: ``[cycle, rule, key]``."""
    cycle, rule_name, key = triple
    return [cycle, rule_name, encode_key(key)]


def decode_fired(data) -> tuple:
    cycle, rule_name, key = data
    return (int(cycle), rule_name, decode_key(key))


def _crc(seq: int, kind: str, body: dict) -> int:
    canonical = json.dumps(
        [seq, kind, body], sort_keys=True, separators=(",", ":")
    )
    return zlib.crc32(canonical.encode("utf-8"))


@dataclass(frozen=True)
class WalRecord:
    """One parsed log record plus its end offset in the file."""

    seq: int
    kind: str
    body: dict
    end_offset: int


@dataclass
class WalReadResult:
    """Outcome of :func:`read_wal`."""

    records: list[WalRecord]
    #: True when the file ended in a truncated (torn) record — expected
    #: after a crash; the readable prefix is still trustworthy.
    torn: bool
    #: Byte offset just past the last valid record (truncation point for
    #: a writer continuing this log).
    durable_offset: int

    @property
    def next_seq(self) -> int:
        return self.records[-1].seq + 1 if self.records else 1


def read_wal(path: str) -> WalReadResult:
    """Parse *path*, tolerating a torn tail but refusing inner damage.

    A record counts as durable only when its terminating newline made it
    to disk; a parseable final line without one is still treated as torn
    (a writer continuing the log must be able to append cleanly).
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    records: list[WalRecord] = []
    torn = False
    position = 0
    size = len(raw)
    while position < size:
        newline = raw.find(b"\n", position)
        complete = newline != -1
        end = (newline + 1) if complete else size
        line = raw[position:newline] if complete else raw[position:]
        parsed = (
            _parse_line(line, expect_seq=len(records) + 1)
            if complete
            else None
        )
        if parsed is None:
            if any(
                _parse_line(later, expect_seq=None) is not None
                for later in raw[end:].split(b"\n")
            ):
                raise WalCorruptError(
                    f"damaged WAL record at byte {position} of {path} "
                    "with valid records after it"
                )
            torn = True
            break
        records.append(
            WalRecord(parsed[0], parsed[1], parsed[2], end_offset=end)
        )
        position = end
    durable = records[-1].end_offset if records else 0
    return WalReadResult(records=records, torn=torn, durable_offset=durable)


def _parse_line(line: bytes, expect_seq: int | None):
    """``(seq, kind, body)`` when *line* is a valid record, else None."""
    try:
        data = json.loads(line.decode("utf-8"))
        seq = data["seq"]
        kind = data["kind"]
        body = data["body"]
        crc = data["crc"]
    except Exception:
        return None
    if not isinstance(seq, int) or not isinstance(kind, str):
        return None
    if _crc(seq, kind, body) != crc:
        return None
    if expect_seq is not None and seq != expect_seq:
        return None
    return (seq, kind, body)


class WalWriter:
    """Appends records to one log file with batched fsyncs.

    Construct with :meth:`create` for a fresh run or :meth:`continue_log`
    to resume an existing log (the non-durable suffix is physically
    truncated first, so the file never holds records a previous recovery
    decided to discard).

    The optional :class:`~repro.recovery.crashpoints.Crashpoints`
    registry is consulted at every named site; after it fires, the writer
    plays dead — buffered records are dropped and all further operations
    are silent no-ops, modelling the process death the registry simulates.
    """

    def __init__(
        self,
        path: str,
        crashpoints=None,
        obs=None,
        fsync_every: int = DEFAULT_FSYNC_EVERY,
        _mode: str = "w",
        _next_seq: int = 1,
        _start_offset: int = 0,
    ) -> None:
        self.path = path
        self.crashpoints = crashpoints
        self.obs = obs
        self.fsync_every = max(1, fsync_every)
        self._handle = open(path, _mode, encoding="utf-8")
        self._buffer: list[str] = []
        self._next_seq = _next_seq
        self._closed = False
        #: Bytes durably on disk (past the last completed sync).
        self.synced_bytes = _start_offset
        self.records_written = 0
        self.syncs = 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(cls, path: str, **kwargs) -> "WalWriter":
        """Start a fresh log at *path* (truncates any existing file)."""
        return cls(path, **kwargs)

    @classmethod
    def continue_log(
        cls, path: str, durable_offset: int, next_seq: int, **kwargs
    ) -> "WalWriter":
        """Append to an existing log after truncating its dead suffix.

        *durable_offset* / *next_seq* come from :func:`read_wal` (or from
        the recovery pass that decided how much of the log to keep); the
        bytes past the offset are crash debris and are removed so they can
        never shadow the records a resumed run appends.
        """
        size = os.path.getsize(path)
        if durable_offset > size:
            raise RecoveryError(
                f"durable offset {durable_offset} beyond end of {path!r}"
            )
        if durable_offset < size:
            with open(path, "r+b") as handle:
                handle.truncate(durable_offset)
        return cls(
            path,
            _mode="a",
            _next_seq=next_seq,
            _start_offset=durable_offset,
            **kwargs,
        )

    # -- state ----------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the last appended record (0 = none yet).

        Lineage capture (:mod:`repro.obs.xray`) stamps this on every
        conflict-set instantiation so provenance questions can be answered
        against the durable log.
        """
        return self._next_seq - 1

    @property
    def pending_records(self) -> int:
        """Appended records not yet durable (the WAL lag ``repro top`` shows)."""
        return len(self._buffer)

    @property
    def dead(self) -> bool:
        """True once a simulated crash fired or the writer was closed."""
        if self._closed:
            return True
        return (
            self.crashpoints is not None
            and self.crashpoints.crashed is not None
        )

    def _hit(self, site: str) -> None:
        if self.crashpoints is not None:
            self.crashpoints.hit(site)

    # -- appending -------------------------------------------------------------

    def append(self, kind: str, body: dict) -> int:
        """Buffer one record; returns its sequence number.

        Auto-syncs when ``fsync_every`` records have accumulated.
        """
        if self.dead:
            return self._next_seq
        self._hit("wal.pre_append")
        seq = self._next_seq
        self._next_seq += 1
        record = {
            "seq": seq,
            "kind": kind,
            "body": body,
            "crc": _crc(seq, kind, body),
        }
        self._buffer.append(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self.records_written += 1
        if self.obs is not None and self.obs.enabled:
            self.obs.metrics.counter("recovery.wal_records").inc()
        self._hit("wal.post_append")
        if len(self._buffer) >= self.fsync_every:
            self.sync()
        return seq

    def commit(self, kind: str, body: dict) -> int:
        """Append one boundary record and make the log durable through it.

        This is the §5 commit point: it runs *after* the maintenance
        process (the listeners already consumed the cycle's batches) and
        nothing of the cycle is considered recovered unless this record
        survived.
        """
        self._hit("commit.pre")
        seq = self.append(kind, body)
        self.sync()
        self._hit("commit.post")
        return seq

    def log_batch(self, batch: DeltaBatch) -> int:
        """Append one committed delta batch (the WM's WAL hook)."""
        return self.append("batch", encode_batch(batch))

    def sync(self) -> None:
        """Write buffered records and fsync the file."""
        if self.dead:
            return
        self._hit("wal.pre_sync")
        if self._buffer:
            payload = "".join(self._buffer)
            self._buffer = []
            started = time.perf_counter()
            obs = self.obs
            if obs is not None and obs.tracer.enabled:
                with obs.span("recovery.fsync", bytes=len(payload)):
                    self._write_and_fsync(payload)
            else:
                self._write_and_fsync(payload)
            self.synced_bytes += len(payload.encode("utf-8"))
            self.syncs += 1
            if obs is not None and obs.enabled:
                metrics = obs.metrics
                metrics.counter("recovery.fsyncs").inc()
                metrics.counter("recovery.wal_bytes").inc(
                    len(payload.encode("utf-8"))
                )
                metrics.log2_histogram("recovery.sync_us").observe(
                    (time.perf_counter() - started) * 1e6
                )
        self._hit("wal.post_sync")

    def _write_and_fsync(self, payload: str) -> None:
        self._handle.write(payload)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # -- lifecycle -------------------------------------------------------------

    def abandon(self) -> None:
        """Drop buffered records and close — the simulated process died."""
        self._buffer = []
        self._closed = True
        self._handle.close()

    def close(self) -> None:
        """Sync outstanding records and close the file."""
        if not self._closed:
            self.sync()
            self._closed = True
            self._handle.close()
