"""The write-ahead log: append-only JSONL with checksums and fsync batching.

One log records one run.  Each line is a JSON object::

    {"seq": 3, "kind": "batch", "body": {...}, "crc": 2468133518}

* ``seq`` — 1-based, strictly consecutive; a gap means a damaged log.
* ``kind`` — ``"meta"`` (first record: program text + run configuration),
  ``"batch"`` (one committed, netted :class:`~repro.delta.DeltaBatch`,
  appended *after* the maintenance process consumed it), or
  ``"boundary"`` (a commit point: end of an engine cycle, an op-script
  position, or end-of-setup — the atomic units of recovery).
* ``crc`` — CRC-32 of the canonical JSON of ``[seq, kind, body]``.

Durability model: appends are buffered in the writer and reach the file
only at :meth:`WalWriter.sync` (explicit, every ``fsync_every`` records,
or at a boundary via :meth:`WalWriter.commit`, which always syncs —
boundary records *are* the commit points of §5, written after the
maintenance process).  A crash loses at most the unsynced suffix;
recovery replays batch records only up to the last durable boundary, so a
cycle is atomic: either its boundary record survived and the cycle is
replayed exactly, or the whole cycle is re-executed from the previous
boundary (determinism makes the re-execution bit-identical).

Reading classifies damage: a torn *tail* (the final record truncated
mid-write) is expected crash debris and the log is readable up to it; a
bad checksum or sequence gap *followed by further valid records* means
the log was damaged in place, and :class:`~repro.errors.WalCorruptError`
refuses it loudly.

Segmented logs: with ``rotate_bytes > 0`` the writer archives the active
file as ``<path>.<first>-<last>.seg`` whenever a completed sync pushed it
past the budget, after persisting the run's ``meta`` record into a
checksummed ``<path>.walmeta`` sidecar (so the meta survives deletion of
segment one).  :func:`read_wal_chain` reads the archived segments plus
the active file as one contiguous record stream, and
:meth:`WalWriter.compact` deletes archived segments wholly superseded by
a checkpoint — the sequence numbers of the surviving records then start
past 1, and recovery demands the checkpoint that justified the deletion.

Group commit: several writers (one per tenant in ``repro.serve``) can
share a :class:`GroupCommit`; their boundary records then enlist for a
deferred fsync instead of syncing one by one, and a single
:meth:`GroupCommit.flush` makes every enlisted log durable at one
barrier.  Nothing is acknowledged to a client before the flush covering
its boundary returns.
"""

from __future__ import annotations

import json
import os
import re
import time
import zlib
from dataclasses import dataclass, field

from repro.delta import Delta, DeltaBatch
from repro.errors import RecoveryError, WalCorruptError
from repro.storage.tuples import StoredTuple

#: Wire form of one delta: [op, relation, tid, timetag, [values...]].
DeltaJson = list

#: Default number of buffered records between automatic fsyncs.
DEFAULT_FSYNC_EVERY = 64


def encode_delta(delta: Delta) -> DeltaJson:
    wme = delta.wme
    return [delta.op, wme.relation, wme.tid, wme.timetag, list(wme.values)]


def decode_delta(data: DeltaJson) -> Delta:
    op, relation, tid, timetag, values = data
    return Delta(
        op,
        StoredTuple(
            relation=relation,
            tid=int(tid),
            timetag=int(timetag),
            values=tuple(values),
        ),
    )


def encode_batch(batch: DeltaBatch) -> dict:
    return {"deltas": [encode_delta(delta) for delta in batch]}


def decode_batch(body: dict) -> DeltaBatch:
    return DeltaBatch(decode_delta(data) for data in body["deltas"])


def encode_key(key) -> list:
    """Wire form of an instantiation identity key:
    ``[rule, [[relation, tid] | null, ...]]``."""
    rule_name, slots = key
    return [
        rule_name,
        [list(slot) if slot is not None else None for slot in slots],
    ]


def decode_key(data) -> tuple:
    rule_name, slots = data
    return (
        rule_name,
        tuple(
            (slot[0], int(slot[1])) if slot is not None else None
            for slot in slots
        ),
    )


def encode_fired(triple) -> list:
    """Wire form of one firing: ``[cycle, rule, key]``."""
    cycle, rule_name, key = triple
    return [cycle, rule_name, encode_key(key)]


def decode_fired(data) -> tuple:
    cycle, rule_name, key = data
    return (int(cycle), rule_name, decode_key(key))


def _crc(seq: int, kind: str, body: dict) -> int:
    canonical = json.dumps(
        [seq, kind, body], sort_keys=True, separators=(",", ":")
    )
    return zlib.crc32(canonical.encode("utf-8"))


@dataclass(frozen=True)
class WalRecord:
    """One parsed log record plus its end offset in the file."""

    seq: int
    kind: str
    body: dict
    end_offset: int


@dataclass
class WalReadResult:
    """Outcome of :func:`read_wal`."""

    records: list[WalRecord]
    #: True when the file ended in a truncated (torn) record — expected
    #: after a crash; the readable prefix is still trustworthy.
    torn: bool
    #: Byte offset just past the last valid record (truncation point for
    #: a writer continuing this log).
    durable_offset: int
    #: Sequence number preceding the file's first record (0 for a whole
    #: log; the previous segment's last seq when reading a chain).
    base_seq: int = 0

    @property
    def next_seq(self) -> int:
        return self.records[-1].seq + 1 if self.records else self.base_seq + 1


def read_wal(path: str, base_seq: int = 0) -> WalReadResult:
    """Parse *path*, tolerating a torn tail but refusing inner damage.

    A record counts as durable only when its terminating newline made it
    to disk; a parseable final line without one is still treated as torn
    (a writer continuing the log must be able to append cleanly).
    *base_seq* is the last sequence number before this file — 0 for a
    whole log, the previous segment's last record when reading a chain.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    records: list[WalRecord] = []
    torn = False
    position = 0
    size = len(raw)
    while position < size:
        newline = raw.find(b"\n", position)
        complete = newline != -1
        end = (newline + 1) if complete else size
        line = raw[position:newline] if complete else raw[position:]
        parsed = (
            _parse_line(line, expect_seq=base_seq + len(records) + 1)
            if complete
            else None
        )
        if parsed is None:
            if any(
                _parse_line(later, expect_seq=None) is not None
                for later in raw[end:].split(b"\n")
            ):
                raise WalCorruptError(
                    f"damaged WAL record at byte {position} of {path} "
                    "with valid records after it"
                )
            torn = True
            break
        records.append(
            WalRecord(parsed[0], parsed[1], parsed[2], end_offset=end)
        )
        position = end
    durable = records[-1].end_offset if records else 0
    return WalReadResult(
        records=records, torn=torn, durable_offset=durable, base_seq=base_seq
    )


# -- segmented logs ------------------------------------------------------------

#: Archived-segment filename suffix: ``<path>.<first>-<last>.seg``.
_SEGMENT_RE = re.compile(r"\.(\d+)-(\d+)\.seg$")

#: Sidecar filename suffix carrying the run's meta record body.
META_SIDECAR_SUFFIX = ".walmeta"


def segment_path(path: str, first: int, last: int) -> str:
    return f"{path}.{first:08d}-{last:08d}.seg"


def list_segments(path: str) -> list[tuple[int, int, str]]:
    """Archived segments of *path* as sorted ``(first, last, file)``."""
    directory = os.path.dirname(path) or "."
    prefix = os.path.basename(path) + "."
    found = []
    for name in os.listdir(directory):
        if not name.startswith(prefix):
            continue
        match = _SEGMENT_RE.search(name)
        if match is None:
            continue
        found.append(
            (
                int(match.group(1)),
                int(match.group(2)),
                os.path.join(directory, name),
            )
        )
    found.sort()
    return found


def write_meta_sidecar(path: str, meta: dict) -> str:
    """Persist *meta* next to *path* (idempotent, checksummed, fsynced)."""
    sidecar = path + META_SIDECAR_SUFFIX
    if os.path.exists(sidecar):
        return sidecar
    payload = {"version": 1, "meta": meta, "crc": _crc(0, "meta", meta)}
    temp = sidecar + ".tmp"
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, sidecar)
    return sidecar


def _read_sidecar_payload(path: str) -> dict | None:
    sidecar = path + META_SIDECAR_SUFFIX
    if not os.path.exists(sidecar):
        return None
    try:
        with open(sidecar, encoding="utf-8") as handle:
            payload = json.load(handle)
        meta = payload["meta"]
        if _crc(0, "meta", meta) != payload["crc"]:
            raise WalCorruptError(f"meta sidecar {sidecar!r} fails its CRC")
    except WalCorruptError:
        raise
    except Exception as exc:
        raise WalCorruptError(f"unreadable meta sidecar {sidecar!r}") from exc
    return payload


def read_meta_sidecar(path: str) -> dict | None:
    """The meta body persisted by :func:`write_meta_sidecar`, or None."""
    payload = _read_sidecar_payload(path)
    return None if payload is None else payload["meta"]


def read_sidecar_base(path: str) -> int:
    """The compacted-prefix high seq recorded in the sidecar (0 if none).

    Every record at or below this seq was deleted by
    :meth:`WalWriter.compact` after a checkpoint superseded it; the
    segment chain (or, once fully compacted, the active file itself)
    logically starts at the next seq.
    """
    payload = _read_sidecar_payload(path)
    if payload is None:
        return 0
    base = payload.get("base_seq", 0)
    if not isinstance(base, int) or base < 0:
        raise WalCorruptError(
            f"meta sidecar of {path!r} carries invalid base_seq {base!r}"
        )
    return base


def bump_sidecar_base(path: str, base_seq: int) -> None:
    """Record that records ``<= base_seq`` were compacted away.

    Rewritten atomically; the base only ever grows.  Without this marker
    a fully compacted chain (no archived segments left) would lose track
    of where the active file's sequence numbers start.
    """
    payload = _read_sidecar_payload(path)
    if payload is None or payload.get("base_seq", 0) >= base_seq:
        return
    payload["base_seq"] = base_seq
    sidecar = path + META_SIDECAR_SUFFIX
    temp = sidecar + ".tmp"
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, sidecar)


@dataclass
class WalChainResult:
    """Outcome of :func:`read_wal_chain`: the log as one record stream."""

    records: list[WalRecord] = field(default_factory=list)
    #: True when the *last* file of the chain ended in a torn record.
    torn: bool = False
    #: The run's meta body — from the first record when segment one
    #: survives, otherwise from the ``.walmeta`` sidecar; None when
    #: neither is durable.
    meta: dict | None = None
    #: Sequence number of the first available record (> 1 after
    #: compaction deleted the log prefix; 1, or 0 when empty, otherwise).
    first_seq: int = 0
    #: Sequence number the active file starts at (records below it live
    #: in archived segments).
    active_base_seq: int = 1
    #: False when the active file is missing — the torn-rotation window
    #: (a crash between archiving the old segment and creating the new
    #: active file); the archived chain is still fully durable.
    active_exists: bool = True
    #: Archived segment files, in sequence order.
    segments: list[str] = field(default_factory=list)

    @property
    def next_seq(self) -> int:
        return self.records[-1].seq + 1 if self.records else self.first_seq

    def active_offset(self, upto_seq: int) -> int:
        """Truncation offset *within the active file* keeping records up
        to *upto_seq* (0 when none of them live in the active file)."""
        offset = 0
        for record in self.records:
            if record.seq > upto_seq:
                break
            if record.seq >= self.active_base_seq:
                offset = record.end_offset
        return offset


def read_wal_chain(path: str) -> WalChainResult:
    """Read archived segments plus the active file as one contiguous log.

    Archived segments were fully synced before they were renamed, so any
    tear or truncation *inside* one is real damage and refuses loudly;
    only the final file of the chain (normally the active file) may end
    torn.  A missing active file is tolerated as the torn-rotation
    window.  Sequence continuity is enforced across file boundaries.
    """
    segments = list_segments(path)
    result = WalChainResult(segments=[file for _, _, file in segments])
    compacted = read_sidecar_base(path)
    expected = segments[0][0] - 1 if segments else compacted
    if segments and compacted and segments[0][0] != compacted + 1:
        raise WalCorruptError(
            f"first segment of {path!r} starts at seq {segments[0][0]} "
            f"but compaction recorded seqs <= {compacted} deleted — "
            "a segment is missing"
        )
    for first, last, file in segments:
        if first != expected + 1:
            raise WalCorruptError(
                f"segment {file!r} starts at seq {first}, "
                f"expected {expected + 1} — a segment is missing"
            )
        part = read_wal(file, base_seq=first - 1)
        if part.torn or not part.records or part.records[-1].seq != last:
            raise WalCorruptError(
                f"archived segment {file!r} is damaged or truncated "
                f"(expected records {first}..{last})"
            )
        result.records.extend(part.records)
        expected = last
    result.active_base_seq = expected + 1
    if os.path.exists(path):
        active = read_wal(path, base_seq=expected)
        result.records.extend(active.records)
        result.torn = active.torn
    else:
        result.active_exists = False
        if not segments:
            raise FileNotFoundError(path)
    if result.records:
        result.first_seq = result.records[0].seq
    if result.first_seq == 1 and result.records[0].kind == "meta":
        result.meta = result.records[0].body
    else:
        result.meta = read_meta_sidecar(path)
    return result


class GroupCommit:
    """Coalesces the fsyncs of many writers into one flush barrier.

    A writer constructed with ``group=`` enlists itself at every
    :meth:`WalWriter.commit` instead of syncing; :meth:`flush` then syncs
    every enlisted writer once, in enlistment order.  The caller must not
    acknowledge a commit before the flush covering it returns — this is
    the cross-tenant group-commit point of ``repro.serve``.
    """

    def __init__(self, obs=None) -> None:
        self.obs = obs
        self._dirty: list[WalWriter] = []
        self.flushes = 0
        self.enlisted_total = 0

    @property
    def pending(self) -> int:
        """Writers with a deferred (not yet durable) commit."""
        return len(self._dirty)

    def enlist(self, writer: "WalWriter") -> None:
        if writer not in self._dirty:
            self._dirty.append(writer)
            self.enlisted_total += 1

    def flush(self) -> int:
        """Make every enlisted writer durable; returns how many synced."""
        dirty, self._dirty = self._dirty, []
        for writer in dirty:
            writer.sync()
        if dirty:
            self.flushes += 1
            if self.obs is not None and self.obs.enabled:
                metrics = self.obs.metrics
                metrics.counter("serve.group_commits").inc()
                metrics.counter("serve.group_commit_members").inc(len(dirty))
        return len(dirty)


def _parse_line(line: bytes, expect_seq: int | None):
    """``(seq, kind, body)`` when *line* is a valid record, else None."""
    try:
        data = json.loads(line.decode("utf-8"))
        seq = data["seq"]
        kind = data["kind"]
        body = data["body"]
        crc = data["crc"]
    except Exception:
        return None
    if not isinstance(seq, int) or not isinstance(kind, str):
        return None
    if _crc(seq, kind, body) != crc:
        return None
    if expect_seq is not None and seq != expect_seq:
        return None
    return (seq, kind, body)


class WalWriter:
    """Appends records to one log file with batched fsyncs.

    Construct with :meth:`create` for a fresh run or :meth:`continue_log`
    to resume an existing log (the non-durable suffix is physically
    truncated first, so the file never holds records a previous recovery
    decided to discard).

    The optional :class:`~repro.recovery.crashpoints.Crashpoints`
    registry is consulted at every named site; after it fires, the writer
    plays dead — buffered records are dropped and all further operations
    are silent no-ops, modelling the process death the registry simulates.
    """

    def __init__(
        self,
        path: str,
        crashpoints=None,
        obs=None,
        fsync_every: int = DEFAULT_FSYNC_EVERY,
        rotate_bytes: int = 0,
        wal_meta: dict | None = None,
        group: "GroupCommit | None" = None,
        tap: "object | None" = None,
        _mode: str = "w",
        _next_seq: int = 1,
        _start_offset: int = 0,
        _segment_first_seq: int = 1,
    ) -> None:
        self.path = path
        self.crashpoints = crashpoints
        self.obs = obs
        self.fsync_every = max(1, fsync_every)
        #: Segment budget: > 0 archives the active file once a completed
        #: sync pushed it past this many bytes (0 = never rotate).
        self.rotate_bytes = rotate_bytes
        #: The run's meta body, persisted to the ``.walmeta`` sidecar at
        #: the first rotation; rotation is skipped when unknown.
        self.wal_meta = wal_meta
        #: Optional :class:`GroupCommit` this writer's boundaries enlist
        #: with instead of syncing eagerly.
        self.group = group
        #: Sync tap: ``tap(first_seq, lines)`` is called after every
        #: completed fsync with the raw serialized record lines that just
        #: became durable (``first_seq`` is the seq of ``lines[0]``).
        #: ``repro.replica`` hangs its log shipper here — only records
        #: that are durable on the primary are ever shipped.
        self.tap = tap
        self._handle = open(path, _mode, encoding="utf-8")
        self._buffer: list[str] = []
        self._next_seq = _next_seq
        self._closed = False
        #: Bytes durably on disk (past the last completed sync).
        self.synced_bytes = _start_offset
        self.records_written = 0
        self.syncs = 0
        #: First sequence number of the current active segment and the
        #: durable bytes already inside it (drives rotation).
        self._segment_first_seq = _segment_first_seq
        self._segment_bytes = _start_offset
        self.rotations = 0
        self.segments_deleted = 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(cls, path: str, **kwargs) -> "WalWriter":
        """Start a fresh log at *path* (truncates any existing file)."""
        return cls(path, **kwargs)

    @classmethod
    def continue_log(
        cls, path: str, durable_offset: int, next_seq: int, **kwargs
    ) -> "WalWriter":
        """Append to an existing log after truncating its dead suffix.

        *durable_offset* / *next_seq* come from :func:`read_wal` (or from
        the recovery pass that decided how much of the log to keep); the
        bytes past the offset are crash debris and are removed so they can
        never shadow the records a resumed run appends.  A missing active
        file (the torn-rotation window) is recreated empty, provided the
        offset agrees nothing durable lived in it.
        """
        kwargs.setdefault("_segment_first_seq", next_seq)
        if not os.path.exists(path):
            if durable_offset:
                raise RecoveryError(
                    f"durable offset {durable_offset} but {path!r} is missing"
                )
            return cls(path, _mode="w", _next_seq=next_seq, **kwargs)
        size = os.path.getsize(path)
        if durable_offset > size:
            raise RecoveryError(
                f"durable offset {durable_offset} beyond end of {path!r}"
            )
        if durable_offset < size:
            with open(path, "r+b") as handle:
                handle.truncate(durable_offset)
        return cls(
            path,
            _mode="a",
            _next_seq=next_seq,
            _start_offset=durable_offset,
            **kwargs,
        )

    # -- state ----------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the last appended record (0 = none yet).

        Lineage capture (:mod:`repro.obs.xray`) stamps this on every
        conflict-set instantiation so provenance questions can be answered
        against the durable log.
        """
        return self._next_seq - 1

    @property
    def pending_records(self) -> int:
        """Appended records not yet durable (the WAL lag ``repro top`` shows)."""
        return len(self._buffer)

    @property
    def dead(self) -> bool:
        """True once a simulated crash fired or the writer was closed."""
        if self._closed:
            return True
        return (
            self.crashpoints is not None
            and self.crashpoints.crashed is not None
        )

    def _hit(self, site: str) -> None:
        if self.crashpoints is not None:
            self.crashpoints.hit(site)

    # -- appending -------------------------------------------------------------

    def append(self, kind: str, body: dict) -> int:
        """Buffer one record; returns its sequence number.

        Auto-syncs when ``fsync_every`` records have accumulated.
        """
        if self.dead:
            return self._next_seq
        self._hit("wal.pre_append")
        seq = self._next_seq
        self._next_seq += 1
        record = {
            "seq": seq,
            "kind": kind,
            "body": body,
            "crc": _crc(seq, kind, body),
        }
        self._buffer.append(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self.records_written += 1
        if self.obs is not None and self.obs.enabled:
            self.obs.metrics.counter("recovery.wal_records").inc()
        self._hit("wal.post_append")
        if len(self._buffer) >= self.fsync_every:
            self.sync()
        return seq

    def commit(self, kind: str, body: dict) -> int:
        """Append one boundary record and make the log durable through it.

        This is the §5 commit point: it runs *after* the maintenance
        process (the listeners already consumed the cycle's batches) and
        nothing of the cycle is considered recovered unless this record
        survived.  With a :class:`GroupCommit` attached the sync is
        deferred to the group's next flush barrier instead — the record
        is a commit point only once that flush returns, and the caller
        must not acknowledge it earlier.
        """
        self._hit("commit.pre")
        seq = self.append(kind, body)
        if self.group is not None and not self.dead:
            self.group.enlist(self)
        else:
            self.sync()
        self._hit("commit.post")
        return seq

    def log_batch(self, batch: DeltaBatch) -> int:
        """Append one committed delta batch (the WM's WAL hook)."""
        return self.append("batch", encode_batch(batch))

    def sync(self) -> None:
        """Write buffered records and fsync the file."""
        if self.dead:
            return
        self._hit("wal.pre_sync")
        if self._buffer:
            lines = self._buffer
            first_seq = self._next_seq - len(lines)
            payload = "".join(lines)
            self._buffer = []
            started = time.perf_counter()
            obs = self.obs
            if obs is not None and obs.tracer.enabled:
                with obs.span("recovery.fsync", bytes=len(payload)):
                    self._write_and_fsync(payload)
            else:
                self._write_and_fsync(payload)
            size = len(payload.encode("utf-8"))
            self.synced_bytes += size
            self._segment_bytes += size
            self.syncs += 1
            if obs is not None and obs.enabled:
                metrics = obs.metrics
                metrics.counter("recovery.fsyncs").inc()
                metrics.counter("recovery.wal_bytes").inc(size)
                metrics.log2_histogram("recovery.sync_us").observe(
                    (time.perf_counter() - started) * 1e6
                )
            if self.tap is not None:
                self.tap(first_seq, lines)
        self._hit("wal.post_sync")
        if (
            self.rotate_bytes > 0
            and self._segment_bytes >= self.rotate_bytes
            and not self.dead
        ):
            self._rotate()

    def _write_and_fsync(self, payload: str) -> None:
        self._handle.write(payload)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # -- rotation and compaction -----------------------------------------------

    def _rotate(self) -> None:
        """Archive the (fully synced) active file and start a fresh one.

        The meta sidecar is persisted *before* the rename, so even if
        compaction later deletes segment one — or the process dies in the
        rotation window (``wal.rotate``), leaving no active file — the
        run's configuration is still recoverable.
        """
        first, last = self._segment_first_seq, self.last_seq
        if last < first or self.wal_meta is None:
            return
        write_meta_sidecar(self.path, self.wal_meta)
        self._handle.close()
        os.replace(self.path, segment_path(self.path, first, last))
        self.rotations += 1
        if self.obs is not None and self.obs.enabled:
            self.obs.metrics.counter("recovery.wal_rotations").inc()
        self._hit("wal.rotate")
        self._handle = open(self.path, "w", encoding="utf-8")
        self._segment_first_seq = last + 1
        self._segment_bytes = 0

    def compact(self, upto_seq: int) -> int:
        """Delete archived segments wholly superseded by a checkpoint.

        *upto_seq* is the checkpoint's ``wal_seq``: every record at or
        below it is reconstructible from the checkpoint alone, so an
        archived segment whose last record is ≤ it carries no recovery
        value.  The active file is never deleted.  Returns the number of
        segments removed.
        """
        if self.dead:
            return 0
        removed = 0
        deleted_upto = 0
        for _first, last, file in list_segments(self.path):
            if last <= upto_seq and os.path.exists(
                self.path + META_SIDECAR_SUFFIX
            ):
                os.remove(file)
                removed += 1
                deleted_upto = max(deleted_upto, last)
        if removed:
            # Without this marker a fully compacted chain would forget
            # where the active file's sequence numbers begin.
            bump_sidecar_base(self.path, deleted_upto)
        self.segments_deleted += removed
        if removed and self.obs is not None and self.obs.enabled:
            self.obs.metrics.counter("recovery.segments_deleted").inc(removed)
        return removed

    # -- lifecycle -------------------------------------------------------------

    def abandon(self) -> None:
        """Drop buffered records and close — the simulated process died."""
        self._buffer = []
        self._closed = True
        self._handle.close()

    def close(self) -> None:
        """Sync outstanding records and close the file."""
        if not self._closed:
            self.sync()
            self._closed = True
            self._handle.close()
