"""DurableRun: the recognize-act loop with a write-ahead log attached.

Wraps a live :class:`~repro.engine.interpreter.ProductionSystem` so that

* setup (the initial working memory), every op-script position and every
  engine cycle ends in a *boundary* record — the §5 commit point, written
  after the maintenance process and always fsynced;
* the WM's committed delta batches stream into the same log between
  boundaries (via ``wm.wal``);
* a checkpoint is cut every N cycles or M durable log bytes.

Boundary records carry the run's *delta* state (this cycle's firings and
program output) plus the allocation marks (logical clock, per-relation
tid high-water) and resolver/tuner state needed to restart the loop
deterministically.  :mod:`repro.recovery.recover` folds them back up.
"""

from __future__ import annotations

import zlib

from repro.delta import DeltaBatch
from repro.engine.interpreter import ProductionSystem, RunResult
from repro.engine.resolution import SeededRandom
from repro.recovery.checkpoint import write_checkpoint
from repro.recovery.wal import DEFAULT_FSYNC_EVERY, WalWriter, encode_fired


def program_crc(program_text: str) -> int:
    """Checksum binding checkpoints to the log's program text."""
    return zlib.crc32(program_text.encode("utf-8"))


class DurableRun:
    """One production-system run bound to one write-ahead log.

    Build with :meth:`start` (fresh log) or :meth:`resume` (continue the
    log a :func:`~repro.recovery.recover.recover` pass decided to keep).
    Callers drive the system through :meth:`run` (engine cycles) and
    :meth:`ops_boundary` (op-script commit points), then :meth:`close`;
    after a :class:`~repro.recovery.crashpoints.SimulatedCrash`, call
    :meth:`abandon` — the writer is already playing dead and nothing
    after the crash becomes durable.
    """

    def __init__(
        self,
        system: ProductionSystem,
        writer: WalWriter,
        *,
        program_crc: int = 0,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 0,
        checkpoint_bytes: int = 0,
        crashpoints=None,
        include_rete: bool = False,
    ) -> None:
        self.system = system
        self.writer = writer
        self.program_crc = program_crc
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.checkpoint_bytes = checkpoint_bytes
        self.crashpoints = crashpoints
        self.include_rete = include_rete
        #: Run progress, advanced at each boundary.
        self.phase: str | None = None
        self.position = 0
        self.next_cycle = 1
        self.halted = False
        self.extra: dict = {}
        self.last_boundary_seq = 0
        self._fired: list = []  # cumulative, wire-encoded triples
        self._output_len = 0
        self._cycles_since_checkpoint = 0
        self._bytes_at_checkpoint = 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def start(
        cls,
        system: ProductionSystem,
        wal_path: str,
        program_text: str,
        config: dict,
        *,
        fsync_every: int = DEFAULT_FSYNC_EVERY,
        crashpoints=None,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 0,
        checkpoint_bytes: int = 0,
        include_rete: bool = False,
        extra: dict | None = None,
        wal_rotate_bytes: int = 0,
        group=None,
        meta_extra: dict | None = None,
        wal_tap=None,
    ) -> "DurableRun":
        """Open a fresh log for *system* and commit the setup boundary.

        *config* is the run configuration recovery needs to rebuild an
        identical system: ``strategy``, ``resolution``, ``backend``,
        ``seed``, ``batch_size`` and ``firing``.  The system's current WM
        (its initial elements were inserted before any log existed) is
        logged as the first batch record, so recovery replays it like any
        other committed batch.  *wal_rotate_bytes* > 0 turns on segment
        rotation (and compaction at each checkpoint); *group* defers
        boundary fsyncs to a shared
        :class:`~repro.recovery.wal.GroupCommit` barrier.  *meta_extra*
        merges additional keys (the serving epoch, say) into the meta
        record; recovery ignores keys it does not know.  *wal_tap* is
        installed as the writer's post-fsync tap
        (:mod:`repro.replica` log shipping) from the very first record.
        """
        meta = {"version": 1, "program": program_text, **config,
                **(meta_extra or {})}
        writer = WalWriter.create(
            wal_path,
            crashpoints=crashpoints,
            obs=system.obs,
            fsync_every=fsync_every,
            rotate_bytes=wal_rotate_bytes,
            wal_meta=meta,
            group=group,
            tap=wal_tap,
        )
        writer.append("meta", meta)
        rows = sorted(
            (
                wme
                for name in system.wm.schemas
                for wme in system.wm.tuples(name)
            ),
            key=lambda wme: wme.timetag,
        )
        if rows:
            writer.log_batch(DeltaBatch.of_inserts(rows))
        system.wm.wal = writer
        run = cls(
            system,
            writer,
            program_crc=program_crc(program_text),
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            checkpoint_bytes=checkpoint_bytes,
            crashpoints=crashpoints,
            include_rete=include_rete,
        )
        run._commit_boundary("setup", extra=extra)
        # Setup-time instantiations were recorded before the WAL existed;
        # stamp them with the setup boundary's sequence number so every
        # lineage in a wal-enabled run carries a durable reference point.
        recorder = getattr(system, "lineage_recorder", None)
        if recorder is not None:
            recorder.backfill_wal_seq()
        return run

    @classmethod
    def resume(
        cls,
        state,
        *,
        fsync_every: int = DEFAULT_FSYNC_EVERY,
        crashpoints=None,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 0,
        checkpoint_bytes: int = 0,
        include_rete: bool = False,
        wal_rotate_bytes: int = 0,
        group=None,
    ) -> "DurableRun":
        """Continue a recovered run's log in place.

        *state* is a :class:`~repro.recovery.recover.RecoveredState`; the
        log's non-durable suffix is physically truncated before appending.
        """
        writer = WalWriter.continue_log(
            state.wal_path,
            state.durable_offset,
            state.next_seq,
            crashpoints=crashpoints,
            obs=state.system.obs,
            fsync_every=fsync_every,
            rotate_bytes=wal_rotate_bytes,
            wal_meta=state.meta,
            group=group,
            # An active file truncated to empty restarts its segment at
            # the next appended record, not at the pre-crash base.
            _segment_first_seq=(
                state.active_base_seq
                if state.durable_offset
                else state.next_seq
            ),
        )
        state.system.wm.wal = writer
        run = cls(
            state.system,
            writer,
            program_crc=program_crc(state.meta["program"]),
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            checkpoint_bytes=checkpoint_bytes,
            crashpoints=crashpoints,
            include_rete=include_rete,
        )
        run.phase = state.phase
        run.position = state.position
        run.next_cycle = state.cycle + 1
        run.halted = state.halted
        run.extra = dict(state.extra)
        run.last_boundary_seq = state.next_seq - 1
        run._fired = [encode_fired(triple) for triple in state.fired]
        run._output_len = len(state.system.output)
        run._bytes_at_checkpoint = writer.synced_bytes
        return run

    # -- boundaries -----------------------------------------------------------

    def _resolver_state(self):
        resolver = self.system.resolver
        return (
            list(resolver.getstate())
            if isinstance(resolver, SeededRandom)
            else None
        )

    def _commit_boundary(
        self,
        phase: str,
        fired_delta: list | None = None,
        position: int | None = None,
        extra: dict | None = None,
    ) -> int:
        """Write one fsynced boundary record (the commit point)."""
        self.phase = phase
        if position is not None:
            self.position = position
        if extra is not None:
            self.extra = extra
        output = self.system.output
        output_delta = [list(row) for row in output[self._output_len:]]
        self._output_len = len(output)
        body = {
            "phase": phase,
            "cycle": self.next_cycle - 1,
            "position": self.position,
            "fired": fired_delta or [],
            "output_delta": output_delta,
            "halted": self.halted,
            "clock": self.system.wm.catalog.clock.current,
            "tids": self.system.wm.tid_marks(),
            "auto_batch_size": self.system.auto_batch_size,
            "resolver_state": self._resolver_state(),
            "extra": self.extra,
        }
        seq = self.writer.commit("boundary", body)
        self.last_boundary_seq = seq
        return seq

    def ops_boundary(self, position: int, extra: dict | None = None) -> int:
        """Commit an op-script position (external WM mutations since the
        previous boundary are durable once this returns)."""
        seq = self._commit_boundary("ops", position=position, extra=extra)
        self._maybe_checkpoint(count_cycle=False)
        return seq

    # -- the durable recognize-act loop ---------------------------------------

    def run(self, max_cycles: int = 10_000) -> RunResult:
        """Run engine cycles, committing a boundary after each one."""
        fired_records = []
        executed = 0
        for _ in range(max_cycles):
            if self.halted:
                break
            cycle = self.next_cycle
            records = self.system.step_records(cycle)
            if not records:
                return RunResult(
                    cycles=executed,
                    halted=False,
                    exhausted=False,
                    fired=fired_records,
                )
            executed += 1
            self.next_cycle += 1
            fired_records.extend(records)
            delta = [
                encode_fired(
                    (cycle, r.instantiation.rule_name, r.instantiation.key)
                )
                for r in records
            ]
            self._fired.extend(delta)
            self.halted = any(r.outcome.halted for r in records)
            self._commit_boundary("cycle", fired_delta=delta)
            self._cycles_since_checkpoint += 1
            self._maybe_checkpoint()
            if self.halted:
                break
        return RunResult(
            cycles=executed,
            halted=self.halted,
            exhausted=not self.halted and executed == max_cycles,
            fired=fired_records,
        )

    def run_txn(self, max_rounds: int = 100, scheduler=None) -> list:
        """§5.2 concurrent rounds under the WAL, one boundary per round.

        Mirrors the oracle's txn replay: each round drains one
        conflict-set snapshot through a
        :class:`~repro.txn.scheduler.ConcurrentScheduler` (whose
        group-commit sync makes the round's batches durable), then a
        ``"round"`` boundary commits the round's fired keys.  Returns the
        per-round stats; round numbering continues across recovery.
        """
        if scheduler is None:
            from repro.txn.scheduler import ConcurrentScheduler

            scheduler = ConcurrentScheduler(self.system)
        rounds = []
        for _ in range(max_rounds):
            round_no = self.next_cycle
            stats = scheduler.run_round()
            if stats.transactions == 0:
                break
            self.next_cycle += 1
            delta = [
                encode_fired((round_no, key[0], key))
                for key in stats.committed_seq
            ]
            self._fired.extend(delta)
            self._commit_boundary("round", fired_delta=delta)
            self._cycles_since_checkpoint += 1
            self._maybe_checkpoint()
            rounds.append(stats)
        return rounds

    # -- checkpoints ----------------------------------------------------------

    def _state_snapshot(self) -> dict:
        """The cumulative run state, as a checkpoint stores it."""
        return {
            "phase": self.phase,
            "cycle": self.next_cycle - 1,
            "position": self.position,
            "fired": list(self._fired),
            "output": [list(row) for row in self.system.output],
            "halted": self.halted,
            "auto_batch_size": self.system.auto_batch_size,
            "resolver_state": self._resolver_state(),
            "extra": self.extra,
        }

    def _maybe_checkpoint(self, count_cycle: bool = True) -> None:
        if self.checkpoint_path is None:
            return
        due = (
            count_cycle
            and self.checkpoint_every > 0
            and self._cycles_since_checkpoint >= self.checkpoint_every
        ) or (
            self.checkpoint_bytes > 0
            and self.writer.synced_bytes - self._bytes_at_checkpoint
            >= self.checkpoint_bytes
        )
        if due:
            self.checkpoint_now()

    def checkpoint_now(self) -> dict | None:
        """Cut a checkpoint at the last committed boundary."""
        if self.checkpoint_path is None:
            return None
        body = write_checkpoint(
            self.system,
            self.checkpoint_path,
            wal_seq=self.last_boundary_seq,
            state=self._state_snapshot(),
            program_crc=self.program_crc,
            crashpoints=self.crashpoints,
            obs=self.system.obs,
            include_rete=self.include_rete,
        )
        if body is not None:
            self._cycles_since_checkpoint = 0
            self._bytes_at_checkpoint = self.writer.synced_bytes
            # The checkpoint supersedes every record up to its wal_seq;
            # archived segments fully below it carry no recovery value.
            self.writer.compact(self.last_boundary_seq)
        return body

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Detach the log and close it cleanly (final sync included)."""
        if self.system.wm.wal is self.writer:
            self.system.wm.wal = None
        self.writer.close()

    def abandon(self) -> None:
        """Detach and drop unsynced records — the simulated process died."""
        if self.system.wm.wal is self.writer:
            self.system.wm.wal = None
        self.writer.abandon()
