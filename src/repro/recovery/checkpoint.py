"""Checkpoints: atomic snapshots that bound log replay.

A checkpoint captures, at one WAL boundary (its ``wal_seq``):

* every WM relation's rows — exact tids, timetags and values, via the
  storage backends' ordinary iteration;
* the run's cumulative progress (phase, cycle, fired sequence, output,
  refraction keys are implied by the fired sequence) and resolver /
  batch-size-tuner state;
* optionally, a canonical snapshot of the Rete LEFT/RIGHT memories
  (the rete family's alpha/beta/negative/mirror contents) used to verify
  the replay-through-match rebuild bit-for-bit at recovery time.

The file is one JSON object with a CRC, written to a temp file, fsynced
and atomically renamed over the destination — a crash mid-checkpoint
(site ``checkpoint.mid``) leaves the previous checkpoint intact.
Matcher state is deliberately *not* restored from the snapshot: recovery
rebuilds it by replaying the restored WM through the match network
(:meth:`repro.engine.wm.WorkingMemory.restore_batch`), and the optional
Rete snapshot cross-checks that rebuild.
"""

from __future__ import annotations

import json
import os
import time
import zlib

from repro.errors import RecoveryError

CHECKPOINT_VERSION = 1


class CheckpointError(RecoveryError):
    """A checkpoint file is damaged or inconsistent with its log."""


def canonical_rete_snapshot(strategy) -> dict:
    """A JSON-safe, order-canonical image of every Rete memory.

    Same contents as :func:`repro.check.oracle.rete_memory_snapshot`
    (alpha WME keys, beta token chains, negative witness sets, persisted
    mirror rows) but encoded with lists and sorted deterministically, so
    two snapshots are comparable after a JSON round trip.
    """
    network = strategy.network

    def chain(token):
        return [
            [w.relation, w.tid] if w is not None else None
            for w in token.chain()
        ]

    return {
        "alpha": {
            amem.name: sorted(
                [list(key) for key in amem.wme_keys()], key=repr
            )
            for amem in network.alpha_memories
        },
        "beta": {
            bmem.name: sorted(
                (chain(token) for token in bmem.tokens()), key=repr
            )
            for bmem in network.beta_memories
        },
        "negative": {
            node.name: sorted(
                (
                    [chain(token), sorted([list(m) for m in matches], key=repr)]
                    for token, matches in node.results.items()
                ),
                key=repr,
            )
            for node in network.negative_nodes
        },
        "mirrors": {
            mirror.table.schema.name: sorted(
                (list(row.values) for row in mirror.table.scan()), key=repr
            )
            for mirror in network.mirrors
        },
    }


def _normalize(data):
    """JSON round-trip, so in-memory and reloaded snapshots compare equal."""
    return json.loads(json.dumps(data))


def write_checkpoint(
    system,
    path: str,
    wal_seq: int,
    state: dict,
    program_crc: int = 0,
    crashpoints=None,
    obs=None,
    include_rete: bool = False,
) -> dict | None:
    """Snapshot *system* as of WAL boundary *wal_seq*; returns the body.

    *state* is the durable-run progress dict (phase, cycle, fired,
    output, resolver state...) exactly as a boundary record carries it.
    Returns ``None`` without writing when the run's crashpoint registry
    has already fired (the simulated process is dead).
    """
    if crashpoints is not None and crashpoints.crashed is not None:
        return None
    started = time.perf_counter()
    relations = {
        class_name: [
            [wme.tid, wme.timetag, list(wme.values)]
            for wme in sorted(
                system.wm.tuples(class_name), key=lambda w: w.tid
            )
        ]
        for class_name in system.wm.schemas
    }
    body = {
        "version": CHECKPOINT_VERSION,
        "wal_seq": wal_seq,
        "program_crc": program_crc,
        "clock": system.wm.catalog.clock.current,
        "tids": system.wm.tid_marks(),
        "relations": relations,
        "state": state,
    }
    if include_rete and hasattr(system.strategy, "network"):
        body["rete"] = canonical_rete_snapshot(system.strategy)
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    record = json.dumps(
        {"body": body, "crc": zlib.crc32(payload.encode("utf-8"))},
        sort_keys=True,
        separators=(",", ":"),
    )
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(record + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    if crashpoints is not None:
        crashpoints.hit("checkpoint.mid")
    os.replace(tmp, path)
    if obs is not None and obs.enabled:
        metrics = obs.metrics
        metrics.counter("recovery.checkpoints").inc()
        metrics.histogram("recovery.checkpoint_us").observe(
            (time.perf_counter() - started) * 1e6
        )
    return body


def load_checkpoint(path: str) -> dict | None:
    """Read a checkpoint body; ``None`` when *path* does not exist.

    Raises :class:`CheckpointError` when the file exists but is damaged
    — a checkpoint is never guessed at.
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.loads(handle.read())
        body = data["body"]
        crc = data["crc"]
    except Exception as error:
        raise CheckpointError(
            f"unreadable checkpoint {path!r}: {error}"
        ) from None
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(payload.encode("utf-8")) != crc:
        raise CheckpointError(f"checkpoint {path!r} failed its checksum")
    if body.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has unsupported version "
            f"{body.get('version')!r}"
        )
    return body
