"""repro.recovery — durability and crash recovery for production runs.

The paper's core pitch is that hosting a production system in a DBMS buys
the DBMS's services, concurrency control *and recovery* (§1); §5 places
the commit point after the maintenance process precisely so that each
fired instance is a recoverable transaction.  This package supplies that
recovery half:

* :mod:`repro.recovery.wal` — an append-only JSONL write-ahead log of
  committed :class:`~repro.delta.DeltaBatch` records plus engine-cycle /
  commit-point boundary records (sequence-numbered, CRC-checksummed,
  fsync-batched);
* :mod:`repro.recovery.checkpoint` — periodic atomic snapshots of the WM
  relations, run progress and resolver state (every N cycles or M log
  bytes);
* :mod:`repro.recovery.recover` — ``recover(log, checkpoint)`` rebuilds a
  :class:`~repro.engine.interpreter.ProductionSystem` by replaying the
  durable log prefix *through the match network*, then
  :func:`~repro.recovery.recover.resume_run` finishes the interrupted
  recognize-act loop;
* :mod:`repro.recovery.session` — :class:`DurableRun`, the engine driver
  behind ``repro run --wal`` / ``repro resume``;
* :mod:`repro.recovery.crashpoints` — fault injection: a registry of
  named crash sites that kills a run mid-flight for the
  ``repro check --crash`` equivalence campaign.
"""

from repro.recovery.crashpoints import CRASH_SITES, Crashpoints, SimulatedCrash
from repro.recovery.checkpoint import (
    CheckpointError,
    load_checkpoint,
    write_checkpoint,
)
from repro.recovery.recover import RecoveredState, recover, resume_run
from repro.recovery.session import DurableRun
from repro.recovery.wal import (
    GroupCommit,
    WalChainResult,
    WalReadResult,
    WalRecord,
    WalWriter,
    list_segments,
    read_wal,
    read_wal_chain,
)

__all__ = [
    "CRASH_SITES",
    "CheckpointError",
    "Crashpoints",
    "DurableRun",
    "GroupCommit",
    "RecoveredState",
    "SimulatedCrash",
    "WalChainResult",
    "WalReadResult",
    "WalRecord",
    "WalWriter",
    "list_segments",
    "load_checkpoint",
    "read_wal",
    "read_wal_chain",
    "recover",
    "resume_run",
    "write_checkpoint",
]
