"""Crash recovery: rebuild a production system from its log.

``recover(log, checkpoint)`` reads the durable prefix of a write-ahead
log and reconstructs the run at its last committed boundary:

1. the ``meta`` record rebuilds an identical (but empty) system —
   same program, match strategy, resolver, backend, seed and batch size;
2. a checkpoint, if one is offered and passes its consistency checks,
   restores the WM relations wholesale (exact tids and timetags) and the
   cumulative run state at its ``wal_seq``;
3. every committed batch record after that point replays *through the
   match network* (:meth:`~repro.engine.wm.WorkingMemory.restore_batch`),
   so the conflict set is rebuilt by the same maintenance process that
   built it the first time — there is no separate matcher serialization
   to drift out of sync;
4. boundary records restore the allocation marks (clock, per-relation
   tid high-water), the refraction set, program output and the
   resolver/tuner state.

Records *after* the last durable boundary are crash debris from an
uncommitted cycle; they are ignored, and
:func:`~repro.recovery.session.DurableRun.resume` physically truncates
them before appending.  Determinism makes re-executing that lost cycle
bit-identical to the run that crashed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.delta import DeltaBatch
from repro.engine.interpreter import ProductionSystem, RunResult
from repro.engine.resolution import SeededRandom
from repro.errors import RecoveryError
from repro.lang.ast import Program
from repro.lang.parser import parse_program
from repro.obs import Observability
from repro.recovery.checkpoint import (
    CheckpointError,
    _normalize,
    canonical_rete_snapshot,
    load_checkpoint,
)
from repro.recovery.session import DurableRun, program_crc
from repro.recovery.wal import (
    decode_batch,
    decode_fired,
    encode_fired,
    read_wal_chain,
)
from repro.storage.tuples import StoredTuple


@dataclass
class RecoveredState:
    """A production system restored to its last durable boundary."""

    system: ProductionSystem
    meta: dict
    wal_path: str
    #: Byte offset of the end of the last durable boundary — everything
    #: past it is crash debris a resumed writer truncates away.
    durable_offset: int
    next_seq: int
    phase: str | None
    cycle: int
    position: int
    halted: bool
    #: Decoded firing triples ``(cycle, rule_name, key)`` in order.
    fired: list = field(default_factory=list)
    extra: dict = field(default_factory=dict)
    torn: bool = False
    checkpoint_used: bool = False
    replayed_batches: int = 0
    replayed_deltas: int = 0
    #: Sequence number the active WAL file starts at (1 for an unrotated
    #: log) — a resumed writer needs it to name its next archived segment.
    active_base_seq: int = 1


def _build_system(meta: dict, obs: Observability | None) -> ProductionSystem:
    """An empty twin of the crashed run's system.

    The program's top-level ``(make ...)`` elements are stripped: they
    were inserted before the log attached and live in the log's first
    batch record, so letting the constructor insert them again would
    double them (with the wrong tids).
    """
    program = parse_program(meta["program"])
    return ProductionSystem(
        Program(
            schemas=program.schemas,
            rules=program.rules,
            initial_elements=[],
        ),
        strategy=meta["strategy"],
        resolution=meta["resolution"],
        backend=meta["backend"],
        seed=meta["seed"],
        firing=meta.get("firing", "instance"),
        batch_size=meta["batch_size"],
        compile=meta.get("compile", "auto"),
        # Logs from before the parallel-match PR carry no workers key;
        # they recover onto the serial reference loop.
        workers=meta.get("workers", 1),
        obs=obs or Observability(),
    )


class RecordApplier:
    """The replay loop of :func:`recover`, in incremental form.

    Feeds WAL records one at a time into a live system, preserving the
    exact commit-point semantics of crash recovery: batch records are
    *staged* and only replayed through the match network
    (:meth:`~repro.engine.wm.WorkingMemory.restore_batch`) when the
    boundary record covering them arrives.  Between boundaries the
    system therefore always sits at the last durable commit point —
    exactly where :func:`recover` would leave it — which is what lets a
    warm-standby follower (:mod:`repro.replica`) tail a shipped log and
    stay bit-identical to the primary at every shipped boundary.

    Call :meth:`finalize` once, after the last record, to restore the
    refraction set, program output and resolver state.
    """

    def __init__(self, system: ProductionSystem, meta: dict) -> None:
        self.system = system
        self.meta = meta
        self.phase: str | None = None
        self.cycle = 0
        self.position = 0
        self.halted = False
        self.extra: dict = {}
        self.fired_encoded: list = []
        self.output: list = []
        self.auto_batch_size = None
        self.resolver_state = None
        self.last_boundary_seq = 0
        self.replayed_batches = 0
        self.replayed_deltas = 0
        self._staged: list[dict] = []  # batch bodies awaiting a boundary
        self._finalized = False

    @classmethod
    def from_state(cls, state: "RecoveredState") -> "RecordApplier":
        """Continue applying where a recovered run left off."""
        applier = cls(state.system, state.meta)
        applier.phase = state.phase
        applier.cycle = state.cycle
        applier.position = state.position
        applier.halted = state.halted
        applier.extra = dict(state.extra)
        applier.fired_encoded = [
            encode_fired(triple) for triple in state.fired
        ]
        applier.output = [list(row) for row in state.system.output]
        applier.auto_batch_size = state.system.auto_batch_size
        applier.last_boundary_seq = state.next_seq - 1
        applier.replayed_batches = state.replayed_batches
        applier.replayed_deltas = state.replayed_deltas
        return applier

    def seed_checkpoint(
        self, ckpt: dict, checkpoint_path: str | None = None
    ) -> None:
        """Restore a checkpoint body wholesale (rows, marks, run state)."""
        rows = _checkpoint_rows(ckpt["relations"])
        if rows:
            self.system.wm.restore_batch(DeltaBatch.of_inserts(rows))
        self.system.wm.catalog.clock.advance_to(ckpt["clock"])
        self.system.wm.restore_tid_marks(ckpt["tids"])
        snapshot = ckpt.get("rete")
        if snapshot is not None and hasattr(self.system.strategy, "network"):
            rebuilt = _normalize(canonical_rete_snapshot(self.system.strategy))
            if rebuilt != snapshot:
                raise CheckpointError(
                    "Rete memories rebuilt by replay do not match the "
                    f"snapshot in {checkpoint_path!r}"
                )
        ckpt_state = ckpt["state"]
        self.phase = ckpt_state["phase"]
        self.cycle = ckpt_state["cycle"]
        self.position = ckpt_state["position"]
        self.halted = ckpt_state["halted"]
        self.extra = dict(ckpt_state.get("extra") or {})
        self.fired_encoded = list(ckpt_state["fired"])
        self.output = list(ckpt_state["output"])
        self.auto_batch_size = ckpt_state.get("auto_batch_size")
        self.resolver_state = ckpt_state.get("resolver_state")
        self.last_boundary_seq = ckpt["wal_seq"]

    @property
    def staged_records(self) -> int:
        """Batch records received but not yet covered by a boundary."""
        return len(self._staged)

    def apply(self, seq: int, kind: str, body: dict) -> bool:
        """Feed one record; returns True when a boundary was applied."""
        if kind == "batch":
            self._staged.append(body)
            return False
        if kind != "boundary":
            return False  # meta records carry no replay state
        for staged in self._staged:
            batch = decode_batch(staged)
            self.system.wm.restore_batch(batch)
            self.replayed_batches += 1
            self.replayed_deltas += len(batch)
        self._staged = []
        self.phase = body["phase"]
        self.cycle = body["cycle"]
        self.position = body["position"]
        self.halted = body["halted"]
        self.extra = dict(body.get("extra") or {})
        self.fired_encoded.extend(body["fired"])
        self.output.extend(body["output_delta"])
        self.system.wm.catalog.clock.advance_to(body["clock"])
        self.system.wm.restore_tid_marks(body["tids"])
        if body.get("auto_batch_size") is not None:
            self.auto_batch_size = body["auto_batch_size"]
        if body.get("resolver_state") is not None:
            self.resolver_state = body["resolver_state"]
        self.last_boundary_seq = seq
        return True

    def finalize(self) -> list:
        """Restore refraction/output/resolver; returns decoded firings."""
        fired = [decode_fired(entry) for entry in self.fired_encoded]
        self.system.restore_run_state(
            fired_keys={key for _, _, key in fired},
            output=self.output,
            auto_batch_size=self.auto_batch_size,
        )
        if self.resolver_state is not None and isinstance(
            self.system.resolver, SeededRandom
        ):
            self.system.resolver.setstate(self.resolver_state)
        self._finalized = True
        return fired


def _checkpoint_rows(relations: dict) -> list[StoredTuple]:
    rows = [
        StoredTuple(
            relation=name,
            tid=int(tid),
            timetag=int(timetag),
            values=tuple(values),
        )
        for name, entries in relations.items()
        for tid, timetag, values in entries
    ]
    rows.sort(key=lambda row: row.timetag)
    return rows


def recover(
    wal_path: str,
    checkpoint_path: str | None = None,
    obs: Observability | None = None,
) -> RecoveredState:
    """Rebuild the run recorded in *wal_path*; see the module docstring.

    Raises :class:`~repro.errors.WalCorruptError` for damage before the
    torn tail, :class:`~repro.recovery.checkpoint.CheckpointError` for a
    damaged or inconsistent checkpoint, and plain
    :class:`~repro.errors.RecoveryError` when the log never reached its
    first commit point (nothing durable happened — rerun from scratch).
    """
    started = time.perf_counter()
    result = read_wal_chain(wal_path)
    records = result.records
    meta = result.meta
    if meta is None:
        raise RecoveryError(
            f"{wal_path!r} has no durable meta record; "
            "the run died before its first commit point"
        )
    compacted = result.first_seq > 1
    if compacted and not checkpoint_path:
        raise RecoveryError(
            f"the log prefix of {wal_path!r} was compacted away "
            "(first surviving record has seq "
            f"{result.first_seq}); recovery requires the checkpoint "
            "that superseded it"
        )
    boundaries = [r for r in records if r.kind == "boundary"]
    if not boundaries and not compacted:
        raise RecoveryError(
            f"{wal_path!r} has no durable boundary record; "
            "the run died before its first commit point"
        )
    last_boundary_seq = boundaries[-1].seq if boundaries else 0

    ckpt = load_checkpoint(checkpoint_path) if checkpoint_path else None
    if ckpt is None and compacted:
        raise RecoveryError(
            f"the log prefix of {wal_path!r} was compacted away but "
            f"checkpoint {checkpoint_path!r} is missing or empty"
        )
    if ckpt is not None:
        if ckpt["program_crc"] != program_crc(meta["program"]):
            raise CheckpointError(
                f"checkpoint {checkpoint_path!r} does not belong to "
                f"the program recorded in {wal_path!r}"
            )
        if ckpt["wal_seq"] > last_boundary_seq:
            # Legitimate only when compaction deleted the boundary the
            # checkpoint names: the chain must then resume right after it.
            if not (compacted and result.first_seq == ckpt["wal_seq"] + 1):
                raise CheckpointError(
                    f"checkpoint {checkpoint_path!r} (wal_seq "
                    f"{ckpt['wal_seq']}) is newer than the durable log "
                    f"(last boundary seq {last_boundary_seq}); the log "
                    "was truncated or swapped — refusing to guess"
                )
        elif ckpt["wal_seq"] >= result.first_seq and ckpt[
            "wal_seq"
        ] not in {b.seq for b in boundaries}:
            raise CheckpointError(
                f"checkpoint {checkpoint_path!r} references seq "
                f"{ckpt['wal_seq']}, which is not a boundary record in "
                f"{wal_path!r}"
            )

    #: The recovery point: the last durable commit, whether it survives
    #: as a boundary record or only as the checkpoint that replaced it.
    recovery_seq = max(
        last_boundary_seq, ckpt["wal_seq"] if ckpt is not None else 0
    )
    system = _build_system(meta, obs)
    state = RecoveredState(
        system=system,
        meta=meta,
        wal_path=wal_path,
        durable_offset=result.active_offset(recovery_seq),
        next_seq=recovery_seq + 1,
        phase=None,
        cycle=0,
        position=0,
        halted=False,
        torn=result.torn,
        active_base_seq=result.active_base_seq,
    )

    applier = RecordApplier(system, meta)
    if ckpt is not None:
        applier.seed_checkpoint(ckpt, checkpoint_path)
        state.checkpoint_used = True

    start_seq = ckpt["wal_seq"] if ckpt is not None else 0
    for record in records:
        if record.seq <= start_seq or record.seq > recovery_seq:
            continue
        applier.apply(record.seq, record.kind, record.body)

    state.fired = applier.finalize()
    state.phase = applier.phase
    state.cycle = applier.cycle
    state.position = applier.position
    state.halted = applier.halted
    state.extra = dict(applier.extra)
    state.replayed_batches = applier.replayed_batches
    state.replayed_deltas = applier.replayed_deltas

    live_obs = system.obs
    if live_obs.enabled:
        metrics = live_obs.metrics
        metrics.counter("recovery.recoveries").inc()
        metrics.counter("recovery.replayed_batches").inc(
            state.replayed_batches
        )
        metrics.counter("recovery.replayed_deltas").inc(state.replayed_deltas)
        metrics.histogram("recovery.recover_us").observe(
            (time.perf_counter() - started) * 1e6
        )
    return state


def resume_run(
    state: RecoveredState,
    max_cycles: int = 10_000,
    *,
    checkpoint_path: str | None = None,
    checkpoint_every: int = 0,
    checkpoint_bytes: int = 0,
    fsync_every: int | None = None,
    crashpoints=None,
    include_rete: bool = False,
) -> RunResult:
    """Finish a recovered run's recognize-act loop, continuing its log.

    The log's dead suffix is truncated, boundaries keep appending where
    the crashed run left off, and the writer is closed when the loop
    stops.  A run that had already halted returns immediately.
    """
    if state.halted:
        return RunResult(cycles=0, halted=True, exhausted=False, fired=[])
    kwargs = {} if fsync_every is None else {"fsync_every": fsync_every}
    run = DurableRun.resume(
        state,
        crashpoints=crashpoints,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        checkpoint_bytes=checkpoint_bytes,
        include_rete=include_rete,
        **kwargs,
    )
    try:
        return run.run(max_cycles)
    finally:
        run.close()
