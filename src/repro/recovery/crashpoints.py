"""Fault injection: named crash sites threaded through the durability path.

A :class:`Crashpoints` registry is armed at one of the :data:`CRASH_SITES`
and raises :class:`SimulatedCrash` the N-th time execution reaches it.
The simulation models a process death, not an exception: once the
registry has fired, every subsequent durability operation on the same run
goes dead silently — the :class:`~repro.recovery.wal.WalWriter` drops its
buffered (never-synced) records and refuses further appends, and
checkpoint writes refuse to complete — so nothing that happens while the
exception unwinds (``finally`` blocks flushing batches, listeners firing)
can become durable after the "crash".  Recovery then sees exactly what a
killed process would have left on disk: the log up to the last completed
fsync.
"""

from __future__ import annotations

#: Every named crash site, in log-path order.  ``wal.pre_append`` /
#: ``wal.post_append`` bracket buffering one record; ``wal.pre_sync`` /
#: ``wal.post_sync`` bracket the fsync; ``commit.pre`` / ``commit.post``
#: bracket writing a boundary (commit-point) record; ``wal.rotate`` fires
#: mid-rotation, after the full segment was archived but before the new
#: active file exists (the torn-rotation window); ``checkpoint.mid``
#: fires after the checkpoint temp file is written but before the atomic
#: rename.  The ``txn.*`` sites live inside one §5.2 scheduler round:
#: ``txn.post_plan`` after the lock-planning fan-out, ``txn.post_commit``
#: after each transaction's commit step, and ``txn.pre_group_sync`` just
#: before the round's group-commit WAL barrier.
CRASH_SITES = (
    "wal.pre_append",
    "wal.post_append",
    "wal.pre_sync",
    "wal.post_sync",
    "wal.rotate",
    "commit.pre",
    "commit.post",
    "checkpoint.mid",
    "txn.post_plan",
    "txn.post_commit",
    "txn.pre_group_sync",
)


class SimulatedCrash(Exception):
    """Raised at an armed crash site; the run is considered dead."""

    def __init__(self, site: str) -> None:
        super().__init__(f"simulated crash at {site}")
        self.site = site


class Crashpoints:
    """Registry of armed crash sites, shared by one run's durability path.

    ``arm(site, after=N)`` makes the N-th hit of *site* raise.  ``hit``
    is called by the WAL writer, the checkpoint writer and the durable
    session at each named site; it is a no-op for unarmed sites, so an
    un-instrumented run pays one dict lookup per site crossing.
    """

    def __init__(self) -> None:
        self._armed: dict[str, int] = {}
        self._hits: dict[str, int] = {}
        #: The site that fired, or ``None`` while the run is alive.
        self.crashed: str | None = None

    def arm(self, site: str, after: int = 1) -> None:
        """Arm *site* to crash on its *after*-th hit (1-based)."""
        if site not in CRASH_SITES:
            raise ValueError(
                f"unknown crash site {site!r}; choose from {CRASH_SITES}"
            )
        if after < 1:
            raise ValueError("after must be >= 1")
        self._armed[site] = after

    def hit(self, site: str) -> None:
        """Record one crossing of *site*; raise when its trigger is due."""
        if self.crashed is not None:
            return
        count = self._hits.get(site, 0) + 1
        self._hits[site] = count
        due = self._armed.get(site)
        if due is not None and count >= due:
            self.crashed = site
            raise SimulatedCrash(site)

    def hits(self, site: str) -> int:
        """How many times *site* has been crossed."""
        return self._hits.get(site, 0)
