"""Job-shop scheduling — the manufacturing workload §1 motivates.

"Many future database applications, including engineering processes,
manufacturing and communications, will require some kind of rule based
reasoning."  Jobs carry ordered operations; machines have capabilities;
rules assign ready operations to idle machines, complete them, and release
the machines — a forward-chaining scheduler whose working memory could be
the factory's database.

    python examples/manufacturing.py
"""

from repro import ProductionSystem

RULES = """
(literalize Machine id kind state)
(literalize Operation job seq kind state)
(literalize Running job seq machine)
(literalize Done job seq)

; Assign a ready operation to an idle machine with the right capability.
(p assign
    (Operation ^job <J> ^seq <S> ^kind <K> ^state ready)
    (Machine ^id <M> ^kind <K> ^state idle)
    -->
    (modify 1 ^state running)
    (modify 2 ^state busy)
    (make Running ^job <J> ^seq <S> ^machine <M>))

; Complete a running operation: free the machine, record completion.
(p complete
    (Operation ^job <J> ^seq <S> ^state running)
    (Running ^job <J> ^seq <S> ^machine <M>)
    (Machine ^id <M> ^state busy)
    -->
    (remove 2)
    (modify 3 ^state idle)
    (modify 1 ^state done)
    (make Done ^job <J> ^seq <S>)
    (write |job| <J> |op| <S> |finished on| <M>))

; Release the successor operation once its predecessor is done.
(p advance
    (Operation ^job <J> ^seq <S> ^state done)
    (Operation ^job <J> ^seq {<S2> > <S>} ^state waiting)
    -->
    (modify 2 ^state ready))
"""


def main() -> None:
    system = ProductionSystem(RULES, resolution="fifo")
    # Two machines: a lathe and a mill.
    system.insert("Machine", ("L1", "lathe", "idle"))
    system.insert("Machine", ("M1", "mill", "idle"))
    # Two jobs, each lathe-then-mill; the first op of each starts ready.
    for job in ("A", "B"):
        system.insert("Operation", (job, 1, "lathe", "ready"))
        system.insert("Operation", (job, 2, "mill", "waiting"))

    result = system.run(max_cycles=100)
    assert not result.exhausted

    for line in system.output:
        print(" ", *line)

    done = sorted(t.values for t in system.wm.tuples("Done"))
    assert done == [("A", 1), ("A", 2), ("B", 1), ("B", 2)], done
    machines = {t.values[2] for t in system.wm.tuples("Machine")}
    assert machines == {"idle"}
    operations = {t.values[3] for t in system.wm.tuples("Operation")}
    assert operations == {"done"}
    print(f"\nOK: 4 operations scheduled and completed in "
          f"{result.cycles} firings; all machines idle again")


if __name__ == "__main__":
    main()
