"""Transitive closure by forward chaining — the deduction §1 motivates.

One production derives new edges from pairs of existing ones; the negated
condition element is the termination guard (no re-derivation of edges that
already exist).  The result is validated against ``networkx``'s
transitive closure, and the same run is repeated under the Rete and
matching-pattern strategies.

    python examples/graph_closure.py
"""

import networkx as nx

from repro import ProductionSystem

RULES = """
(literalize Edge from to)

(p transitive
    (Edge ^from <A> ^to <B>)
    (Edge ^from <B> ^to <C>)
    -(Edge ^from <A> ^to <C>)
    -->
    (make Edge ^from <A> ^to <C>))
"""

EDGES = [
    (1, 2), (2, 3), (3, 4),          # a chain
    (4, 5), (5, 3),                  # a cycle tail
    (6, 7),                          # a separate component
]


def closure_reference():
    graph = nx.DiGraph(EDGES)
    closed = nx.transitive_closure(graph, reflexive=False)
    return set(closed.edges())


def run_with(strategy: str) -> set:
    system = ProductionSystem(RULES, strategy=strategy)
    for source, target in EDGES:
        system.insert("Edge", (source, target))
    result = system.run(max_cycles=500)
    assert not result.exhausted, "closure did not converge"
    derived = {
        (t.values[0], t.values[1]) for t in system.wm.tuples("Edge")
    }
    return derived, result.cycles


def main() -> None:
    expected = closure_reference()
    print(f"{len(EDGES)} base edges; closure has {len(expected)} edges "
          "(networkx reference)\n")
    for strategy in ("rete", "patterns", "simplified"):
        derived, cycles = run_with(strategy)
        new = len(derived) - len(EDGES)
        print(f"  {strategy:12s} derived {new:2d} new edges "
              f"in {cycles} firings")
        assert derived == expected, (strategy, derived ^ expected)
    print("\nOK: all strategies converge to the exact transitive closure")


if __name__ == "__main__":
    main()
