"""A knowledge base that outlives the process (the paper's §1 premise).

Working memory lives in a SQLite file; the program runs for a while,
"crashes" (we simply drop the session), and a second session re-attaches
to the same file: the match network is rebuilt by replay and the run
continues exactly where it stopped.

    python examples/persistent_kb.py
"""

import os
import tempfile

from repro import ProductionSystem

RULES = """
(literalize Ticket id stage)
(literalize Done id)

(p triage (Ticket ^id <I> ^stage new)      --> (modify 1 ^stage triaged))
(p work   (Ticket ^id <I> ^stage triaged)  --> (modify 1 ^stage review))
(p close  (Ticket ^id <I> ^stage review)   --> (remove 1) (make Done ^id <I>))
"""


def stage_counts(system):
    counts = {}
    for ticket in system.wm.tuples("Ticket"):
        counts[ticket.values[1]] = counts.get(ticket.values[1], 0) + 1
    counts["done"] = len(list(system.wm.tuples("Done")))
    return counts


def main() -> None:
    handle, db = tempfile.mkstemp(suffix=".sqlite")
    os.close(handle)
    os.unlink(db)  # start from a fresh file
    try:
        print(f"session 1: opening {os.path.basename(db)}")
        first = ProductionSystem(RULES, backend="sqlite", path=db)
        for i in range(6):
            first.insert("Ticket", (i, "new"))
        # Process only part of the backlog, then "crash".
        for _ in range(7):
            first.step(1)
        mid = stage_counts(first)
        print(f"  after 7 firings: {mid}")
        first.wm.catalog.close()
        del first

        print("session 2: re-attaching to the same database")
        second = ProductionSystem(RULES, backend="sqlite", path=db)
        resumed = stage_counts(second)
        print(f"  state found on disk: {resumed}")
        assert resumed == mid, (resumed, mid)
        assert second.eligible(), "unfinished work must still match"
        second.run()
        final = stage_counts(second)
        print(f"  after finishing the run: {final}")
        assert final == {"done": 6}
        second.wm.catalog.close()
        print("\nOK: the second session resumed and completed the backlog")
    finally:
        if os.path.exists(db):
            os.unlink(db)


if __name__ == "__main__":
    main()
