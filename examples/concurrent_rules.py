"""Concurrent execution of the conflict set (§5 of the paper).

Runs the same conflict sets serially (OPS5's loop) and concurrently
(transactions under 2PL), showing the paper's two regimes: independent
rules parallelize up to the critical-path bound, while rules contending on
one relation degenerate toward serial execution.  Every history is checked
for serializability and its equivalent serial order is printed.

    python examples/concurrent_rules.py
"""

from repro import (
    ConcurrentScheduler,
    ProductionSystem,
    count_equivalent_serial_orders,
    equivalent_serial_order,
    is_serializable,
)
from repro.workload import contended_rules_program, independent_rules_program


def run_case(label: str, source: str, setup) -> None:
    print(f"== {label} ==")
    serial = ProductionSystem(source)
    setup(serial)
    serial_result = serial.run()

    concurrent = ProductionSystem(source)
    setup(concurrent)
    scheduler = ConcurrentScheduler(concurrent)
    result = scheduler.run()

    makespan = result.makespan_ticks
    steps = result.serial_steps
    print(f"  serial cycles:        {serial_result.cycles}")
    print(f"  concurrent makespan:  {makespan} ticks "
          f"({steps} total steps, speedup {steps / makespan:.2f}x)")
    assert is_serializable(result.history)
    order = equivalent_serial_order(result.history)
    print(f"  serializable:         yes, equivalent to T{order}")
    try:
        orders = count_equivalent_serial_orders(result.history)
        print(f"  equivalent orders:    {orders}")
    except ValueError:
        print("  equivalent orders:    (too many transactions to count)")
    # Both executions end in equivalent states (same relation cardinalities).
    for name in serial.wm.schemas:
        assert sorted(t.values for t in serial.wm.tuples(name)) == sorted(
            t.values for t in concurrent.wm.tuples(name)
        ), name
    print("  final WM state:       identical to the serial execution\n")


def main() -> None:
    size = 6

    def setup_independent(system):
        for i in range(size):
            system.insert(f"T{i}", {"x": i})

    run_case(
        f"{size} independent rules (best case: ∝ max per-relation updates)",
        independent_rules_program(size),
        setup_independent,
    )

    def setup_contended(system):
        system.insert("Shared", {"x": 0})
        for i in range(size):
            system.insert(f"T{i}", {"x": i})

    run_case(
        f"{size} rules contending on one relation (worst case: ~serial)",
        contended_rules_program(size),
        setup_contended,
    )


if __name__ == "__main__":
    main()
