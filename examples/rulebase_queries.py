"""Querying the rule base itself with an R-tree index (§4.2.3, [LIN87]).

The paper: "questions of the form *Give me all the rules that apply on
employees older than 55* can be easily answered using such an index ...
Notice that this is not possible in systems, such as POSTGRES, where rule
information is stored together with the actual data."

    python examples/rulebase_queries.py
"""

from repro import ConditionIndex, analyze_program, parse_program

RULES = """
(literalize Emp name age salary dno)

(p retirement-notice   (Emp ^age > 64) --> (remove 1))
(p senior-review       (Emp ^age > 55 ^salary > 900) --> (remove 1))
(p early-career-bonus  (Emp ^age < 30) --> (remove 1))
(p toy-dept-audit      (Emp ^dno 7) --> (remove 1))
(p name-check          (Emp ^name Mike) --> (remove 1))
(p pay-band            (Emp ^salary > 500 ^salary < 1500) --> (remove 1))
"""


def main() -> None:
    program = parse_program(RULES)
    analyses = analyze_program(program.rules, program.schemas)
    index = ConditionIndex(analyses, program.schemas)
    print(f"indexed {len(index)} condition elements into per-class R-trees")
    tree = index.tree("Emp")
    print(f"Emp tree: {len(tree)} boxes, height {tree.height}\n")

    queries = [
        ("rules that apply on employees older than 55", {"age": (">", 55)}),
        ("rules that apply to 25-year-olds", {"age": ("=", 25)}),
        (
            "rules touching salaries above 2000",
            {"salary": (">", 2000)},
        ),
        ("rules that apply in department 7", {"dno": ("=", 7)}),
    ]
    for description, region in queries:
        rules = sorted(index.rules_in_region("Emp", region))
        print(f"{description}:")
        for rule in rules:
            print(f"    {rule}")
        print()

    over_55 = index.rules_in_region("Emp", {"age": (">", 55)})
    assert "retirement-notice" in over_55
    assert "senior-review" in over_55
    assert "early-career-bonus" not in over_55
    assert "pay-band" in over_55  # no age restriction: applies at any age
    young = index.rules_in_region("Emp", {"age": ("=", 25)})
    assert "retirement-notice" not in young
    assert "early-career-bonus" in young
    rich = index.rules_in_region("Emp", {"salary": (">", 2000)})
    assert "pay-band" not in rich
    print("OK: region queries prune rules whose conditions cannot overlap")


if __name__ == "__main__":
    main()
