"""Algebraic simplification — the paper's Example 2, extended.

The paper's motivating rules PlusOX (0 + x -> x) and TimesOX (0 * x -> 0)
are joined by the symmetric identities so a batch of expressions simplifies
to fixpoint.  Each simplification is a ``modify``, i.e. a delete + insert
that re-enters the match network (§3.1).

    python examples/expression_simplification.py
"""

from repro import ProductionSystem

RULES = """
(literalize Goal Type Object)
(literalize Expression Name Arg1 Op Arg2)

; 0 + x -> x        (the paper's PlusOX)
(p PlusOX
    (Goal ^Type Simplify ^Object <N>)
    (Expression ^Name <N> ^Arg1 0 ^Op + ^Arg2 <X>)
    -->
    (modify 2 ^Op nil ^Arg1 nil))

; x + 0 -> x
(p PlusXO
    (Goal ^Type Simplify ^Object <N>)
    (Expression ^Name <N> ^Arg1 <X> ^Op + ^Arg2 0)
    -->
    (modify 2 ^Op nil ^Arg2 nil))

; 0 * x -> 0        (the paper's TimesOX)
(p TimesOX
    (Goal ^Type Simplify ^Object <N>)
    (Expression ^Name <N> ^Arg1 0 ^Op '*' ^Arg2 <X>)
    -->
    (modify 2 ^Op nil ^Arg2 nil))

; x * 0 -> 0
(p TimesXO
    (Goal ^Type Simplify ^Object <N>)
    (Expression ^Name <N> ^Arg1 <X> ^Op '*' ^Arg2 0)
    -->
    (modify 2 ^Op nil ^Arg1 nil))

; 1 * x -> x
(p TimesOneX
    (Goal ^Type Simplify ^Object <N>)
    (Expression ^Name <N> ^Arg1 1 ^Op '*' ^Arg2 <X>)
    -->
    (modify 2 ^Op nil ^Arg1 nil))

; x - 0 -> x
(p MinusXO
    (Goal ^Type Simplify ^Object <N>)
    (Expression ^Name <N> ^Arg1 <X> ^Op - ^Arg2 0)
    -->
    (modify 2 ^Op nil ^Arg2 nil))
"""

EXPRESSIONS = [
    ("e1", 0, "+", 42),   # -> 42
    ("e2", 0, "*", 9),    # -> 0
    ("e3", 7, "+", 0),    # -> 7
    ("e4", 1, "*", 13),   # -> 13
    ("e5", 5, "-", 0),    # -> 5
    ("e6", 3, "*", 4),    # not simplifiable by these identities
]


def residual(values):
    """Render the simplified expression (nil fields dropped)."""
    _, arg1, op, arg2 = values
    parts = [str(p) for p in (arg1, op, arg2) if p is not None]
    return " ".join(parts) if parts else "nil"


def main() -> None:
    system = ProductionSystem(RULES, strategy="patterns")
    for name, arg1, op, arg2 in EXPRESSIONS:
        system.insert("Goal", {"Type": "Simplify", "Object": name})
        system.insert(
            "Expression",
            {"Name": name, "Arg1": arg1, "Op": op, "Arg2": arg2},
        )
    result = system.run()
    print(f"fired {result.cycles} simplification steps:")
    for record in result.fired:
        print(f"  {record.instantiation.rule_name:10s} on "
              f"{record.instantiation.binding_map().get('N')}")
    print("\nexpressions after simplification:")
    final = {}
    for wme in system.wm.tuples("Expression"):
        final[wme.values[0]] = residual(wme.values)
        original = next(e for e in EXPRESSIONS if e[0] == wme.values[0])
        print(f"  {original[1]} {original[2]} {original[3]:>2}   ->   "
              f"{residual(wme.values)}")
    assert final == {
        "e1": "42", "e2": "0", "e3": "7", "e4": "13", "e5": "5",
        "e6": "3 * 4",
    }, final
    print("\nOK: all identities applied, e6 untouched")


if __name__ == "__main__":
    main()
