"""Incrementally maintained materialized views (§2.2–2.3 of the paper).

"Maintenance of materialized views also requires mechanisms to trap and
propagate updates" — here a join view over Emp/Dept is kept up to date by
the matching-pattern strategy while the base relations churn, and the
incremental contents are checked against full recomputation at every step.

    python examples/materialized_views.py
"""

import random

from repro import ViewManager, WorkingMemory
from repro.storage import RelationSchema


def main() -> None:
    wm = WorkingMemory(
        {
            "Emp": RelationSchema("Emp", ("name", "salary", "dno")),
            "Dept": RelationSchema("Dept", ("dno", "dname", "floor")),
        }
    )
    views = ViewManager(wm)

    toy_staff = views.create(
        "toy_staff",
        "(Emp ^name <N> ^dno <D>) (Dept ^dno <D> ^dname Toy)",
        select=["N", "D"],
    )
    well_paid = views.create(
        "well_paid",
        "(Emp ^name <N> ^salary {<S> > 800})",
        select=["N", "S"],
    )

    print("loading base relations...")
    wm.insert("Dept", (1, "Toy", 1))
    wm.insert("Dept", (2, "Shoe", 3))
    mike = wm.insert("Emp", ("Mike", 900, 1))
    wm.insert("Emp", ("Sam", 700, 1))
    wm.insert("Emp", ("Ann", 1200, 2))

    print(f"  toy_staff = {sorted(toy_staff.rows())}")
    print(f"  well_paid = {sorted(well_paid.rows())}")
    assert toy_staff.rows() == {("Mike", 1), ("Sam", 1)}
    assert well_paid.rows() == {("Mike", 900), ("Ann", 1200)}

    print("Mike transfers to dept 2 (delete + insert)...")
    wm.modify(mike, {"dno": 2})
    print(f"  toy_staff = {sorted(toy_staff.rows())}")
    assert toy_staff.rows() == {("Sam", 1)}

    print("random churn with per-step validation against recomputation...")
    rng = random.Random(0)
    live = list(wm.tuples("Emp"))
    for step in range(200):
        if rng.random() < 0.6 or not live:
            live.append(
                wm.insert(
                    "Emp",
                    (
                        rng.choice(["Ann", "Bob", "Cid"]),
                        rng.randint(4, 14) * 100,
                        rng.randint(1, 3),
                    ),
                )
            )
        else:
            wm.remove(live.pop(rng.randrange(len(live))))
        assert toy_staff.rows() == toy_staff.refresh_from_scratch()
        assert well_paid.rows() == well_paid.refresh_from_scratch()
    print(f"  200 updates validated; toy_staff now has {len(toy_staff)} rows")
    print(
        f"  maintenance did {toy_staff.stats.inserts} view inserts and "
        f"{toy_staff.stats.deletes} view deletes incrementally"
    )
    print("OK: incremental view == recomputed view at every step")


if __name__ == "__main__":
    main()
