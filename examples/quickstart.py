"""Quickstart: define rules, insert working-memory elements, run the cycle.

A production system is OPS5 text (literalize declarations + (p ...) rules)
handed to :class:`repro.ProductionSystem`.  Every WM change is matched
incrementally by the selected strategy — here the paper's matching-pattern
scheme (§4.2) — and ``run()`` drives the Match/Select/Act loop of Figure 2.

    python examples/quickstart.py
"""

from repro import ProductionSystem

RULES = """
(literalize Order id item qty status)
(literalize Stock item level)

; Fill an order when stock suffices: decrement stock, mark shipped.
(p ship-order
    (Order ^id <O> ^item <I> ^qty <Q> ^status pending)
    (Stock ^item <I> ^level {<L> >= <Q>})
    -->
    (modify 2 ^level (compute <L> - <Q>))
    (modify 1 ^status shipped)
    (write |shipped order| <O>))

; Flag an order we cannot fill.
(p flag-shortage
    (Order ^id <O> ^item <I> ^qty <Q> ^status pending)
    (Stock ^item <I> ^level {<L> < <Q>})
    -->
    (modify 1 ^status short)
    (write |shortage for order| <O>))
"""


def main() -> None:
    system = ProductionSystem(RULES, strategy="patterns", resolution="fifo")

    system.insert("Stock", {"item": "widget", "level": 10})
    system.insert("Stock", {"item": "gadget", "level": 1})
    system.insert("Order", {"id": 1, "item": "widget", "qty": 4, "status": "pending"})
    system.insert("Order", {"id": 2, "item": "widget", "qty": 6, "status": "pending"})
    system.insert("Order", {"id": 3, "item": "gadget", "qty": 5, "status": "pending"})
    system.insert("Order", {"id": 4, "item": "widget", "qty": 1, "status": "pending"})

    result = system.run()

    print(f"cycles run: {result.cycles}")
    for line in system.output:
        print(" ", *line)
    print("\nfinal working memory:")
    for class_name in ("Order", "Stock"):
        for wme in system.wm.tuples(class_name):
            print(" ", wme)

    statuses = sorted(
        (t.values[0], t.values[3]) for t in system.wm.tuples("Order")
    )
    assert statuses == [(1, "shipped"), (2, "shipped"), (3, "short"), (4, "short")], statuses
    print("\nOK: orders 1-2 shipped (stock drained 10->0), 3-4 short")


if __name__ == "__main__":
    main()
