"""Triggers and alerters over an employee database (§2.3 of the paper).

Reproduces the paper's two framings of the same machinery:

1. the Stonebraker "ALWAYS" trigger — *"a trigger that forces Mike's
   salary to always be equal to Sam's salary"* — expressed as a production
   whose RHS enforces the invariant whenever an update breaks it; and
2. Buneman & Clemons-style add/delete triggers and alerters, monitored by
   the match layer via :class:`repro.TriggerManager`.

    python examples/employee_triggers.py
"""

from repro import ProductionSystem, TriggerManager, WorkingMemory
from repro.storage import RelationSchema

# The paper's QUEL trigger:
#   range of E is EMP
#   replace ALWAYS EMP (salary = E.salary)
#   where EMP.name = "Mike" and E.name = "Sam"
ALWAYS_RULE = """
(literalize Emp name salary dept)

(p mike-follows-sam
    (Emp ^name Sam ^salary <S>)
    (Emp ^name Mike ^salary <> <S>)
    -->
    (modify 2 ^salary <S>)
    (write |trigger: set Mike's salary to| <S>))
"""


def always_trigger_demo() -> None:
    print("== ALWAYS trigger: Mike's salary follows Sam's ==")
    system = ProductionSystem(ALWAYS_RULE)
    system.insert("Emp", {"name": "Sam", "salary": 900, "dept": "Toy"})
    mike = system.insert("Emp", {"name": "Mike", "salary": 500, "dept": "Toy"})
    system.run()

    def mike_salary():
        return next(
            t.values[1] for t in system.wm.tuples("Emp") if t.values[0] == "Mike"
        )

    assert mike_salary() == 900
    print(f"  after initial load: Mike earns {mike_salary()}")

    # The paper's update: replace EMP (salary = 1000) where EMP.name = "Sam"
    sam = next(t for t in system.wm.tuples("Emp") if t.values[0] == "Sam")
    system.modify(sam, {"salary": 1000})
    system.run()
    assert mike_salary() == 1000
    print(f"  after Sam's raise to 1000: Mike earns {mike_salary()}")


def alerter_demo() -> None:
    print("\n== add/delete triggers and alerters ==")
    wm = WorkingMemory(
        {
            "Emp": RelationSchema("Emp", ("name", "salary", "dept")),
            "Dept": RelationSchema("Dept", ("dept", "budget")),
        }
    )
    manager = TriggerManager(wm)

    # Simple trigger (single-relation condition).
    manager.define_alerter("high-pay", "(Emp ^salary > 1000)")
    # Complex trigger (multi-relation join, Buneman & Clemons' class 2).
    manager.define_alerter(
        "overspent",
        "(Emp ^dept <D> ^salary <S>) (Dept ^dept <D> ^budget {<B> < <S>})",
    )

    wm.insert("Dept", ("Toy", 800))
    ann = wm.insert("Emp", ("Ann", 1200, "Toy"))   # fires both
    wm.insert("Emp", ("Bob", 700, "Toy"))          # fires neither
    wm.remove(ann)                                 # clears both

    for alert in manager.alerts:
        print(f"  {alert}")
    kinds = [(a.trigger, a.kind) for a in manager.alerts]
    assert kinds.count(("high-pay", "satisfied")) == 1
    assert kinds.count(("overspent", "satisfied")) == 1
    assert kinds.count(("high-pay", "violated")) == 1
    assert kinds.count(("overspent", "violated")) == 1
    print("  OK: join trigger fired and cleared exactly once each")


def main() -> None:
    always_trigger_demo()
    alerter_demo()


if __name__ == "__main__":
    main()
