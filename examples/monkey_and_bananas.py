"""Monkey-and-bananas: classic multi-step production-system planning.

Forward chaining over a small state space: the monkey walks to the chair,
pushes it under the bananas, climbs, and grabs — four rule firings whose
each ``modify`` re-enters the match network.  Uses MEA resolution (goal
element first), the strategy OPS5 programs of this style relied on.

    python examples/monkey_and_bananas.py
"""

from repro import ProductionSystem
from repro.workload import monkey_bananas_program


def main() -> None:
    system = ProductionSystem(
        monkey_bananas_program(), strategy="patterns", resolution="mea"
    )
    system.insert("Goal", {"status": "active"})
    system.insert("Monkey", {"at": "door", "on": "floor", "holding": None})
    system.insert("Object", {"name": "chair", "at": "corner"})
    system.insert("Object", {"name": "bananas", "at": "ceiling"})

    result = system.run(max_cycles=20)

    print("plan executed:")
    for record in result.fired:
        print(f"  {record.cycle}. {record.instantiation.rule_name}")
    monkey = next(iter(system.wm.tuples("Monkey")))
    goal = next(iter(system.wm.tuples("Goal")))
    print(f"\nmonkey: at={monkey.values[0]} on={monkey.values[1]} "
          f"holding={monkey.values[2]}")
    print(f"goal:   {goal.values[0]}")

    assert result.halted
    assert [r.instantiation.rule_name for r in result.fired] == [
        "go-to-chair",
        "push-chair",
        "climb-chair",
        "grab-bananas",
    ]
    assert monkey.values[2] == "bananas"
    print("\nOK: 4-step plan found and executed")


if __name__ == "__main__":
    main()
