"""Setuptools shim.

Allows ``pip install -e .`` (and ``python setup.py develop``) in offline
environments whose setuptools lacks the ``wheel`` package that PEP 660
editable builds require; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
