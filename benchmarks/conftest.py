"""Shared benchmark fixtures and helpers."""

import pytest

from repro.workload.generator import (
    WorkloadSpec,
    generate_insert_stream,
    generate_program,
)


@pytest.fixture(scope="module")
def medium_workload():
    """A mid-size synthetic workload reused across timing benchmarks."""
    spec = WorkloadSpec(rules=20, classes=5, seed=7)
    workload = generate_program(spec)
    stream = generate_insert_stream(spec, 200)
    return workload.program, stream
