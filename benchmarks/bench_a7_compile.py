"""A7 — compiled match kernels vs the interpreted AST walk.

``repro.match.compile`` lowers alpha tests and join/negation predicates
into generated code: each two-input node gets a :class:`JoinKernel`
executing a selectivity-ordered, CORGI-bounded :class:`JoinPlan` over the
columnar LEFT/RIGHT memories (hash-build over the equality value columns,
residual tests evaluated only inside matching buckets), and each alpha
predicate becomes one ``compile()``-generated test.  The interpreted AST
walk stays the bit-for-bit reference.

This bench drives the A5 churn workload (inserts and deletes) through the
Rete strategies with compilation off and on, and asserts the acceptance
properties:

* batched compiled propagation performs **at least 2x fewer
  interpreter-dispatch operations** (the ``comparisons`` counter: one per
  interpreted test evaluation, one per kernel key build or in-bucket
  residual) than the interpreted nested scan;
* compiled kernels never do *more* counted work than the interpreter,
  at any batch size;
* conflict sets are bit-identical between modes in every paired run.

Wall-clock figures are recorded by the timing benchmarks below (and in
the A7 report table) but never gated — CI runners are noisy.

Run: pytest benchmarks/bench_a7_compile.py --benchmark-only
Table: python -m repro.bench.report a7
"""

import pytest

from repro.bench.drivers import build_system, drive_stream
from repro.bench.report import report_a7
from repro.workload.generator import WorkloadSpec, generate_program, mixed_stream

SPEC = WorkloadSpec(rules=15, classes=5, seed=23)
STREAM_LENGTH = 1000
RETE_FAMILY = ("rete", "rete-shared")


@pytest.fixture(scope="module")
def workload():
    generated = generate_program(SPEC)
    events = mixed_stream(SPEC, STREAM_LENGTH, delete_fraction=0.25)
    return generated.program, events


def _drive(program, events, strategy_name, batch_size, compile_mode):
    wm, strategy = build_system(
        program, strategy_name, compile_mode=compile_mode
    )
    drive_stream(wm, events, batch_size=batch_size)
    return strategy


@pytest.mark.parametrize("compile_mode", ["off", "on"])
@pytest.mark.parametrize("strategy_name", RETE_FAMILY)
def test_match_time(benchmark, workload, strategy_name, compile_mode):
    program, events = workload
    benchmark(
        lambda: _drive(program, events, strategy_name, 64, compile_mode)
    )


class TestA7Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        _, rows = report_a7(stream_length=STREAM_LENGTH)
        return rows

    def test_compiled_at_least_halves_dispatch_ops(self, rows):
        """The acceptance bar: on the batched Rete rows the compiled
        kernels perform >= 2x fewer counted dispatch operations than the
        interpreted nested scan."""
        gated = [
            row
            for row in rows
            if row["strategy"] in RETE_FAMILY and row["batch"] > 1
        ]
        assert gated, "report_a7 produced no batched Rete rows"
        for row in gated:
            assert row["cmp_ratio"] >= 2.0, row

    def test_kernels_never_do_more_counted_work(self, rows):
        """Even tuple-at-a-time (batch=1), the fused pair test costs
        essentially no more dispatches than the interpreted walk (small
        slack: selectivity reordering can shift short-circuit points)."""
        for row in rows:
            if row["strategy"] in RETE_FAMILY:
                assert row["compiled_cmp"] <= row["interp_cmp"] * 1.05, row

    def test_conflict_sets_identical_across_modes_and_strategies(self, rows):
        # report_a7 asserts compiled == interpreted inside each pairing;
        # the published rows must also agree across strategies/batches.
        sizes = {row["conflict_size"] for row in rows}
        assert len(sizes) == 1, sizes

    def test_uncompiled_reference_rows_are_untouched(self, rows):
        """The patterns strategy never compiles: its counters must be
        byte-identical between the two runs of each pairing."""
        reference = [r for r in rows if r["strategy"] == "patterns"]
        for row in reference:
            assert row["interp_cmp"] == row["compiled_cmp"], row
