"""E7 — §4.2.3: R-trees as fast matching devices on COND relations.

Paper claims: "Building indices such as R-trees or R+-trees on COND
relations can help in speeding up this process.  Another significant
advantage of such indices is their use in answering queries on the rulebase
itself", e.g. "Give me all the rules that apply on employees older than 55."

Run: pytest benchmarks/bench_e7_rindex.py --benchmark-only
Table: python -m repro.bench.report e7
"""

import pytest

from repro.bench.report import _rules_with_selections, report_e7
from repro.engine import WorkingMemory
from repro.lang import analyze_program, parse_program
from repro.match.common import match_condition
from repro.rindex import ConditionIndex


@pytest.fixture(scope="module", params=[100, 400])
def indexed_rulebase(request):
    count = request.param
    program = parse_program(_rules_with_selections(count))
    analyses = analyze_program(program.rules, program.schemas)
    index = ConditionIndex(analyses, program.schemas)
    wm = WorkingMemory(program.schemas)
    wmes = [
        wm.insert("Emp", (i * 7 % 1000, i * 13 % 1000, i % 5))
        for i in range(100)
    ]
    return program, analyses, index, wmes


def test_rtree_point_lookup(benchmark, indexed_rulebase):
    _, _, index, wmes = indexed_rulebase

    def run():
        total = 0
        for wme in wmes:
            total += len(index.conditions_matching(wme))
        return total

    benchmark(run)


def test_linear_condition_scan(benchmark, indexed_rulebase):
    program, analyses, _, wmes = indexed_rulebase
    schema = program.schemas["Emp"]

    def run():
        total = 0
        for wme in wmes:
            for analysis in analyses.values():
                for condition in analysis.conditions:
                    if match_condition(condition, schema, wme) is not None:
                        total += 1
        return total

    benchmark(run)


def test_rulebase_region_query(benchmark, indexed_rulebase):
    """The paper's rule-base query, as a timed operation."""
    _, _, index, _ = indexed_rulebase
    benchmark(lambda: index.rules_in_region("Emp", {"age": (">", 550)}))


class TestE7Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        _, rows = report_e7(condition_counts=(50, 400), probes=150)
        return {r["conditions"]: r for r in rows}

    def test_rtree_beats_linear_scan(self, rows):
        assert rows[400]["rtree_ms"] < rows[400]["linear_ms"]

    def test_advantage_grows_with_rulebase_size(self, rows):
        assert rows[400]["speedup"] >= rows[50]["speedup"] * 0.8

    def test_index_never_misses(self, rows):
        for row in rows.values():
            assert row["rtree_hits"] >= row["exact_hits"]
