"""A4 — §4.2.3: batched (set-at-a-time) vs tuple-at-a-time propagation.

Paper claim: matching-pattern maintenance is flat and set-oriented — the
work a WM change triggers decomposes into independent groups per target
COND relation, so changes need not be fed to the match network one tuple
at a time.  This bench drives the same logical event stream through the
delta pipeline at several batch sizes, on both storage backends; batching
collapses per-row SQL round trips into ``executemany`` statements (one
per relation group, one transaction per batch) and per-tuple maintenance
calls into one ``on_delta`` per batch.

Run: pytest benchmarks/bench_a4_batching.py --benchmark-only
Table: python -m repro.bench.report a4
"""

import pytest

from repro.bench.drivers import build_system, drive_stream, inserts_as_events
from repro.bench.report import report_a4
from repro.obs import Observability
from repro.workload.generator import (
    WorkloadSpec,
    generate_insert_stream,
    generate_program,
)

SPEC = WorkloadSpec(rules=15, classes=5, seed=23)
STREAM_LENGTH = 200


@pytest.fixture(scope="module")
def workload():
    generated = generate_program(SPEC)
    events = inserts_as_events(generate_insert_stream(SPEC, STREAM_LENGTH))
    return generated.program, events


def _drive(program, events, backend, batch_size):
    wm, strategy = build_system(program, "patterns", backend=backend)
    drive_stream(wm, events, batch_size=batch_size)
    return strategy


@pytest.mark.parametrize("batch_size", [1, 16, 64])
def test_memory_backend(benchmark, workload, batch_size):
    program, events = workload
    benchmark(lambda: _drive(program, events, "memory", batch_size))


@pytest.mark.parametrize("batch_size", [1, 16, 64])
def test_sqlite_backend(benchmark, workload, batch_size):
    program, events = workload
    benchmark(lambda: _drive(program, events, "sqlite", batch_size))


class TestA4Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        _, rows = report_a4(stream_length=200)
        return rows

    def test_conflict_set_invariant_across_batch_sizes(self, rows):
        for backend in ("memory", "sqlite"):
            adds = {
                r["conflict_adds"] for r in rows if r["backend"] == backend
            }
            assert len(adds) == 1

    def test_sqlite_statements_fall_at_least_2x(self, rows):
        by_batch = {
            r["batch"]: r["sql_stmts"] for r in rows if r["backend"] == "sqlite"
        }
        largest = max(by_batch)
        assert by_batch[largest] * 2 <= by_batch[1]

    def test_batches_are_counted(self, rows):
        for row in rows:
            if row["batch"] > 1:
                assert row["batches"] > 0
            else:
                assert row["batches"] == 0


def test_storage_layer_statement_collapse(workload):
    """Pure storage view: apply_batch amortizes SQL per relation group."""
    from repro.engine.wm import WorkingMemory

    program, events = workload
    statements = {}
    for batch_size in (1, 64):
        obs = Observability(collect_metrics=True)
        wm = WorkingMemory(program.schemas, backend="sqlite", obs=obs)
        drive_stream(wm, events, batch_size=batch_size)
        statements[batch_size] = (
            obs.metrics.counter("storage.sql_statements").value
        )
    assert statements[64] * 2 <= statements[1]
