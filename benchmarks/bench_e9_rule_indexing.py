"""E9 — §2.3: Basic Locking vs Predicate Indexing ([STON86a]).

Paper claim: "Performance analysis results in [STON86a] show that it is
not possible to choose one implementation to efficiently support any
rule-based environment.  Depending on the probability of updating base
relations and the number of conditions that overlap ... the first or the
second approach becomes more efficient."

Run: pytest benchmarks/bench_e9_rule_indexing.py --benchmark-only
Table: python -m repro.bench.report e9
"""

import pytest

from repro.bench.drivers import build_system, drive_stream, inserts_as_events
from repro.bench.report import report_e9
from repro.workload.generator import (
    WorkloadSpec,
    generate_insert_stream,
    generate_program,
)

SPEC = WorkloadSpec(rules=20, classes=4, shared_condition_pool=5, seed=17)


@pytest.fixture(scope="module")
def overlapping_workload():
    workload = generate_program(SPEC)
    return workload.program, generate_insert_stream(SPEC, 200)


@pytest.mark.parametrize("strategy", ["markers", "predicate-index"])
def test_rule_indexing_throughput(benchmark, overlapping_workload, strategy):
    program, stream = overlapping_workload
    events = inserts_as_events(stream)

    def run():
        wm, _ = build_system(program, strategy)
        drive_stream(wm, events)

    benchmark(run)


class TestE9Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        _, rows = report_e9(stream_length=200)
        return rows

    def _pick(self, rows, overlap, strategy):
        for row in rows:
            if row["overlap"] == overlap and row["strategy"] == strategy:
                return row
        raise AssertionError(f"missing {overlap}/{strategy}")

    def test_both_reach_the_same_conflict_set(self, rows):
        for overlap in ("low", "high"):
            assert (
                self._pick(rows, overlap, "markers")["conflict_adds"]
                == self._pick(rows, overlap, "predicate-index")["conflict_adds"]
            )

    def test_predicate_index_stores_less(self, rows):
        """No markers on data tuples — only condition boxes."""
        for overlap in ("low", "high"):
            assert (
                self._pick(rows, overlap, "predicate-index")["aux_cells"]
                < self._pick(rows, overlap, "markers")["aux_cells"]
            )

    def test_predicate_index_searches_per_update(self, rows):
        assert self._pick(rows, "low", "predicate-index")["index_lookups"] > 0
        assert self._pick(rows, "low", "markers")["index_lookups"] == 0

    def test_same_false_drop_validation_economics(self, rows):
        """Both schemes validate candidates with full LHS checks, so the
        drop counts coincide — detection differs, validation does not."""
        for overlap in ("low", "high"):
            assert (
                self._pick(rows, overlap, "markers")["false_drops"]
                == self._pick(rows, overlap, "predicate-index")["false_drops"]
            )
