"""E6 — §3.2/§6: multiple-query-optimized (shared) Rete networks.

Paper claim: "since it is the case that multiple conditions have to be
evaluated and these conditions may share simpler conditions, such as
selections or joins, it would be advantageous to build a global compiled
plan that avoids multiple relation accesses" — the MQO-optimized network
the authors planned to study ([SELL86], §6 future work).

Run: pytest benchmarks/bench_e6_mqo.py --benchmark-only
Table: python -m repro.bench.report e6
"""

import pytest

from repro.bench.drivers import build_system, drive_stream, inserts_as_events
from repro.bench.report import report_e6
from repro.workload.generator import (
    WorkloadSpec,
    generate_insert_stream,
    generate_program,
)

OVERLAPPING = WorkloadSpec(
    rules=25, classes=4, shared_condition_pool=6, seed=5
)


@pytest.fixture(scope="module")
def overlapping_workload():
    workload = generate_program(OVERLAPPING)
    return workload.program, generate_insert_stream(OVERLAPPING, 200)


@pytest.mark.parametrize("strategy", ["rete", "rete-shared"])
def test_overlapping_rules_throughput(benchmark, overlapping_workload, strategy):
    program, stream = overlapping_workload
    events = inserts_as_events(stream)

    def run():
        wm, _ = build_system(program, strategy)
        drive_stream(wm, events)

    benchmark(run)


class TestE6Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        _, rows = report_e6(stream_length=200)
        return rows

    def _pick(self, rows, pool, strategy):
        for row in rows:
            if row["overlap_pool"] == pool and row["strategy"] == strategy:
                return row
        raise AssertionError(f"missing row {pool}/{strategy}")

    def test_sharing_reduces_node_counts(self, rows):
        naive = self._pick(rows, 6, "rete")
        shared = self._pick(rows, 6, "rete-shared")
        assert shared["alpha_memories"] < naive["alpha_memories"]
        assert shared["join_nodes"] < naive["join_nodes"]

    def test_sharing_reduces_match_work(self, rows):
        naive = self._pick(rows, 6, "rete")
        shared = self._pick(rows, 6, "rete-shared")
        assert shared["activations"] < naive["activations"]

    def test_overlap_amplifies_the_benefit(self, rows):
        def ratio(pool):
            naive = self._pick(rows, pool, "rete")
            shared = self._pick(rows, pool, "rete-shared")
            return shared["alpha_memories"] / naive["alpha_memories"]

        assert ratio(6) < ratio("none")
