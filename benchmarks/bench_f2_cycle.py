"""F2 — Figure 2: the recognize-act cycle, timed end to end.

Figure 2 is the OPS5 loop (changes → match network → conflict-set changes
→ act).  This bench runs whole programs — the paper's Example 2/Example 5
inputs and a counter — through the cycle under each strategy.

Run: pytest benchmarks/bench_f2_cycle.py --benchmark-only
"""

import pytest

from repro.bench.report import CORE_STRATEGIES
from repro.engine import ProductionSystem
from repro.workload.programs import (
    EXAMPLE2_SOURCE,
    EXAMPLE4_SOURCE,
    EXAMPLE5_INSERTS,
    counter_program,
)


@pytest.mark.parametrize("strategy", CORE_STRATEGIES)
def test_example2_simplification_cycle(benchmark, strategy):
    def run():
        system = ProductionSystem(EXAMPLE2_SOURCE, strategy=strategy)
        for i in range(20):
            system.insert("Goal", {"Type": "Simplify", "Object": f"e{i}"})
            op = "+" if i % 2 == 0 else "*"
            system.insert(
                "Expression",
                {"Name": f"e{i}", "Arg1": 0, "Op": op, "Arg2": i},
            )
        result = system.run()
        assert result.cycles == 20

    benchmark(run)


@pytest.mark.parametrize("strategy", CORE_STRATEGIES)
def test_counter_cycle(benchmark, strategy):
    def run():
        system = ProductionSystem(counter_program(30), strategy=strategy)
        system.insert("Counter", {"value": 0, "limit": 30})
        result = system.run()
        assert result.halted

    benchmark(run)


@pytest.mark.parametrize("firing", ["instance", "set"])
def test_wide_batch_firing(benchmark, firing):
    """§5.1: set-at-a-time Act vs OPS5's instance-at-a-time."""
    source = """
    (literalize Emp name paid)
    (literalize Payout name)
    (p pay-all (Emp ^name <N> ^paid no)
        --> (modify 1 ^paid yes) (make Payout ^name <N>))
    """

    def run():
        system = ProductionSystem(source, firing=firing)
        for i in range(40):
            system.insert("Emp", (f"e{i}", "no"))
        result = system.run()
        assert len(result.fired) == 40

    benchmark(run)


@pytest.mark.parametrize("strategy", ["rete", "patterns"])
def test_example5_trace(benchmark, strategy):
    """The paper's Example 5 insert sequence (T4's golden trace)."""

    def run():
        system = ProductionSystem(EXAMPLE4_SOURCE, strategy=strategy)
        for class_name, values in EXAMPLE5_INSERTS:
            system.insert(class_name, values)
        assert len(system.conflict_set) == 1

    benchmark(run)
