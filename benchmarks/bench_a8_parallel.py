"""A8 — parallel sharded match vs the serial reference loop.

``repro.parallel`` partitions each WM batch by class (hash-sharding by
``tid % shards``) so alpha evaluation and per-(join, batch-group) probes
fan out across a worker pool; a deterministic merge — shard masks
scattered back by position, chunk results concatenated in chunk order —
keeps the network bit-identical to the serial reference at any worker
count (the contract in docs/PARALLELISM.md, mirroring ALGORITHMS §11).

This bench drives the A5 churn workload (inserts and deletes) through
the Rete strategies at several pool sizes and asserts the acceptance
properties:

* the conflict set is **bit-identical** at every worker count;
* the fanned-out work itself is identical across pool sizes (same items
  enter the pool; only their distribution changes);
* the deterministic ``speedup_bound = items / critical_path`` — the
  §5.2 makespan measure over a round-robin slot assignment — scales
  with the pool: measurably above 1 at two workers, and strictly better
  again at four.

Wall-clock figures and events/sec are recorded by the timing benchmarks
below (and in the A8 report table) but never gated — on a GIL build
with few cores they understate the bound, and CI runners are noisy.

Run: pytest benchmarks/bench_a8_parallel.py --benchmark-only
Table: python -m repro.bench.report a8
"""

import pytest

from repro.bench.drivers import build_system, drive_stream
from repro.bench.report import report_a8
from repro.workload.generator import WorkloadSpec, generate_program, mixed_stream

SPEC = WorkloadSpec(rules=15, classes=5, seed=23)
STREAM_LENGTH = 1000
BATCH_SIZE = 64
RETE_FAMILY = ("rete", "rete-shared")
WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def workload():
    generated = generate_program(SPEC)
    events = mixed_stream(SPEC, STREAM_LENGTH, delete_fraction=0.25)
    return generated.program, events


def _drive(program, events, strategy_name, workers):
    wm, strategy = build_system(program, strategy_name, workers=workers)
    drive_stream(wm, events, batch_size=BATCH_SIZE)
    if strategy.pool is not None:
        strategy.pool.close()
    return strategy


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("strategy_name", RETE_FAMILY)
def test_match_time(benchmark, workload, strategy_name, workers):
    program, events = workload
    benchmark(lambda: _drive(program, events, strategy_name, workers))


class TestA8Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        _, rows = report_a8(stream_length=STREAM_LENGTH)
        return rows

    def _by_workers(self, rows, strategy_name):
        return {
            row["workers"]: row
            for row in rows
            if row["strategy"] == strategy_name
        }

    def test_conflict_sets_identical_at_every_worker_count(self, rows):
        # report_a8 asserts key-level identity inside each pairing; the
        # published sizes must also agree across strategies and pools.
        sizes = {row["conflict_size"] for row in rows}
        assert len(sizes) == 1, sizes

    def test_serial_rows_never_touch_the_pool(self, rows):
        for row in rows:
            if row["workers"] == 1:
                assert row["fanouts"] == 0, row
                assert row["speedup_bound"] == 1.0, row

    def test_same_work_enters_the_pool_at_every_size(self, rows):
        """Pool size changes the distribution of fanned work, never the
        work itself: the same fan-outs with the same item totals."""
        for strategy_name in RETE_FAMILY:
            by_workers = self._by_workers(rows, strategy_name)
            assert by_workers[2]["fanouts"] == by_workers[4]["fanouts"] > 0
            assert (
                by_workers[2]["fanned_items"]
                == by_workers[4]["fanned_items"]
                > 0
            )

    def test_speedup_bound_scales_with_workers(self, rows):
        """The acceptance bar: the deterministic makespan bound shows a
        worker-scaling win — measurably parallel at two workers, and a
        strictly shorter critical path again at four."""
        for strategy_name in RETE_FAMILY:
            by_workers = self._by_workers(rows, strategy_name)
            assert by_workers[2]["speedup_bound"] >= 1.5, by_workers[2]
            assert by_workers[4]["speedup_bound"] >= 3.0, by_workers[4]
            assert (
                by_workers[4]["critical_path"]
                < by_workers[2]["critical_path"]
            ), (by_workers[2], by_workers[4])
