"""E2 — §4.2.3 "Space": storage footprint of each strategy.

Paper claims: the Rete network "is an inherently redundant storage
structure since it stores a token for each WM element satisfying a rule
condition"; the simplified scheme stores "no intermediate results"; the
matching-pattern scheme "consumes a lot of space for storing matching
patterns ... a trade-off between matching time and space"; POSTGRES
markers are "clearly lower ... as rule identifiers require much less
space compared to the full data tuples".

Run: pytest benchmarks/bench_e2_space.py --benchmark-only
Table: python -m repro.bench.report e2
"""

import pytest

from repro.bench.drivers import (
    build_system,
    drive_stream,
    inserts_as_events,
)
from repro.bench.report import CORE_STRATEGIES, report_e2


@pytest.mark.parametrize("strategy", CORE_STRATEGIES)
def test_space_report_cost(benchmark, medium_workload, strategy):
    """Time producing the space report on a loaded strategy (cheap)."""
    program, stream = medium_workload
    wm, attached = build_system(program, strategy)
    drive_stream(wm, inserts_as_events(stream))
    benchmark(attached.space_report)


class TestE2Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        _, rows = report_e2(stream_length=250)
        return {r["strategy"]: r for r in rows}

    def test_rete_stores_redundant_tokens(self, rows):
        assert rows["rete"]["stored_tokens"] > 0
        assert rows["rete"]["estimated_cells"] > rows["simplified"][
            "estimated_cells"
        ]

    def test_simplified_stores_no_intermediate_results(self, rows):
        assert rows["simplified"]["stored_tokens"] == 0
        assert rows["simplified"]["stored_patterns"] == 0

    def test_patterns_trade_space_for_time(self, rows):
        assert rows["patterns"]["stored_patterns"] > 0
        assert (
            rows["patterns"]["estimated_cells"]
            > rows["simplified"]["estimated_cells"]
        )

    def test_marker_space_is_cheapest_aux_per_entry(self, rows):
        # One cell per marker entry: far below Rete's token cells.
        assert rows["markers"]["estimated_cells"] == rows["markers"][
            "marker_entries"
        ]
        assert (
            rows["markers"]["estimated_cells"]
            < rows["rete"]["estimated_cells"]
        )

    def test_sharing_reduces_rete_tokens(self, rows):
        assert (
            rows["rete-shared"]["stored_tokens"]
            <= rows["rete"]["stored_tokens"]
        )
