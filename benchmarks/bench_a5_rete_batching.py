"""A5 — token-batched Rete propagation (§3.2 × §4.2.3).

The Rete family consumes multi-element delta batches as per-class token
sets: alpha tests filter each set in bulk and every two-input node probes
its opposing LEFT/RIGHT memory **once per (node, batch group)** instead of
once per tuple.  This bench drives the same churn stream (inserts and
deletes) through the Rete strategies and, for reference, the
matching-pattern strategy at several batch sizes, and asserts the two
properties the batched path promises:

* at most one opposing-memory probe per (join node, input side, batch
  group) — verified from the ``rete.batch_join`` span stream;
* conflict sets bit-identical to ``batch_size=1`` across *all* registered
  strategies.

Run: pytest benchmarks/bench_a5_rete_batching.py --benchmark-only
Table: python -m repro.bench.report a5
"""

from collections import Counter

import pytest

from repro.bench.drivers import build_system, drive_stream
from repro.bench.report import report_a5
from repro.match import STRATEGIES
from repro.obs import Observability, RingBufferSink
from repro.workload.generator import WorkloadSpec, generate_program, mixed_stream

SPEC = WorkloadSpec(rules=15, classes=5, seed=23)
STREAM_LENGTH = 200
RETE_FAMILY = ("rete", "rete-shared", "rete-dbms")


@pytest.fixture(scope="module")
def workload():
    generated = generate_program(SPEC)
    events = mixed_stream(SPEC, STREAM_LENGTH, delete_fraction=0.25)
    return generated.program, events


def _drive(program, events, strategy_name, batch_size, obs=None):
    wm, strategy = build_system(program, strategy_name, obs=obs)
    drive_stream(wm, events, batch_size=batch_size)
    return strategy


@pytest.mark.parametrize("strategy_name", ["rete", "patterns"])
@pytest.mark.parametrize("batch_size", [1, 16, 64])
def test_propagation(benchmark, workload, strategy_name, batch_size):
    program, events = workload
    benchmark(lambda: _drive(program, events, strategy_name, batch_size))


class TestA5Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        _, rows = report_a5(stream_length=200)
        return rows

    def test_conflict_size_invariant_across_batch_sizes(self, rows):
        by_strategy = {}
        for row in rows:
            by_strategy.setdefault(row["strategy"], set()).add(
                row["conflict_size"]
            )
        for strategy, sizes in by_strategy.items():
            assert len(sizes) == 1, strategy

    def test_rete_probes_only_when_batched(self, rows):
        for row in rows:
            if row["strategy"] not in RETE_FAMILY:
                assert row["join_probes"] == 0
            elif row["batch"] == 1:
                assert row["join_probes"] == 0
            else:
                assert row["join_probes"] > 0

    def test_batched_rete_does_less_node_work(self, rows):
        """Token sets amortize activations: bigger batches, fewer node
        activations for every Rete flavour."""
        for strategy in RETE_FAMILY:
            by_batch = {
                r["batch"]: r["activations"]
                for r in rows
                if r["strategy"] == strategy
            }
            largest = max(by_batch)
            assert by_batch[largest] < by_batch[1], strategy


@pytest.mark.parametrize("strategy_name", RETE_FAMILY)
def test_one_probe_per_node_and_group(workload, strategy_name):
    """The acceptance property: within one batch, each two-input node
    probes each opposing memory at most once per batch group."""
    program, events = workload
    sink = RingBufferSink(capacity=200_000)
    obs = Observability(sinks=[sink])
    _drive(program, events, strategy_name, batch_size=64, obs=obs)
    probes = [
        record
        for record in sink.records()
        if record.get("name") == "rete.batch_join"
    ]
    assert probes, "batched propagation emitted no rete.batch_join spans"
    per_group = Counter(
        (
            record["attrs"]["seq"],
            record["attrs"]["node"],
            record["attrs"]["input"],
            record["attrs"]["group"],
        )
        for record in probes
    )
    duplicates = {key: n for key, n in per_group.items() if n > 1}
    assert not duplicates, duplicates


def test_conflict_sets_bit_identical_across_all_strategies(workload):
    """Every registered strategy, batched vs tuple-at-a-time: the final
    conflict sets are bit-identical."""
    program, events = workload
    for strategy_name in sorted(STRATEGIES):
        reference = _drive(program, events, strategy_name, batch_size=1)
        for batch_size in (8, 64):
            batched = _drive(program, events, strategy_name, batch_size)
            assert (
                batched.conflict_set_keys() == reference.conflict_set_keys()
            ), f"{strategy_name} diverged at batch={batch_size}"
