"""E1 — §4.2.3 "Time": match cost across the indexing strategies.

Paper claims: "Matching is very fast with our approach because only a
single search over a COND relation is necessary"; the simplified scheme
"may be slower in some cases since re-computation of joins is necessary
whenever a change is made"; Rete pays hierarchical propagation on every
token either way.

Run: pytest benchmarks/bench_e1_match_time.py --benchmark-only
Table: python -m repro.bench.report e1
"""

import pytest

from repro.bench.drivers import (
    build_system,
    drive_stream,
    inserts_as_events,
)
from repro.bench.report import CORE_STRATEGIES, report_e1


@pytest.mark.parametrize("strategy", CORE_STRATEGIES)
def test_insert_stream_throughput(benchmark, medium_workload, strategy):
    """Time a 200-insert stream through each strategy."""
    program, stream = medium_workload
    events = inserts_as_events(stream)

    def run():
        wm, _strategy = build_system(program, strategy)
        drive_stream(wm, events)

    benchmark(run)


class TestE1Shape:
    def test_simplified_recomputes_joins_others_do_not(self):
        _, rows = report_e1(rule_counts=(10,), stream_length=150)
        by_name = {r["strategy"]: r for r in rows}
        assert by_name["simplified"]["joins_computed"] > 0
        assert by_name["rete"]["joins_computed"] == 0

    def test_pattern_matching_uses_cond_searches(self):
        _, rows = report_e1(rule_counts=(10,), stream_length=150)
        by_name = {r["strategy"]: r for r in rows}
        # One COND search per insert event (plus none for Rete).
        assert by_name["patterns"]["cond_searches"] >= 150
        assert by_name["rete"]["cond_searches"] == 0

    def test_all_strategies_processed_all_events(self):
        _, rows = report_e1(rule_counts=(10,), stream_length=100)
        assert {r["events"] for r in rows} == {100}
