"""A1–A3 — ablations of the design choices DESIGN.md calls out.

* A1: parallel maintenance (§4.2.3 "our scheme can be fully parallelized")
  — serial vs simulated-parallel maintenance operation counts.
* A2: pattern compaction (§4.2.3 "compacting them ... is crucial in
  applications with limited space") — space before/after, correctness
  preserved.
* A3: R-tree condition routing in the simplified strategy (§4.1.2) —
  pruning effect as selection-heavy rule bases grow.

Run: pytest benchmarks/bench_a1_ablations.py --benchmark-only
"""

import random

import pytest

from repro.engine import WorkingMemory
from repro.instrument import Counters
from repro.lang import analyze_program, parse_program
from repro.match.patterns import MatchingPatternsStrategy
from repro.match.query import IndexedSimplifiedStrategy, SimplifiedStrategy
from repro.workload.generator import (
    WorkloadSpec,
    generate_insert_stream,
    generate_program,
)

FANOUT_SPEC = WorkloadSpec(
    rules=12, classes=5, min_conditions=3, max_conditions=3, seed=21
)


def _patterns_system(spec=FANOUT_SPEC):
    workload = generate_program(spec)
    analyses = analyze_program(
        workload.program.rules, workload.program.schemas
    )
    wm = WorkingMemory(workload.program.schemas)
    strategy = MatchingPatternsStrategy(wm, analyses, counters=Counters())
    return wm, strategy


class TestA1ParallelMaintenance:
    def test_fanout_rules_parallelize_maintenance(self):
        wm, strategy = _patterns_system()
        for class_name, values in generate_insert_stream(FANOUT_SPEC, 200):
            wm.insert(class_name, values)
        estimate = strategy.parallel_speedup_estimate()
        assert estimate > 1.0
        assert (
            strategy.maintenance_serial_ops
            >= strategy.maintenance_parallel_ops
        )

    def test_wider_rules_parallelize_more(self):
        def estimate_for(conditions):
            spec = WorkloadSpec(
                rules=12,
                classes=6,
                min_conditions=conditions,
                max_conditions=conditions,
                seed=21,
            )
            wm, strategy = _patterns_system(spec)
            for class_name, values in generate_insert_stream(spec, 150):
                wm.insert(class_name, values)
            return strategy.parallel_speedup_estimate()

        assert estimate_for(4) > estimate_for(1)


def test_a1_maintenance_throughput(benchmark):
    stream = generate_insert_stream(FANOUT_SPEC, 60)

    def run():
        wm, _strategy = _patterns_system()
        for class_name, values in stream:
            wm.insert(class_name, values)

    benchmark(run)


class TestA2Compaction:
    def _loaded_system(self):
        wm, strategy = _patterns_system()
        for class_name, values in generate_insert_stream(FANOUT_SPEC, 250):
            wm.insert(class_name, values)
        return wm, strategy

    def test_folding_compaction_reclaims_space(self):
        _, strategy = self._loaded_system()
        before = strategy.space_report().stored_patterns
        removed = strategy.compact(max_per_condition=2)
        after = strategy.space_report().stored_patterns
        assert removed > 0
        assert after == before - removed
        # Every condition group is now at (or under) the cap.
        for store in strategy.stores.values():
            for _key, group in store.groups():
                assert len(group) <= 2

    def test_compaction_preserves_matching(self):
        wm, strategy = self._loaded_system()
        strategy.compact(max_per_condition=2)
        # Continue the stream; a fresh reference strategy must agree.
        rng = random.Random(1)
        extra = generate_insert_stream(FANOUT_SPEC, 50, seed=rng.randint(0, 9))
        for class_name, values in extra:
            wm.insert(class_name, values)
        workload = generate_program(FANOUT_SPEC)
        analyses = analyze_program(
            workload.program.rules, workload.program.schemas
        )
        reference = MatchingPatternsStrategy(wm, analyses, counters=Counters())
        assert strategy.conflict_set_keys() == reference.conflict_set_keys()


def test_a2_compaction_cost(benchmark):
    wm, strategy = _patterns_system()
    for class_name, values in generate_insert_stream(FANOUT_SPEC, 250):
        wm.insert(class_name, values)
    benchmark(lambda: strategy.compact(max_per_condition=4))


class TestA4DeadlockPolicies:
    """Detection vs prevention on a deadlock-prone workload."""

    def _run(self, policy):
        from repro.engine import ProductionSystem
        from repro.txn import ConcurrentScheduler, is_serializable

        source = """
        (literalize A x)
        (literalize B x)
        (p delA (A ^x <V>) (B ^x <V>) --> (remove 1))
        (p delB (A ^x <V>) (B ^x <V>) --> (remove 2))
        """
        system = ProductionSystem(source)
        for i in range(4):
            system.insert("A", {"x": i})
            system.insert("B", {"x": i})
        result = ConcurrentScheduler(system, policy=policy).run()
        assert is_serializable(result.history)
        return result

    def test_all_policies_complete_the_workload(self):
        for policy in ("detect", "wound-wait", "wait-die"):
            result = self._run(policy)
            # one of each (delA, delB) pair commits per x value
            assert result.committed == 4

    def test_prevention_avoids_waits_for_cycles(self):
        # Prevention policies abort eagerly; detection lets the cycle form
        # first.  All terminate, shapes may differ in abort counts.
        detect = self._run("detect")
        wound = self._run("wound-wait")
        assert sum(r.deadlock_aborts for r in detect.rounds) >= 1
        assert wound.committed == detect.committed


@pytest.mark.parametrize("policy", ["detect", "wound-wait", "wait-die"])
def test_a4_policy_throughput(benchmark, policy):
    from repro.engine import ProductionSystem
    from repro.txn import ConcurrentScheduler
    from repro.workload import contended_rules_program

    def run():
        system = ProductionSystem(contended_rules_program(6))
        system.insert("Shared", {"x": 0})
        for i in range(6):
            system.insert(f"T{i}", {"x": i})
        ConcurrentScheduler(system, policy=policy).run()

    benchmark(run)


SELECTION_HEAVY = "\n".join(
    ["(literalize Emp age salary dno)"]
    + [
        f"(p band{i} (Emp ^age > {i * 5} ^age < {i * 5 + 12}) --> (remove 1))"
        for i in range(40)
    ]
)


class TestA3ConditionRouting:
    def test_index_reduces_comparisons(self):
        program = parse_program(SELECTION_HEAVY)
        analyses = analyze_program(program.rules, program.schemas)
        wm = WorkingMemory(program.schemas)
        plain = SimplifiedStrategy(wm, analyses, counters=Counters())
        indexed = IndexedSimplifiedStrategy(wm, analyses, counters=Counters())
        for i in range(150):
            wm.insert("Emp", (i % 220, 100, 1))
        assert indexed.counters.comparisons < plain.counters.comparisons
        assert plain.conflict_set_keys() == indexed.conflict_set_keys()


@pytest.mark.parametrize("strategy_name", ["simplified", "simplified-indexed"])
def test_a3_selection_heavy_throughput(benchmark, strategy_name):
    from repro.match import STRATEGIES

    program = parse_program(SELECTION_HEAVY)
    analyses = analyze_program(program.rules, program.schemas)

    def run():
        wm = WorkingMemory(program.schemas)
        STRATEGIES[strategy_name](wm, analyses, counters=Counters())
        for i in range(100):
            wm.insert("Emp", (i % 220, 100, 1))

    benchmark(run)
