"""E8 — §3.2: persisting Rete memories in a DBMS.

Paper claim: the straightforward DBMS implementation of the Rete network
"offers several advantages, such as simplicity and re-usability of existing
technology" — the memories become LEFT/RIGHT relations, at an I/O cost.
This bench compares the plain in-memory Rete against the DBMS-Rete with
its memory relations stored in the in-memory engine and in SQLite.

Run: pytest benchmarks/bench_e8_backends.py --benchmark-only
Table: python -m repro.bench.report e8
"""

import pytest

from repro.bench.report import report_e8
from repro.engine import WorkingMemory
from repro.instrument import Counters
from repro.lang import analyze_program
from repro.match.rete import DbmsReteStrategy, ReteStrategy
from repro.workload.generator import (
    WorkloadSpec,
    generate_insert_stream,
    generate_program,
)

SPEC = WorkloadSpec(rules=10, classes=4, seed=13)


@pytest.fixture(scope="module")
def workload():
    generated = generate_program(SPEC)
    analyses = analyze_program(
        generated.program.rules, generated.program.schemas
    )
    return generated.program, analyses, generate_insert_stream(SPEC, 120)


def _drive(program, analyses, stream, cls, **kwargs):
    wm = WorkingMemory(program.schemas)
    cls(wm, analyses, counters=Counters(), **kwargs)
    for class_name, values in stream:
        wm.insert(class_name, values)


def test_plain_rete(benchmark, workload):
    program, analyses, stream = workload
    benchmark(lambda: _drive(program, analyses, stream, ReteStrategy))


def test_dbms_rete_memory_backend(benchmark, workload):
    program, analyses, stream = workload
    benchmark(
        lambda: _drive(
            program, analyses, stream, DbmsReteStrategy,
            memory_backend="memory",
        )
    )


def test_dbms_rete_sqlite_backend(benchmark, workload):
    program, analyses, stream = workload
    benchmark(
        lambda: _drive(
            program, analyses, stream, DbmsReteStrategy,
            memory_backend="sqlite",
        )
    )


class TestE8Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        _, rows = report_e8(stream_length=120)
        return {r["configuration"]: r for r in rows}

    def test_all_backends_reach_same_matches(self, rows):
        adds = {r["conflict_adds"] for r in rows.values()}
        assert len(adds) == 1

    def test_persistence_writes_memory_relations(self, rows):
        assert rows["rete (no persistence)"]["tuple_writes"] == 0
        assert rows["rete-dbms memory"]["tuple_writes"] > 0
        assert (
            rows["rete-dbms sqlite"]["tuple_writes"]
            == rows["rete-dbms memory"]["tuple_writes"]
        )

    def test_persistence_costs_time(self, rows):
        assert (
            rows["rete-dbms sqlite"]["us/event"]
            >= rows["rete (no persistence)"]["us/event"]
        )
