"""A6 — the durability tax: WAL overhead and crash-recovery time (§5).

The paper's §5 places commit points after conflict-set maintenance; this
repo makes them durable with a write-ahead log and periodic checkpoints
(``docs/RECOVERY.md``).  This bench measures what that costs and what it
buys:

* WAL overhead — the same counter program WAL-off vs WAL-attached at
  fsync cadences 1 and 64; attachment never changes the run's outcome.
* Recovery time — a finished log recovered cold by full replay vs
  through the checkpoint fast path, which replays only the log tail.
* ``recovery.*`` metrics (fsyncs, wal_bytes, replayed_batches) populate
  the table in ``python -m repro.bench.report a6``.

Run: pytest benchmarks/bench_a6_recovery.py --benchmark-only
Table: python -m repro.bench.report a6
"""

import pytest

from repro.bench.report import report_a6
from repro.engine import ProductionSystem
from repro.obs import Observability
from repro.recovery import DurableRun, recover
from repro.workload.programs import counter_program

CYCLES = 80
SOURCE = counter_program(CYCLES)
CONFIG = {
    "strategy": "rete",
    "resolution": "lex",
    "backend": "memory",
    "seed": 0,
    "batch_size": 1,
    "firing": "instance",
}


def build(obs=None):
    system = ProductionSystem(SOURCE, obs=obs)
    system.insert("Counter", {"value": 0, "limit": CYCLES})
    return system


def durable_run(wal, fsync_every=64, checkpoint_every=0, obs=None):
    system = build(obs=obs)
    run = DurableRun.start(
        system,
        wal,
        SOURCE,
        CONFIG,
        fsync_every=fsync_every,
        checkpoint_path=wal + ".ckpt" if checkpoint_every else None,
        checkpoint_every=checkpoint_every,
    )
    result = run.run()
    run.close()
    return system, result


def test_cycle_wal_off(benchmark):
    def run():
        system = build()
        assert system.run().halted

    benchmark(run)


@pytest.mark.parametrize("fsync_every", [1, 64])
def test_cycle_wal_attached(benchmark, tmp_path, fsync_every):
    counter = iter(range(1_000_000))

    def run():
        wal = str(tmp_path / f"bench-{next(counter)}.wal")
        _, result = durable_run(wal, fsync_every=fsync_every)
        assert result.halted

    benchmark(run)


@pytest.fixture(scope="module")
def finished_log(tmp_path_factory):
    directory = tmp_path_factory.mktemp("a6")
    wal = str(directory / "run.wal")
    durable_run(wal, checkpoint_every=20)
    return wal


def test_recover_full_replay(benchmark, finished_log):
    state = benchmark(lambda: recover(finished_log))
    assert not state.checkpoint_used


def test_recover_checkpoint_fast_path(benchmark, finished_log):
    state = benchmark(
        lambda: recover(finished_log, finished_log + ".ckpt")
    )
    assert state.checkpoint_used


class TestA6Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        _, rows = report_a6(cycles=60, checkpoint_every=15)
        return {row["mode"]: row for row in rows}

    def test_wal_attachment_preserves_the_outcome(self, rows):
        sizes = {row["wm"] for row in rows.values()}
        assert len(sizes) == 1

    def test_fsync_cadence_drives_the_tax(self, rows):
        assert rows["wal fsync=1"]["fsyncs"] > rows["wal fsync=64"]["fsyncs"]
        assert rows["wal off"]["fsyncs"] == 0

    def test_checkpoint_shortens_replay(self, rows):
        (ckpt_mode,) = [m for m in rows if m.startswith("wal+ckpt")]
        assert rows[ckpt_mode]["replayed"] < rows["wal fsync=64"]["replayed"]

    def test_wal_bytes_are_accounted(self, rows):
        assert rows["wal fsync=64"]["wal_kb"] > 0


def test_wal_attachment_is_bit_identical(tmp_path):
    """The WAL-off acceptance bar: attaching a log changes nothing about
    the run — same output, same WM rows, same halt."""
    plain = build()
    plain_result = plain.run()
    durable, durable_result = durable_run(str(tmp_path / "run.wal"))
    assert durable_result.halted and plain_result.halted
    assert list(durable.output) == list(plain.output)
    for name in plain.wm.schemas:
        assert [
            (w.tid, w.timetag, w.values) for w in durable.wm.tuples(name)
        ] == [(w.tid, w.timetag, w.values) for w in plain.wm.tuples(name)]


def test_recovery_metrics_populate(tmp_path):
    wal = str(tmp_path / "run.wal")
    obs = Observability(collect_metrics=True)
    durable_run(wal, fsync_every=1, obs=obs)
    counters = obs.metrics.snapshot()["counters"]
    assert counters["recovery.fsyncs"] > 0
    assert counters["recovery.wal_records"] > 0
    assert counters["recovery.wal_bytes"] > 0

    cold = Observability(collect_metrics=True)
    recover(wal, obs=cold)
    recovered = cold.metrics.snapshot()["counters"]
    assert recovered["recovery.recoveries"] == 1
    assert recovered["recovery.replayed_batches"] > 0
