"""E3 — §3.2: false drops of tuple-marker rule indexing.

Paper claim: with POSTGRES-style markers "a new insertion to that relation
will trigger both of these rules, even though it should not be fired
because there are no matching Dept tuples.  POSTGRES will of course check
the conditions of the rules before the corresponding actions are
performed, but that will incur unnecessarily high computation cost."

Run: pytest benchmarks/bench_e3_false_drops.py --benchmark-only
Table: python -m repro.bench.report e3
"""

import pytest

from repro.bench.drivers import (
    build_system,
    drive_stream,
    inserts_as_events,
)
from repro.bench.report import report_e3
from repro.workload.generator import (
    WorkloadSpec,
    generate_insert_stream,
    generate_program,
)

SPEC = WorkloadSpec(
    rules=15, classes=6, min_conditions=2, max_conditions=3, domain=12, seed=3
)


@pytest.fixture(scope="module")
def sparse_workload():
    workload = generate_program(SPEC)
    return workload.program, generate_insert_stream(SPEC, 200)


@pytest.mark.parametrize("strategy", ["rete", "patterns", "markers"])
def test_detection_cost(benchmark, sparse_workload, strategy):
    """Time the stream whose completions are sparse (drop-heavy)."""
    program, stream = sparse_workload
    events = inserts_as_events(stream)

    def run():
        wm, _ = build_system(program, strategy)
        drive_stream(wm, events)

    benchmark(run)


class TestE3Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        _, rows = report_e3(stream_length=250)
        return {r["strategy"]: r for r in rows}

    def test_markers_suffer_false_drops(self, rows):
        assert rows["markers"]["false_drops"] > 0

    def test_rete_never_false_drops(self, rows):
        assert rows["rete"]["false_drops"] == 0

    def test_patterns_drop_less_than_markers(self, rows):
        assert rows["patterns"]["false_drops"] < rows["markers"]["false_drops"]

    def test_all_reach_the_same_conflict_set(self, rows):
        adds = {r["conflict_adds"] for r in rows.values()}
        assert len(adds) == 1

    def test_marker_space_cheapest(self, rows):
        assert rows["markers"]["aux_cells"] < rows["rete"]["aux_cells"]
