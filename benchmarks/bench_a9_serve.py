"""A9 — multi-tenant serving: throughput, tail latency, crash recovery.

``repro serve`` hosts many tenant sessions in one engine process
(docs/SERVING.md): one reader coroutine per connection, one engine task
draining tenants in sorted order, one group-commit fsync barrier per
round, acks released only after the flush.  This bench drives the
k8s-auto-fix workload (``repro.workload.k8s``) through an in-process
server over real TCP and asserts the serving acceptance properties:

* **exactly-once across kill -9**: the report abandons the server's
  logs without the final sync or checkpoint and recovers the data
  directory cold; every tenant's ``applied_seq`` must equal the last
  acked client seq;
* **every event consumed**: the pack routes each event to exactly one
  rule, so a quiescent (and a recovered) engine has an empty event
  relation;
* **tenant isolation on a shared pack**: both tenants run the same
  program object yet reach different fixed points from their seeds;
* **nothing shed at the nominal rate**: one request in flight per
  tenant never exceeds the defer threshold, so ``shed == 0``.

Wall-clock figures (events/sec, p50/p99 latency, recovery time) are
recorded in the A9 report table but never gated — CI runners are noisy.

Run: pytest benchmarks/bench_a9_serve.py --benchmark-only
Table: python -m repro.bench.report a9
"""

import pytest

from repro.bench.report import report_a9
from repro.workload.k8s import k8s_setup

EVENTS = 120
TENANTS = 2


@pytest.fixture(scope="module")
def rows():
    _, produced = report_a9(events_per_tenant=EVENTS, tenants=TENANTS)
    return produced


def test_serve_stream_time(benchmark):
    # One full serve lifecycle per iteration: start, attach, stream,
    # crash, recover.  Expensive, so the benchmark rounds stay small.
    benchmark.pedantic(
        lambda: report_a9(events_per_tenant=40, tenants=TENANTS),
        rounds=3,
        iterations=1,
    )


class TestA9Shape:
    def test_one_row_per_tenant(self, rows):
        assert [row["tenant"] for row in rows] == [
            f"tenant-{i}" for i in range(TENANTS)
        ]

    def test_exactly_once_survives_the_crash(self, rows):
        """Recovered ``applied_seq`` equals the full acked stream —
        inventory plus every event — for every tenant."""
        expected = len(k8s_setup()) + EVENTS
        for row in rows:
            assert row["applied_seq"] == expected, row

    def test_every_event_consumed(self, rows):
        for row in rows:
            assert row["events_left"] == 0, row

    def test_nothing_shed_at_nominal_rate(self, rows):
        for row in rows:
            assert row["shed"] == 0, row

    def test_tenants_diverge_on_a_shared_pack(self, rows):
        """Different event seeds must produce different fixed points —
        the cheap smoke that tenant state never bleeds across."""
        fingerprints = {
            (row["remediations"], row["tickets"], row["wm"]) for row in rows
        }
        assert len(fingerprints) == TENANTS, rows

    def test_remediations_and_tickets_produced(self, rows):
        for row in rows:
            assert row["remediations"] > 0, row
            assert row["tickets"] > 0, row
