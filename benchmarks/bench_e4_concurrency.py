"""E4 — §5: serial vs concurrent execution of the conflict set.

Paper claims (§5.2): "In the best case, neglecting locking overhead, this
will be proportional to the maximum number of updates to any WM relation or
COND relation.  In the worst case, this will reduce to the time taken for a
serial execution."  The second measure is "the number of serializable
schedules equivalent to a single serial schedule".

Run: pytest benchmarks/bench_e4_concurrency.py --benchmark-only
Table: python -m repro.bench.report e4
"""

import pytest

from repro.bench.report import report_e4
from repro.engine import ProductionSystem
from repro.txn import ConcurrentScheduler
from repro.workload.programs import (
    contended_rules_program,
    independent_rules_program,
)

SIZES = (4, 8)


def _independent_system(size):
    system = ProductionSystem(independent_rules_program(size))
    for i in range(size):
        system.insert(f"T{i}", {"x": i})
    return system


def _contended_system(size):
    system = ProductionSystem(contended_rules_program(size))
    system.insert("Shared", {"x": 0})
    for i in range(size):
        system.insert(f"T{i}", {"x": i})
    return system


@pytest.mark.parametrize("size", SIZES)
def test_concurrent_independent(benchmark, size):
    benchmark(lambda: ConcurrentScheduler(_independent_system(size)).run())


@pytest.mark.parametrize("size", SIZES)
def test_concurrent_contended(benchmark, size):
    benchmark(lambda: ConcurrentScheduler(_contended_system(size)).run())


@pytest.mark.parametrize("size", SIZES)
def test_serial_baseline(benchmark, size):
    """OPS5's serial Select/Act loop on the same independent workload."""

    def run():
        system = _independent_system(size)
        system.run()

    benchmark(run)


class TestE4Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        _, rows = report_e4(sizes=(2, 4, 8))
        return rows

    def _pick(self, rows, workload):
        return {r["rules"]: r for r in rows if r["workload"] == workload}

    def test_independent_speedup_scales_with_rules(self, rows):
        independent = self._pick(rows, "independent")
        assert independent[8]["speedup"] > independent[2]["speedup"]
        assert independent[8]["speedup"] >= 4.0

    def test_independent_makespan_tracks_critical_path(self, rows):
        """Best case ∝ max updates to any one relation: adding more
        *independent* rules leaves the makespan flat."""
        independent = self._pick(rows, "independent")
        assert independent[8]["makespan"] == independent[2]["makespan"]

    def test_contended_degenerates_toward_serial(self, rows):
        contended = self._pick(rows, "contended")
        independent = self._pick(rows, "independent")
        assert contended[8]["makespan"] > independent[8]["makespan"]
        assert contended[8]["speedup"] < independent[8]["speedup"]

    def test_equivalent_order_counts(self, rows):
        """Independent transactions admit n! equivalent serial orders;
        fully contended ones admit exactly one."""
        independent = self._pick(rows, "independent")
        contended = self._pick(rows, "contended")
        assert independent[4]["equiv_orders"] == 24
        assert contended[4]["equiv_orders"] == 1

    def test_everything_commits(self, rows):
        assert all(r["committed"] == r["rules"] for r in rows)
