"""F1 — Figure 1: propagation delay vs chain depth.

Paper claim (§4): "the propagation delay of inserting a token into C2 ...
will be significant if the number of single input nodes n is large.  No
speed-up by parallel processing is possible because all operations must be
done sequentially."  The flat matching-pattern scheme detects the match
with a single COND search regardless of depth.

Run: pytest benchmarks/bench_f1_propagation_depth.py --benchmark-only
Table: python -m repro.bench.report f1
"""

import pytest

from repro.bench.drivers import build_system
from repro.bench.report import report_f1
from repro.workload.programs import chain_program

DEPTHS = (2, 6, 12)


def _fill_then_insert(source, strategy_name, depth):
    wm, strategy = build_system(source, strategy_name)
    for i in range(1, depth):
        wm.insert(f"C{i}", (0, "live"))
    return wm, strategy


@pytest.mark.parametrize("depth", DEPTHS)
@pytest.mark.parametrize("strategy", ["rete", "patterns"])
def test_chain_completion_insert(benchmark, strategy, depth):
    """Time the insert that completes a depth-n chain."""
    source = chain_program(depth)

    def run():
        wm, _strategy = _fill_then_insert(source, strategy, depth)
        wm.insert("C0", (0, "live"))

    benchmark(run)


class TestF1Shape:
    """The figure's qualitative content, asserted."""

    def test_rete_cost_grows_with_depth(self):
        _, rows = report_f1(depths=(2, 8))
        rete = {r["depth"]: r["match_searches"] for r in rows
                if r["strategy"] == "rete"}
        assert rete[8] > rete[2]

    def test_pattern_match_is_depth_independent(self):
        _, rows = report_f1(depths=(2, 8))
        patterns = {r["depth"]: r["match_searches"] for r in rows
                    if r["strategy"] == "patterns"}
        assert patterns[2] == patterns[8] == 1

    def test_pattern_maintenance_grows_but_is_separate(self):
        _, rows = report_f1(depths=(2, 8))
        maintenance = {r["depth"]: r["maintenance_ops"] for r in rows
                       if r["strategy"] == "patterns"}
        assert maintenance[8] > maintenance[2]

    def test_both_detect_the_match(self):
        _, rows = report_f1(depths=(4,))
        assert all(r["conflict_adds"] == 1 for r in rows)
