"""A10 — warm-standby replication: steady-state lag, failover time.

``repro serve`` can ship its write-ahead logs to a warm standby after
every group-commit barrier (docs/REPLICATION.md): the primary accepts
one ``follow`` handshake, streams snapshot and record frames, and holds
client acks until the follower acknowledges the round — semi-synchronous
replication.  This bench drives the k8s-auto-fix workload through an
in-process primary/standby pair over real TCP and asserts the
replication acceptance properties:

* **zero steady-state lag**: with semi-sync acks, the standby trails
  the primary by zero records the moment the last client ack lands;
* **nothing lost across failover**: the primary is abandoned without a
  final sync or checkpoint (the in-process ``kill -9`` stand-in), the
  standby is promoted, and every tenant's ``applied_seq`` equals the
  full acked stream;
* **bit-equivalent fixed point**: the promoted server reaches the same
  remediation/ticket/WM state a never-crashed run would — the standby
  replayed the shipped records through the same recognize-act path;
* **exactly one promotion**: the fencing epoch lands at 2, never more —
  the old primary stays fenced out, not re-promoted.

Wall-clock figures (events/sec with the standby attached, promotion
time, promotion-to-first-ack) are recorded in the A10 report table but
never gated — CI runners are noisy.

Run: pytest benchmarks/bench_a10_replica.py --benchmark-only
Table: python -m repro.bench.report a10
"""

import pytest

from repro.bench.report import report_a9, report_a10
from repro.workload.k8s import k8s_setup

EVENTS = 120
TENANTS = 2


@pytest.fixture(scope="module")
def rows():
    _, produced = report_a10(events_per_tenant=EVENTS, tenants=TENANTS)
    return produced


def test_replicated_failover_time(benchmark):
    # One full pair lifecycle per iteration: start both, attach, stream
    # semi-sync, kill the primary, promote, land the final ack.
    benchmark.pedantic(
        lambda: report_a10(events_per_tenant=40, tenants=TENANTS),
        rounds=3,
        iterations=1,
    )


class TestA10Shape:
    def test_one_row_per_tenant(self, rows):
        assert [row["tenant"] for row in rows] == [
            f"tenant-{i}" for i in range(TENANTS)
        ]

    def test_zero_steady_state_lag(self, rows):
        """Semi-sync acks imply a caught-up standby: zero records of
        lag at the measurement point, for every tenant."""
        for row in rows:
            assert row["lag_records"] == 0, row

    def test_nothing_lost_across_failover(self, rows):
        """The promoted standby holds the full acked stream — inventory
        plus every event, including the post-promotion ack."""
        expected = len(k8s_setup()) + EVENTS
        for row in rows:
            assert row["applied_seq"] == expected, row

    def test_every_event_consumed_after_promotion(self, rows):
        for row in rows:
            assert row["events_left"] == 0, row

    def test_exactly_one_promotion(self, rows):
        for row in rows:
            assert row["epoch"] == 2, row

    def test_promotion_times_are_measured(self, rows):
        for row in rows:
            assert row["promote_ms"] > 0, row
            assert row["first_ack_ms"] >= row["promote_ms"], row


class TestA10MatchesA9:
    def test_failover_fixed_point_equals_the_crash_recovery_one(self):
        """The promoted standby and A9's cold-recovered primary are two
        routes to the same state: identical workload, identical gated
        fixed point (remediations, tickets, WM size, applied_seq)."""
        _, a9_rows = report_a9(events_per_tenant=EVENTS, tenants=TENANTS)
        _, a10_rows = report_a10(events_per_tenant=EVENTS, tenants=TENANTS)
        compared = ("applied_seq", "events_left", "remediations",
                    "tickets", "wm")
        for a9_row, a10_row in zip(a9_rows, a10_rows):
            assert a9_row["tenant"] == a10_row["tenant"]
            for column in compared:
                assert a9_row[column] == a10_row[column], (
                    a9_row["tenant"], column, a9_row[column],
                    a10_row[column],
                )
